(** XML serialization: nodes and sequences to text. *)

val escape_text : string -> string
(** Escapes [&], [<], [>] for element content. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets and double quotes for attribute
    values. *)

val node_to_string : ?indent:bool -> Node.t -> string
(** Serializes one node. With [~indent:true], pretty-prints with
    2-space indentation (mixed text content stays inline). *)

val sequence_to_string : ?indent:bool -> Item.sequence -> string
(** Serializes a whole sequence the way a query result is shipped:
    nodes serialized, adjacent atomic values joined with single
    spaces. *)
