type date = { year : int; month : int; day : int }
type time = { hour : int; minute : int; second : int }
type timestamp = { date : date; time : time }

type t =
  | Untyped of string
  | String of string
  | Integer of int
  | Decimal of float
  | Double of float
  | Boolean of bool
  | Date of date
  | Time of time
  | Timestamp of timestamp

exception Cast_error of string

let cast_error fmt = Format.kasprintf (fun s -> raise (Cast_error s)) fmt

let type_name = function
  | Untyped _ -> "xs:untypedAtomic"
  | String _ -> "xs:string"
  | Integer _ -> "xs:integer"
  | Decimal _ -> "xs:decimal"
  | Double _ -> "xs:double"
  | Boolean _ -> "xs:boolean"
  | Date _ -> "xs:date"
  | Time _ -> "xs:time"
  | Timestamp _ -> "xs:dateTime"

let date_to_string d = Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day

let time_to_string t =
  Printf.sprintf "%02d:%02d:%02d" t.hour t.minute t.second

let timestamp_to_string ts =
  date_to_string ts.date ^ "T" ^ time_to_string ts.time

(* Canonical float printing: integral doubles print without an exponent
   or trailing zeros, like the usual XQuery serializations of small
   values.  We do not need full E-notation canonicalisation. *)
let float_to_lexical f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* below 1e15 the float is an exact integer within int range, so
       this equals "%.0f" without the printf machinery *)
    string_of_int (int_of_float f)
  else
    let s = Printf.sprintf "%.12g" f in
    s

let to_lexical = function
  | Untyped s | String s -> s
  | Integer i -> string_of_int i
  | Decimal f | Double f -> float_to_lexical f
  | Boolean b -> if b then "true" else "false"
  | Date d -> date_to_string d
  | Time t -> time_to_string t
  | Timestamp ts -> timestamp_to_string ts

let digits_at s pos n =
  let ok = ref (pos + n <= String.length s) in
  if !ok then
    for i = pos to pos + n - 1 do
      match s.[i] with '0' .. '9' -> () | _ -> ok := false
    done;
  if not !ok then None
  else Some (int_of_string (String.sub s pos n))

let date_of_string s =
  let fail () = cast_error "invalid xs:date literal %S" s in
  if String.length s <> 10 || s.[4] <> '-' || s.[7] <> '-' then fail ();
  match (digits_at s 0 4, digits_at s 5 2, digits_at s 8 2) with
  | Some year, Some month, Some day
    when month >= 1 && month <= 12 && day >= 1 && day <= 31 ->
    { year; month; day }
  | _ -> fail ()

let time_of_string s =
  let fail () = cast_error "invalid xs:time literal %S" s in
  if String.length s <> 8 || s.[2] <> ':' || s.[5] <> ':' then fail ();
  match (digits_at s 0 2, digits_at s 3 2, digits_at s 6 2) with
  | Some hour, Some minute, Some second
    when hour < 24 && minute < 60 && second < 62 ->
    { hour; minute; second }
  | _ -> fail ()

let timestamp_of_string s =
  if String.length s <> 19 || (s.[10] <> 'T' && s.[10] <> ' ') then
    cast_error "invalid xs:dateTime literal %S" s;
  { date = date_of_string (String.sub s 0 10);
    time = time_of_string (String.sub s 11 8) }

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> cast_error "cannot cast %S to xs:integer" s

let parse_float s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> cast_error "cannot cast %S to a numeric type" s

let cast_integer = function
  | Integer i -> i
  | Decimal f | Double f -> int_of_float f
  | Untyped s | String s -> parse_int s
  | Boolean b -> if b then 1 else 0
  | (Date _ | Time _ | Timestamp _) as v ->
    cast_error "cannot cast %s to xs:integer" (type_name v)

let cast_double = function
  | Integer i -> float_of_int i
  | Decimal f | Double f -> f
  | Untyped s | String s -> parse_float s
  | Boolean b -> if b then 1.0 else 0.0
  | (Date _ | Time _ | Timestamp _) as v ->
    cast_error "cannot cast %s to xs:double" (type_name v)

let cast_decimal = cast_double
let cast_string v = to_lexical v

let cast_boolean = function
  | Boolean b -> b
  | Integer i -> i <> 0
  | Decimal f | Double f -> f <> 0.0
  | Untyped s | String s -> (
    match String.trim s with
    | "true" | "1" -> true
    | "false" | "0" -> false
    | _ -> cast_error "cannot cast %S to xs:boolean" s)
  | (Date _ | Time _ | Timestamp _) as v ->
    cast_error "cannot cast %s to xs:boolean" (type_name v)

let cast_date = function
  | Date d -> d
  | Timestamp ts -> ts.date
  | Untyped s | String s -> date_of_string s
  | v -> cast_error "cannot cast %s to xs:date" (type_name v)

let cast_time = function
  | Time t -> t
  | Timestamp ts -> ts.time
  | Untyped s | String s -> time_of_string s
  | v -> cast_error "cannot cast %s to xs:time" (type_name v)

let cast_timestamp = function
  | Timestamp ts -> ts
  | Date d -> { date = d; time = { hour = 0; minute = 0; second = 0 } }
  | Untyped s | String s -> timestamp_of_string s
  | v -> cast_error "cannot cast %s to xs:dateTime" (type_name v)

let is_numeric = function
  | Integer _ | Decimal _ | Double _ -> true
  | Untyped _ | String _ | Boolean _ | Date _ | Time _ | Timestamp _ -> false

let compare_date a b =
  compare (a.year, a.month, a.day) (b.year, b.month, b.day)

let compare_time a b =
  compare (a.hour, a.minute, a.second) (b.hour, b.minute, b.second)

let compare_timestamp a b =
  let c = compare_date a.date b.date in
  if c <> 0 then c else compare_time a.time b.time

(* XQuery general-comparison value rules: numerics compare numerically
   across representations; untyped data is cast to the type of the other
   operand (to string when both sides are untyped). *)
let rec compare_values a b =
  match (a, b) with
  | Integer x, Integer y -> compare x y
  | (Integer _ | Decimal _ | Double _), (Integer _ | Decimal _ | Double _) ->
    Float.compare (cast_double a) (cast_double b)
  | String x, String y -> String.compare x y
  | Boolean x, Boolean y -> Bool.compare x y
  | Date x, Date y -> compare_date x y
  | Time x, Time y -> compare_time x y
  | Timestamp x, Timestamp y -> compare_timestamp x y
  | Untyped x, Untyped y -> String.compare x y
  | Untyped x, String y -> String.compare x y
  | String x, Untyped y -> String.compare x y
  | Untyped s, (Integer _ | Decimal _ | Double _) ->
    Float.compare (parse_float s) (cast_double b)
  | (Integer _ | Decimal _ | Double _), Untyped s ->
    Float.compare (cast_double a) (parse_float s)
  | Untyped s, Boolean _ -> compare_values (Boolean (cast_boolean (String s))) b
  | Boolean _, Untyped s -> compare_values a (Boolean (cast_boolean (String s)))
  | Untyped s, Date _ -> compare_values (Date (date_of_string s)) b
  | Date _, Untyped s -> compare_values a (Date (date_of_string s))
  | Untyped s, Time _ -> compare_values (Time (time_of_string s)) b
  | Time _, Untyped s -> compare_values a (Time (time_of_string s))
  | Untyped s, Timestamp _ -> compare_values (Timestamp (timestamp_of_string s)) b
  | Timestamp _, Untyped s -> compare_values a (Timestamp (timestamp_of_string s))
  | Date _, Timestamp _ -> compare_timestamp (cast_timestamp a) (cast_timestamp b)
  | Timestamp _, Date _ -> compare_timestamp (cast_timestamp a) (cast_timestamp b)
  | _ ->
    cast_error "values of types %s and %s are not comparable" (type_name a)
      (type_name b)

let equal a b = try compare_values a b = 0 with Cast_error _ -> false

let hash_key = function
  | Integer i ->
    (* same key "%.0f"-formatting would produce for any int that
       round-trips through float exactly; beyond that fall back so
       Integer and Double keys stay consistent *)
    if Int.abs i < 1_000_000_000_000_000 then "n" ^ string_of_int i
    else "n" ^ float_to_lexical (float_of_int i)
  | Decimal f | Double f -> "n" ^ float_to_lexical f
  | Untyped s | String s -> "s" ^ s
  | Boolean b -> if b then "bT" else "bF"
  | Date d -> "d" ^ date_to_string d
  | Time t -> "t" ^ time_to_string t
  | Timestamp ts -> "ts" ^ timestamp_to_string ts

let pp fmt v =
  match v with
  | Untyped s -> Format.fprintf fmt "untyped(%S)" s
  | String s -> Format.fprintf fmt "%S" s
  | _ -> Format.pp_print_string fmt (to_lexical v)
