(** A small, strict XML parser.

    Handles the XML subset the driver ships across the wire: elements,
    attributes, character data, the five predefined entities, numeric
    character references, comments and an optional XML declaration.
    No DTDs, processing instructions or CDATA sections. *)

exception Parse_error of { pos : int; message : string }

val node_of_string : string -> Node.t
(** Parses a document with a single root element.
    @raise Parse_error on malformed input. *)

val nodes_of_string : string -> Node.t list
(** Parses a forest (sequence of sibling elements and top-level text),
    the shape of a serialized flat query result.
    @raise Parse_error on malformed input. *)
