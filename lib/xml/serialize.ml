let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let add_open_tag buf (e : Node.element) ~self_closing =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape buf ~attr:true v;
      Buffer.add_string buf "\"")
    e.attrs;
  Buffer.add_string buf (if self_closing then "/>" else ">")

let rec add_compact buf (node : Node.t) =
  match node with
  | Text s -> escape buf ~attr:false s
  | Element e ->
    if e.children = [] then add_open_tag buf e ~self_closing:true
    else begin
      add_open_tag buf e ~self_closing:false;
      List.iter (add_compact buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.name;
      Buffer.add_char buf '>'
    end

let has_element_child (e : Node.element) =
  List.exists (function Node.Element _ -> true | Node.Text _ -> false)
    e.children

let rec add_indented buf depth (node : Node.t) =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match node with
  | Text s ->
    pad depth;
    escape buf ~attr:false s;
    Buffer.add_char buf '\n'
  | Element e ->
    pad depth;
    if e.children = [] then begin
      add_open_tag buf e ~self_closing:true;
      Buffer.add_char buf '\n'
    end
    else if not (has_element_child e) then begin
      (* text-only content stays inline *)
      add_open_tag buf e ~self_closing:false;
      List.iter (add_compact buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.name;
      Buffer.add_string buf ">\n"
    end
    else begin
      add_open_tag buf e ~self_closing:false;
      Buffer.add_char buf '\n';
      List.iter (add_indented buf (depth + 1)) e.children;
      pad depth;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.name;
      Buffer.add_string buf ">\n"
    end

let node_to_string ?(indent = false) node =
  let buf = Buffer.create 256 in
  if indent then add_indented buf 0 node else add_compact buf node;
  let s = Buffer.contents buf in
  if indent then String.trim s else s

let sequence_to_string ?(indent = false) seq =
  let buf = Buffer.create 256 in
  let prev_atomic = ref false in
  List.iter
    (fun item ->
      match item with
      | Item.Node n ->
        if indent && Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (node_to_string ~indent n);
        prev_atomic := false
      | Item.Atomic a ->
        if !prev_atomic then Buffer.add_char buf ' ';
        escape buf ~attr:false (Atomic.to_lexical a);
        prev_atomic := true)
    seq;
  Buffer.contents buf
