exception Parse_error of { pos : int; message : string }

type state = { src : string; mutable pos : int }

let error st fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { pos = st.pos; message }))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st 1
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while
    st.pos < String.length st.src && is_name_char st.src.[st.pos]
  do
    advance st 1
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

let expect st c =
  match peek st with
  | Some d when d = c -> advance st 1
  | Some d -> error st "expected %c, found %c" c d
  | None -> error st "expected %c, found end of input" c

let read_entity st =
  (* positioned just after '&' *)
  match String.index_from_opt st.src st.pos ';' with
  | None -> error st "unterminated entity reference"
  | Some semi ->
    let name = String.sub st.src st.pos (semi - st.pos) in
    st.pos <- semi + 1;
    (match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | _ ->
      if String.length name > 1 && name.[0] = '#' then begin
        let code =
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string_opt (String.sub name 1 (String.length name - 1))
        in
        match code with
        | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
        | Some c ->
          (* encode as UTF-8 *)
          let buf = Buffer.create 4 in
          Buffer.add_utf_8_uchar buf (Uchar.of_int c);
          Buffer.contents buf
        | None -> error st "bad character reference &%s;" name
      end
      else error st "unknown entity &%s;" name)

let read_text st =
  let buf = Buffer.create 32 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None | Some '<' -> continue := false
    | Some '&' ->
      advance st 1;
      Buffer.add_string buf (read_entity st)
    | Some c ->
      Buffer.add_char buf c;
      advance st 1
  done;
  Buffer.contents buf

let read_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st 1;
      q
    | _ -> error st "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote ->
      advance st 1;
      continue := false
    | Some '&' ->
      advance st 1;
      Buffer.add_string buf (read_entity st)
    | Some c ->
      Buffer.add_char buf c;
      advance st 1
  done;
  Buffer.contents buf

let skip_comment st =
  (* positioned just after "<!--" *)
  let rec find () =
    if looking_at st "-->" then advance st 3
    else if st.pos >= String.length st.src then error st "unterminated comment"
    else begin
      advance st 1;
      find ()
    end
  in
  find ()

let skip_misc st =
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<!--" then begin
      advance st 4;
      skip_comment st
    end
    else if looking_at st "<?" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some i -> st.pos <- i + 1
      | None -> error st "unterminated processing instruction"
    end
    else continue := false
  done

let rec read_element st : Node.t =
  expect st '<';
  let name = read_name st in
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws st;
    match peek st with
    | Some '>' | Some '/' -> ()
    | Some _ ->
      let attr = read_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = read_attr_value st in
      attrs := (attr, value) :: !attrs;
      read_attrs ()
    | None -> error st "unterminated start tag <%s" name
  in
  read_attrs ();
  let attrs = List.rev !attrs in
  if looking_at st "/>" then begin
    advance st 2;
    Node.Element { name; attrs; children = [] }
  end
  else begin
    expect st '>';
    let children = read_content st in
    if not (looking_at st "</") then error st "expected </%s>" name;
    advance st 2;
    let close = read_name st in
    if close <> name then error st "mismatched tags <%s> ... </%s>" name close;
    skip_ws st;
    expect st '>';
    Node.Element { name; attrs; children }
  end

and read_content st : Node.t list =
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    if looking_at st "</" then continue := false
    else if looking_at st "<!--" then begin
      advance st 4;
      skip_comment st
    end
    else
      match peek st with
      | None -> continue := false
      | Some '<' -> acc := read_element st :: !acc
      | Some _ ->
        let text = read_text st in
        if text <> "" then acc := Node.Text text :: !acc
  done;
  List.rev !acc

let nodes_of_string src =
  let st = { src; pos = 0 } in
  skip_misc st;
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> continue := false
    | Some '<' when looking_at st "<!--" ->
      advance st 4;
      skip_comment st
    | Some '<' -> acc := read_element st :: !acc
    | Some _ ->
      let text = read_text st in
      if String.trim text <> "" then acc := Node.Text text :: !acc
  done;
  List.rev !acc

let node_of_string src =
  match nodes_of_string src with
  | [ node ] -> node
  | [] -> raise (Parse_error { pos = 0; message = "empty document" })
  | _ :: _ ->
    raise (Parse_error { pos = 0; message = "more than one root node" })
