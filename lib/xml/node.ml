type t =
  | Element of element
  | Text of string

and element = {
  name : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s

let local_name name =
  match String.index_opt name ':' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let name_of = function Element e -> Some e.name | Text _ -> None

let children_elements = function
  | Text _ -> []
  | Element e ->
    List.filter_map
      (function Element c -> Some c | Text _ -> None)
      e.children

let string_value node =
  match node with
  (* flat rows make these three shapes the overwhelming majority;
     none of them needs a buffer *)
  | Text s -> s
  | Element { children = []; _ } -> ""
  | Element { children = [ Text s ]; _ } -> s
  | Element _ ->
    let buf = Buffer.create 32 in
    let rec go = function
      | Text s -> Buffer.add_string buf s
      | Element e -> List.iter go e.children
    in
    go node;
    Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.name y.name
    && List.length x.attrs = List.length y.attrs
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
         x.attrs y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | Element _, Text _ | Text _, Element _ -> false

let rec normalize = function
  | Text s -> Text s
  | Element e ->
    let rec merge = function
      | [] -> []
      | Text "" :: rest -> merge rest
      | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
      | Text a :: rest -> Text a :: merge rest
      | Element c :: rest -> normalize (Element c) :: merge rest
    in
    Element { e with children = merge e.children }

let rec pp fmt = function
  | Text s -> Format.fprintf fmt "%S" s
  | Element e ->
    Format.fprintf fmt "<%s%a>%a</%s>" e.name
      (fun fmt attrs ->
        List.iter (fun (k, v) -> Format.fprintf fmt " %s=%S" k v) attrs)
      e.attrs
      (fun fmt cs -> List.iter (pp fmt) cs)
      e.children e.name
