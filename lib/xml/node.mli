(** XML node trees.

    Element names are kept as plain strings that may carry a namespace
    prefix (e.g. ["ns0:CUSTOMERS"]); the flat results handled by the
    driver never need full namespace resolution beyond prefixes. *)

type t =
  | Element of element
  | Text of string

and element = {
  name : string;
  attrs : (string * string) list;
  children : t list;
}

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val local_name : string -> string
(** Strips a namespace prefix: [local_name "ns0:CUSTOMERS" = "CUSTOMERS"]. *)

val name_of : t -> string option
(** Element name, [None] for text nodes. *)

val children_elements : t -> element list
(** Child elements of an element node (text nodes skipped); [[]] for text. *)

val string_value : t -> string
(** Concatenation of all descendant text, the XPath string-value. *)

val equal : t -> t -> bool
(** Deep structural equality (attribute order significant). *)

val normalize : t -> t
(** Canonical content form: adjacent text nodes merged, empty text
    nodes dropped (recursively).  Serialization then parsing yields
    the normalized tree. *)

val pp : Format.formatter -> t -> unit
