(** Items and sequences — the currency of the XQuery data model.

    Every XQuery expression evaluates to a [sequence]: a flat, ordered
    list of items, where an item is either an atomic value or an XML
    node.  Sequences never nest. *)

type t =
  | Atomic of Atomic.t
  | Node of Node.t

type sequence = t list

val atomic : Atomic.t -> t
val node : Node.t -> t
val empty : sequence
val singleton : t -> sequence

val of_int : int -> sequence
val of_string : string -> sequence
val of_bool : bool -> sequence
val of_double : float -> sequence

val atomize : sequence -> Atomic.t list
(** [fn:data]: atomic items pass through; element nodes yield their
    string-value as [Untyped]. *)

val atomize_one : sequence -> Atomic.t option
(** Atomization expecting zero or one values.
    @raise Invalid_argument if more than one value results. *)

val effective_boolean_value : sequence -> bool
(** XQuery EBV: empty is false, a leading node is true, a single
    atomic follows type rules.
    @raise Atomic.Cast_error on multi-item atomic sequences. *)

val string_value : sequence -> string
(** [fn:string] of a zero-or-one item sequence (empty gives [""]). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_sequence : Format.formatter -> sequence -> unit
