type t =
  | Atomic of Atomic.t
  | Node of Node.t

type sequence = t list

let atomic a = Atomic a
let node n = Node n
let empty = []
let singleton i = [ i ]
let of_int i = [ Atomic (Atomic.Integer i) ]
let of_string s = [ Atomic (Atomic.String s) ]
let of_bool b = [ Atomic (Atomic.Boolean b) ]
let of_double f = [ Atomic (Atomic.Double f) ]

let atomize seq =
  List.map
    (function
      | Atomic a -> a
      | Node n -> Atomic.Untyped (Node.string_value n))
    seq

let atomize_one seq =
  match atomize seq with
  | [] -> None
  | [ a ] -> Some a
  | _ -> invalid_arg "atomize_one: sequence of more than one item"

let effective_boolean_value = function
  | [] -> false
  | Node _ :: _ -> true
  | [ Atomic a ] -> (
    match a with
    | Atomic.Boolean b -> b
    | Atomic.Untyped s | Atomic.String s -> String.length s > 0
    | Atomic.Integer i -> i <> 0
    | Atomic.Decimal f | Atomic.Double f -> f <> 0.0 && not (Float.is_nan f)
    | Atomic.Date _ | Atomic.Time _ | Atomic.Timestamp _ ->
      raise
        (Atomic.Cast_error
           "effective boolean value undefined for date/time values"))
  | Atomic _ :: _ :: _ ->
    raise
      (Atomic.Cast_error
         "effective boolean value undefined for atomic sequences of \
          length > 1")

let string_value seq =
  match seq with
  | [] -> ""
  | [ Atomic a ] -> Atomic.to_lexical a
  | [ Node n ] -> Node.string_value n
  | _ -> invalid_arg "string_value: sequence of more than one item"

let equal a b =
  match (a, b) with
  | Atomic x, Atomic y -> Atomic.equal x y
  | Node x, Node y -> Node.equal x y
  | Atomic _, Node _ | Node _, Atomic _ -> false

let pp fmt = function
  | Atomic a -> Atomic.pp fmt a
  | Node n -> Node.pp fmt n

let pp_sequence fmt seq =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
    seq
