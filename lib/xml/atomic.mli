(** Atomic values of the XQuery data model.

    The subset implemented is the one the SQL-92 translator can emit:
    strings, integers, decimals, doubles, booleans and the date/time
    family, plus [Untyped] for values obtained by atomizing schema-less
    element content (XQuery's [xs:untypedAtomic]). *)

type date = { year : int; month : int; day : int }
type time = { hour : int; minute : int; second : int }
type timestamp = { date : date; time : time }

type t =
  | Untyped of string
  | String of string
  | Integer of int
  | Decimal of float
  | Double of float
  | Boolean of bool
  | Date of date
  | Time of time
  | Timestamp of timestamp

exception Cast_error of string
(** Raised by the [cast_*] functions on invalid lexical input. *)

val type_name : t -> string
(** XML Schema type name, e.g. ["xs:integer"]. *)

val to_lexical : t -> string
(** Canonical lexical form (what [fn:string] returns). *)

val date_to_string : date -> string
val time_to_string : time -> string
val timestamp_to_string : timestamp -> string

val date_of_string : string -> date
(** Parses ["YYYY-MM-DD"]. @raise Cast_error on bad input. *)

val time_of_string : string -> time
(** Parses ["HH:MM:SS"]. @raise Cast_error on bad input. *)

val timestamp_of_string : string -> timestamp
(** Parses ["YYYY-MM-DDTHH:MM:SS"] (a space separator is also accepted).
    @raise Cast_error on bad input. *)

val cast_integer : t -> int
val cast_double : t -> float
val cast_decimal : t -> float
val cast_string : t -> string
val cast_boolean : t -> bool
val cast_date : t -> date
val cast_time : t -> time
val cast_timestamp : t -> timestamp

val is_numeric : t -> bool

val compare_values : t -> t -> int
(** Ordering used by comparisons and [order by].  Numeric types compare
    numerically across representations; [Untyped] compares as a string
    against strings and is cast to the other operand's type otherwise.
    @raise Cast_error when the two values are not comparable. *)

val equal : t -> t -> bool
(** [equal a b] is [compare_values a b = 0], with incomparable values
    unequal rather than an error. *)

val hash_key : t -> string
(** Injective-enough key for grouping/distinct: equal values (per
    [compare_values]) map to equal keys. *)

val pp : Format.formatter -> t -> unit
