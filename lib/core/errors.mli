(** Translation failures: positioned syntax errors from stage one and
    semantic errors (unknown or ambiguous names, grouping violations,
    type mismatches) from the later stages. *)

type kind =
  | Syntax
  | Unknown_table
  | Unknown_column
  | Ambiguous_column
  | Grouping
  | Type_mismatch
  | Unsupported
  | Cardinality

type t = {
  kind : kind;
  message : string;
  pos : Aqua_sql.Ast.pos option;
}

exception Error of t

val kind_to_string : kind -> string

val sqlstate : kind -> string
(** The SQLSTATE code a JDBC client would see for this failure class
    (e.g. [Syntax] is ["42601"], [Unknown_table] is ["42P01"]). *)

val to_string : t -> string
(** Human-readable message including the position when known. *)

val raise_error :
  ?pos:Aqua_sql.Ast.pos -> kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error kind fmt ...] raises {!Error} with a formatted
    message. *)
