module A = Aqua_sql.Ast

type t = {
  statement : A.statement;
  xquery : Aqua_xquery.Ast.query;
  columns : Outcol.t list;
}

module Telemetry = Aqua_core.Telemetry

let parse_stage sql : A.statement =
  Telemetry.with_span "translate.parse" @@ fun () ->
  try Aqua_sql.Parser.parse sql
  with Aqua_sql.Parser.Parse_error { pos; message } ->
    raise (Errors.Error { Errors.kind = Errors.Syntax; message; pos = Some pos })

let translate_statement ?style env (statement : A.statement) : t =
  (* stage two: semantic validation against metadata *)
  Telemetry.with_span "translate.semantic" (fun () ->
      ignore (Semantic.statement_columns env statement));
  (* stage three: XQuery generation *)
  let output =
    Telemetry.with_span "translate.generate" (fun () ->
        Generate.generate ?style env statement)
  in
  {
    statement;
    xquery = output.Generate.query;
    columns = output.Generate.columns;
  }

let translate ?style env sql : t =
  Telemetry.incr Telemetry.c_translations;
  Telemetry.with_span "translate" @@ fun () ->
  translate_statement ?style env (parse_stage sql)

let translate_result ?style env sql =
  match translate ?style env sql with
  | t -> Ok t
  | exception Errors.Error e -> Error e

let for_text_transport t = Wrapper.wrap t.xquery t.columns
let to_string t = Aqua_xquery.Pretty.query_to_string t.xquery
