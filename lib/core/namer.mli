(** Variable name generation, following paper section 3.5: ["var"] (or
    ["tempvar"] for let-bound views) + query context id + query zone
    (a window on the SQL query: FR = FROM, WH = WHERE, GB = GROUP BY,
    OB = ORDER BY, SL = SELECT) + a unique number within the zone —
    e.g. [$var1FR0], [$tempvar1FR2], [$var1Partition1]. *)

type zone = FR | WH | GB | OB | SL

val zone_to_string : zone -> string

type t

val create : unit -> t

val fresh_ctx : t -> int
(** Next query-context id (contexts number from 1; CTX0 is the paper's
    outermost marker). *)

val var : t -> ctx:int -> zone -> string
val tempvar : t -> ctx:int -> zone -> string

val partition : t -> ctx:int -> string
(** Partition variables of the BEA group-by extension
    ([$var1Partition1]). *)
