(* Variable name generation, following the nomenclature of paper
   section 3.5: "var" (or "tempvar" for let-bound views), followed by
   the query context id, followed by the query zone (a window on the
   SQL query: FR = FROM, WH = WHERE, GB = GROUP BY, OB = ORDER BY,
   SL = SELECT) and a unique number within that zone. *)

type zone = FR | WH | GB | OB | SL

let zone_to_string = function
  | FR -> "FR"
  | WH -> "WH"
  | GB -> "GB"
  | OB -> "OB"
  | SL -> "SL"

type t = {
  counters : (string, int) Hashtbl.t;
  mutable next_ctx : int;
}

let create () = { counters = Hashtbl.create 16; next_ctx = 1 }

let fresh_ctx t =
  let id = t.next_ctx in
  t.next_ctx <- id + 1;
  id

let next t key =
  let n = Option.value (Hashtbl.find_opt t.counters key) ~default:0 in
  Hashtbl.replace t.counters key (n + 1);
  n

let var t ~ctx zone =
  let z = zone_to_string zone in
  let key = Printf.sprintf "var%d%s" ctx z in
  Printf.sprintf "var%d%s%d" ctx z (next t key)

let tempvar t ~ctx zone =
  let z = zone_to_string zone in
  let key = Printf.sprintf "tempvar%d%s" ctx z in
  Printf.sprintf "tempvar%d%s%d" ctx z (next t key)

let partition t ~ctx =
  let key = Printf.sprintf "part%d" ctx in
  Printf.sprintf "var%dPartition%d" ctx (next t key + 1)
