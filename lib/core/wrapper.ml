(* The result-handling wrapper of paper section 4: instead of shipping
   XML to the client, the translated query is wrapped in an outer
   query that emits the rows as text interspersed with column and row
   delimiters, via fn:string-join.

   The column delimiters are '<' and the row prefix '>'.  This is safe
   precisely because every value passes through fn-bea:xml-escape,
   after which the data can contain neither character (the paper's
   sample output `>987654<Acme Widget Stores` relies on the same
   property).  SQL NULL (an empty sequence) is encoded by
   fn-bea:if-empty as a single NUL byte, which escaped data can never
   contain either (control characters become character references). *)

module X = Aqua_xquery.Ast

let row_prefix = ">"
let column_separator = "<"
let null_marker = "\x00"

let encode_column token_var (col : Outcol.t) : X.expr =
  X.call "fn-bea:if-empty"
    [ X.call "fn-bea:xml-escape"
        [ X.call "fn-bea:serialize-atomic"
            [ X.call "fn:data"
                [ X.path1 (X.var token_var) col.Outcol.element ] ] ];
      X.str null_marker ]

let wrap (query : X.query) (columns : Outcol.t list) : X.query =
  let actual = "actualQuery" in
  let token = "tokenQuery" in
  let parts =
    List.concat
      (List.mapi
         (fun i col ->
           let sep = if i = 0 then row_prefix else column_separator in
           [ X.str sep; encode_column token col ])
         columns)
  in
  let body =
    X.call "fn:string-join"
      [ X.Flwor
          {
            X.clauses =
              [ X.Let { var = actual; value = query.X.body };
                X.For
                  {
                    var = token;
                    source = X.path1 (X.var actual) "RECORD";
                  } ];
            X.return = X.Seq parts;
          };
        X.str "" ]
  in
  { query with X.body }

(* ------------------------------------------------------------------ *)
(* Client-side decoding                                               *)

exception Decode_error of string

let unescape s =
  (* inverse of fn-bea:xml-escape *)
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> raise (Decode_error "unterminated character reference")
      | Some semi ->
        let name = String.sub s (!i + 1) (semi - !i - 1) in
        (match name with
        | "amp" -> Buffer.add_char buf '&'
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | _ when String.length name > 1 && name.[0] = '#' -> (
          match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
          | Some c when c >= 0 && c < 256 -> Buffer.add_char buf (Char.chr c)
          | _ -> raise (Decode_error ("bad character reference &" ^ name ^ ";")))
        | _ -> raise (Decode_error ("unknown entity &" ^ name ^ ";")));
        i := semi + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let decode ~(columns : Outcol.t list) (text : string) :
    string option list list =
  (* Returns rows of optional lexical column values (None = NULL). *)
  if text = "" then []
  else begin
    if not (String.length text > 0 && text.[0] = row_prefix.[0]) then
      raise (Decode_error "text result does not start with a row prefix");
    let rows =
      (* drop the leading empty chunk before the first '>' *)
      match String.split_on_char row_prefix.[0] text with
      | "" :: rest -> rest
      | rest -> rest
    in
    let ncols = List.length columns in
    List.map
      (fun row ->
        let cells = String.split_on_char column_separator.[0] row in
        if List.length cells <> ncols then
          raise
            (Decode_error
               (Printf.sprintf "row has %d cells, expected %d"
                  (List.length cells) ncols));
        List.map
          (fun cell ->
            if cell = null_marker then None else Some (unescape cell))
          cells)
      rows
  end
