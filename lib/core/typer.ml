(* Expression datatype computation (paper section 3.5 (v)): a
   bottom-up pass over expression trees that infers the SQL type and
   nullability of every expression, applying the SQL-92 promotion
   rules.  The results drive cast generation and the metadata-informed
   elision of null guards. *)

module Sql_type = Aqua_relational.Sql_type
module A = Aqua_sql.Ast

type info = {
  ty : Sql_type.t;
  nullable : bool;
  known : bool;  (* false for parameters and bare NULLs: suppress casts *)
}

let known ty nullable = { ty; nullable; known = true }
let unknown = { ty = Sql_type.Varchar None; nullable = true; known = false }

type env = {
  (* resolves a column reference to its type *)
  resolve_column :
    qualifier:string option -> string -> A.pos -> info;
  (* computes the output columns of a subquery (validating it) *)
  query_schema : A.query -> Outcol.t list;
}

let fail ?pos kind fmt = Errors.raise_error ?pos kind fmt

let promote ?pos a b =
  match (a.known, b.known) with
  | false, false -> unknown
  | false, true -> { b with nullable = a.nullable || b.nullable }
  | true, false -> { a with nullable = a.nullable || b.nullable }
  | true, true -> (
    match Sql_type.promote a.ty b.ty with
    | Some ty -> known ty (a.nullable || b.nullable)
    | None ->
      fail ?pos Errors.Type_mismatch
        "cannot combine %s and %s in an arithmetic expression"
        (Sql_type.to_string a.ty) (Sql_type.to_string b.ty))

let require_comparable ?pos a b =
  if a.known && b.known && not (Sql_type.comparable a.ty b.ty) then
    fail ?pos Errors.Type_mismatch "cannot compare %s with %s"
      (Sql_type.to_string a.ty) (Sql_type.to_string b.ty)

let scalar_subquery_info env q =
  match env.query_schema q with
  | [ col ] -> { ty = col.Outcol.ty; nullable = true; known = true }
  | cols ->
    fail Errors.Cardinality
      "a scalar subquery must return exactly one column, this one returns %d"
      (List.length cols)

let subquery_column_info env q =
  (* IN / quantified subqueries must also be single-column *)
  scalar_subquery_info env q

let rec infer env (e : A.expr) : info =
  match e with
  | A.Lit lit -> (
    match lit with
    | A.L_int _ -> known Sql_type.Integer false
    | A.L_num (_, spelling) ->
      let approx = String.contains spelling 'e' || String.contains spelling 'E' in
      known (if approx then Sql_type.Double else Sql_type.Decimal None) false
    | A.L_string _ -> known (Sql_type.Varchar None) false
    | A.L_date _ -> known Sql_type.Date false
    | A.L_time _ -> known Sql_type.Time false
    | A.L_timestamp _ -> known Sql_type.Timestamp false
    | A.L_bool _ -> known Sql_type.Boolean false
    | A.L_null -> { ty = Sql_type.Varchar None; nullable = true; known = false })
  | A.Column { qualifier; name; pos } -> env.resolve_column ~qualifier name pos
  | A.Param _ -> unknown
  | A.Arith (op, a, b) ->
    let ia = infer env a and ib = infer env b in
    if ia.known && not (Sql_type.is_numeric ia.ty) then
      fail Errors.Type_mismatch "arithmetic on non-numeric type %s"
        (Sql_type.to_string ia.ty);
    if ib.known && not (Sql_type.is_numeric ib.ty) then
      fail Errors.Type_mismatch "arithmetic on non-numeric type %s"
        (Sql_type.to_string ib.ty);
    let result = promote ia ib in
    (* division over exact numerics yields a decimal (matching the
       XQuery div operator the translation maps it to) *)
    if op = A.Div && result.known && Sql_type.is_exact_numeric result.ty then
      { result with ty = Sql_type.Decimal None }
    else result
  | A.Neg a ->
    let ia = infer env a in
    if ia.known && not (Sql_type.is_numeric ia.ty) then
      fail Errors.Type_mismatch "unary minus on non-numeric type %s"
        (Sql_type.to_string ia.ty);
    ia
  | A.Concat (a, b) ->
    let ia = infer env a and ib = infer env b in
    known (Sql_type.Varchar None) (ia.nullable || ib.nullable)
  | A.Cmp (_, a, b) ->
    let ia = infer env a and ib = infer env b in
    require_comparable ia ib;
    known Sql_type.Boolean (ia.nullable || ib.nullable)
  | A.And (a, b) | A.Or (a, b) ->
    let ia = infer env a and ib = infer env b in
    known Sql_type.Boolean (ia.nullable || ib.nullable)
  | A.Not a -> infer env a
  | A.Is_null { arg; _ } ->
    ignore (infer env arg);
    known Sql_type.Boolean false
  | A.Between { arg; low; high; _ } ->
    let ia = infer env arg and il = infer env low and ih = infer env high in
    require_comparable ia il;
    require_comparable ia ih;
    known Sql_type.Boolean (ia.nullable || il.nullable || ih.nullable)
  | A.Like { arg; pattern; escape; _ } ->
    let ia = infer env arg and ip = infer env pattern in
    if ia.known && not (Sql_type.is_character ia.ty) then
      fail Errors.Type_mismatch "LIKE applies to character types, not %s"
        (Sql_type.to_string ia.ty);
    let ie = Option.map (infer env) escape in
    known Sql_type.Boolean
      (ia.nullable || ip.nullable
      || match ie with Some i -> i.nullable | None -> false)
  | A.In_list { arg; items; _ } ->
    let ia = infer env arg in
    let infos = List.map (infer env) items in
    List.iter (require_comparable ia) infos;
    known Sql_type.Boolean
      (ia.nullable || List.exists (fun i -> i.nullable) infos)
  | A.In_query { arg; query; _ } ->
    let ia = infer env arg in
    let iq = subquery_column_info env query in
    require_comparable ia iq;
    known Sql_type.Boolean true
  | A.Exists q ->
    ignore (env.query_schema q);
    known Sql_type.Boolean false
  | A.Scalar_subquery q -> scalar_subquery_info env q
  | A.Quantified { arg; query; _ } ->
    let ia = infer env arg in
    let iq = subquery_column_info env query in
    require_comparable ia iq;
    known Sql_type.Boolean true
  | A.Func { name; args } -> (
    match Funcmap.find name with
    | None ->
      fail Errors.Unsupported "unknown function %s (supported: %s)" name
        (String.concat ", " (Funcmap.names ()))
    | Some entry ->
      let n = List.length args in
      if n < entry.Funcmap.min_args || n > entry.Funcmap.max_args then
        fail Errors.Type_mismatch "%s expects between %d and %d arguments" name
          entry.Funcmap.min_args entry.Funcmap.max_args;
      let infos = List.map (infer env) args in
      let tys = List.map (fun i -> if i.known then Some i.ty else None) infos in
      known
        (entry.Funcmap.result_type tys)
        (entry.Funcmap.nullable (List.map (fun i -> i.nullable) infos)))
  | A.Agg { func; arg; _ } -> (
    let arg_info = Option.map (infer env) arg in
    (match arg_info with
    | Some i
      when i.known
           && (match func with
              | A.A_sum | A.A_avg -> not (Sql_type.is_numeric i.ty)
              | _ -> false) ->
      fail Errors.Type_mismatch "%s requires a numeric argument"
        (A.agg_func_name func)
    | _ -> ());
    match func with
    | A.A_count_star | A.A_count -> known Sql_type.Integer false
    | A.A_sum -> (
      match arg_info with
      | Some i when i.known -> known i.ty true
      | _ -> { unknown with nullable = true })
    | A.A_avg -> known (Sql_type.Decimal None) true
    | A.A_min | A.A_max -> (
      match arg_info with
      | Some i -> { i with nullable = true }
      | None -> unknown))
  | A.Cast (a, ty) ->
    let ia = infer env a in
    known ty ia.nullable
  | A.Case { operand; branches; else_ } ->
    (match operand with Some o -> ignore (infer env o) | None -> ());
    let branch_infos = List.map (fun (_, t) -> infer env t) branches in
    let else_info = Option.map (infer env) else_ in
    let all = branch_infos @ Option.to_list else_info in
    let result =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some a ->
            if a.known && i.known && Sql_type.is_numeric a.ty
               && Sql_type.is_numeric i.ty
            then Some (promote a i)
            else if a.known then Some a
            else Some i)
        None all
    in
    let nullable =
      else_ = None || List.exists (fun i -> i.nullable) all
    in
    (match result with
    | Some r -> { r with nullable }
    | None -> { unknown with nullable })
