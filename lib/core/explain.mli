(** Rendering of the translator's internal structures: the query
    contexts (paper Figure 4) and resultset-node tree (paper Figure 3)
    built during stage one/two, for inspection and debugging.

    Each (sub)query gets a numbered context; every table, join, derived
    table and set operation appears as an RSN annotated with its
    resolved metadata and output columns. *)

val statement : Semantic.env -> Aqua_sql.Ast.statement -> string
(** Validates the statement and renders its context/RSN tree.
    @raise Errors.Error on invalid SQL. *)
