module A = Aqua_sql.Ast
module Pretty = Aqua_sql.Pretty
module Metadata = Aqua_dsp.Metadata

type printer = {
  buf : Buffer.t;
  mutable next_ctx : int;
}

let line p depth fmt =
  Format.kasprintf
    (fun s ->
      Buffer.add_string p.buf (String.make (2 * depth) ' ');
      Buffer.add_string p.buf s;
      Buffer.add_char p.buf '\n')
    fmt

let fresh_ctx p =
  let id = p.next_ctx in
  p.next_ctx <- id + 1;
  id

let join_kind_name = function
  | A.J_inner -> "INNER JOIN"
  | A.J_left -> "LEFT OUTER JOIN"
  | A.J_right -> "RIGHT OUTER JOIN"
  | A.J_full -> "FULL OUTER JOIN"
  | A.J_cross -> "CROSS JOIN"

let setop_name = function
  | A.S_union -> "UNION"
  | A.S_intersect -> "INTERSECT"
  | A.S_except -> "EXCEPT"

let rec explain_table_ref env p depth (tr : A.table_ref) =
  match tr with
  | A.Primary (A.Table_ref_name { name; alias; pos }) ->
    let meta = env.Semantic.lookup_table name pos in
    line p depth "RSN table %s%s -> %s.%s (%d columns)" meta.Metadata.table
      (match alias with Some a -> " AS " ^ a | None -> "")
      meta.Metadata.schema meta.Metadata.table
      (List.length meta.Metadata.columns)
  | A.Primary (A.Derived { query; alias }) ->
    line p depth "RSN derived table AS %s" alias;
    explain_query env p (depth + 1) query
  | A.Join { kind; left; right; cond } ->
    line p depth "RSN join (%s)%s" (join_kind_name kind)
      (match cond with
      | Some c -> " ON " ^ Pretty.expr_to_string c
      | None -> "");
    explain_table_ref env p (depth + 1) left;
    explain_table_ref env p (depth + 1) right

and explain_spec env p depth (spec : A.query_spec) =
  let ctx = fresh_ctx p in
  let scope = Semantic.spec_scope env Scope.root spec in
  let items = Semantic.expand_select env scope spec in
  line p depth "CTX%d: query%s%s" ctx
    (if spec.A.distinct then " DISTINCT" else "")
    (if Semantic.is_grouped spec then " (grouped)" else "");
  line p (depth + 1) "select: %s"
    (String.concat ", "
       (List.map
          (fun ((c : Outcol.t), _) ->
            Printf.sprintf "%s %s%s" c.Outcol.label
              (Aqua_relational.Sql_type.to_string c.Outcol.ty)
              (if c.Outcol.nullable then "" else " NOT NULL"))
          items));
  List.iter (explain_table_ref env p (depth + 1)) spec.A.from;
  (match spec.A.where with
  | Some w -> line p (depth + 1) "where: %s" (Pretty.expr_to_string w)
  | None -> ());
  (match spec.A.group_by with
  | [] -> ()
  | cols ->
    line p (depth + 1) "group by: %s"
      (String.concat ", " (List.map Pretty.expr_to_string cols)));
  (match spec.A.having with
  | Some h -> line p (depth + 1) "having: %s" (Pretty.expr_to_string h)
  | None -> ());
  (* subqueries inside expressions open their own contexts *)
  let note_subqueries clause e =
    List.iter
      (fun q ->
        line p (depth + 1) "RSN subquery (in %s):" clause;
        explain_query env p (depth + 2) q)
      (List.rev (A.subqueries_of_expr e))
  in
  List.iter
    (fun item ->
      match item with
      | A.Expr_item (e, _) -> note_subqueries "SELECT" e
      | A.Star | A.Table_star _ -> ())
    spec.A.select;
  Option.iter (note_subqueries "WHERE") spec.A.where;
  Option.iter (note_subqueries "HAVING") spec.A.having

and explain_query env p depth (q : A.query) =
  match q with
  | A.Spec spec -> explain_spec env p depth spec
  | A.Set { op; all; left; right } ->
    line p depth "RSN set operation: %s%s" (setop_name op)
      (if all then " ALL" else "");
    explain_query env p (depth + 1) left;
    explain_query env p (depth + 1) right

(* The physical plan the XQuery optimizer would pick for this
   statement: translate (stage three) and run the {!Aqua_xqeval}
   optimizer pass on the result, reporting what fired. *)
let explain_optimizer env p (stmt : A.statement) =
  match Generate.generate env stmt with
  | exception Errors.Error _ -> ()
  | generated ->
    let _, report = Aqua_xqeval.Optimize.query generated.Generate.query in
    line p 1 "optimizer: %d predicate(s) pushed down, %d hash equi-join(s)"
      report.Aqua_xqeval.Optimize.pushed_predicates
      report.Aqua_xqeval.Optimize.hash_joins;
    List.iter
      (fun note -> line p 2 "PLAN %s" note)
      report.Aqua_xqeval.Optimize.notes;
    if report.Aqua_xqeval.Optimize.hash_joins = 0 then
      line p 2 "PLAN joins (if any) run as nested loops"

let statement env (stmt : A.statement) =
  (* validate first so the dump reflects a legal query *)
  ignore (Semantic.statement_columns env stmt);
  let p = { buf = Buffer.create 512; next_ctx = 1 } in
  line p 0 "CTX0 (outermost scope)";
  explain_query env p 1 stmt.A.body;
  (match stmt.A.order_by with
  | [] -> ()
  | items ->
    line p 1 "order by: %s"
      (String.concat ", "
         (List.map
            (fun (o : A.order_item) ->
              (match o.A.key with
              | A.Ord_position i -> string_of_int i
              | A.Ord_expr e -> Pretty.expr_to_string e)
              ^ if o.A.descending then " DESC" else "")
            items)));
  explain_optimizer env p stmt;
  Buffer.contents p.buf
