(** Name scopes for column resolution.

    Each query spec opens a scope holding one view per FROM item (the
    paper's resultset nodes); resolution walks outward through parent
    scopes, which is how correlated subqueries see their outer query's
    columns.  During the semantic pass views carry no XQuery binding;
    during generation each view is bound to the XQuery row variable
    its rows are iterated with. *)

type vcol = {
  label : string;  (** the SQL-visible column name *)
  qualifier : string option;
      (** alias the column may be qualified with; survives join
          flattening so [T.C] keeps resolving inside a materialized
          join view *)
  element : string;  (** child element name in this view's rows *)
  ty : Aqua_relational.Sql_type.t;
  nullable : bool;
}

type view = {
  alias : string option;
  cols : vcol list;
  binding : string option;  (** XQuery row variable, without ['$'] *)
}

type t

val root : t
(** The empty outermost scope. *)

val push : t -> view list -> t
(** A child scope with the given views. *)

val views : t -> view list
(** The scope's own (innermost) views. *)

type resolution = {
  res_view : view;
  res_col : vcol;
  res_depth : int;  (** 0 = current scope, >0 = correlated *)
}

type error =
  | Not_found_in_scope
  | Ambiguous of string list  (** descriptions of the candidates *)

val resolve : t -> ?qualifier:string -> string -> (resolution, error) result
(** Case-insensitive resolution of a (possibly qualified) column
    reference; ambiguity within one scope level is an error, shadowing
    across levels is not. *)

val star_columns : t -> (view * vcol) list
(** All columns of the scope's own views in FROM order ([SELECT *]). *)

val qualified_star_columns : t -> string -> (view * vcol) list
(** Columns matching [alias.*]. *)
