(* Translation failures.  Stage one raises syntax errors (wrapped from
   the SQL parser); later stages raise semantic errors: unknown tables
   or columns, ambiguity, grouping violations, type mismatches. *)

type kind =
  | Syntax
  | Unknown_table
  | Unknown_column
  | Ambiguous_column
  | Grouping
  | Type_mismatch
  | Unsupported
  | Cardinality

type t = {
  kind : kind;
  message : string;
  pos : Aqua_sql.Ast.pos option;
}

exception Error of t

let kind_to_string = function
  | Syntax -> "syntax error"
  | Unknown_table -> "unknown table"
  | Unknown_column -> "unknown column"
  | Ambiguous_column -> "ambiguous column"
  | Grouping -> "grouping error"
  | Type_mismatch -> "type mismatch"
  | Unsupported -> "unsupported construct"
  | Cardinality -> "cardinality error"

(* SQLSTATE class 42 (syntax error or access rule violation) and
   friends, matching what a JDBC client would see from a relational
   backend for the same mistake. *)
let sqlstate = function
  | Syntax -> "42601"
  | Unknown_table -> "42P01"
  | Unknown_column -> "42703"
  | Ambiguous_column -> "42702"
  | Grouping -> "42803"
  | Type_mismatch -> "42804"
  | Unsupported -> "0A000"
  | Cardinality -> "21000"

let to_string e =
  let pos =
    match e.pos with
    | Some p when p.Aqua_sql.Ast.line > 0 ->
      Printf.sprintf " at line %d, column %d" p.Aqua_sql.Ast.line p.col
    | _ -> ""
  in
  Printf.sprintf "%s%s: %s" (kind_to_string e.kind) pos e.message

let raise_error ?pos kind fmt =
  Format.kasprintf (fun message -> raise (Error { kind; message; pos })) fmt
