(* Name scopes for column resolution.

   Each query spec opens a scope holding one "view" per FROM item
   (paper: resultset node).  A view exposes columns that can be
   referenced bare or qualified; resolution walks outward through
   parent scopes, which is how correlated subqueries see their outer
   query's columns.  During the semantic pass views carry no XQuery
   binding; during generation each view is bound to the row variable
   its RECORDs (or table elements) are iterated with. *)

module Sql_type = Aqua_relational.Sql_type

type vcol = {
  label : string;        (* the SQL-visible column name *)
  qualifier : string option;
      (* alias the column may be qualified with; for a join view the
         per-side aliases survive even though the view itself has no
         alias of its own *)
  element : string;      (* child element name in this view's rows *)
  ty : Sql_type.t;
  nullable : bool;
}

type view = {
  alias : string option;
  cols : vcol list;
  binding : string option;  (* XQuery row variable, without '$' *)
}

type t = {
  views : view list;
  parent : t option;
}

let root = { views = []; parent = None }
let push parent views = { views; parent = Some parent }
let views t = t.views

let eq_ci a b = String.uppercase_ascii a = String.uppercase_ascii b

type resolution = {
  res_view : view;
  res_col : vcol;
  res_depth : int;  (* 0 = current scope, >0 = correlated *)
}

type error =
  | Not_found_in_scope
  | Ambiguous of string list  (* descriptions of the candidates *)

let describe view col =
  match (view.alias, col.qualifier) with
  | Some a, _ -> a ^ "." ^ col.label
  | None, Some q -> q ^ "." ^ col.label
  | None, None -> col.label

(* All matches for a (qualifier, name) reference within one scope level. *)
let matches_in views qualifier name =
  List.concat_map
    (fun view ->
      List.filter_map
        (fun col ->
          let col_ok = eq_ci col.label name in
          let qual_ok =
            match qualifier with
            | None -> true
            | Some q -> (
              match view.alias with
              | Some a -> eq_ci a q
              | None -> (
                match col.qualifier with
                | Some cq -> eq_ci cq q
                | None -> false))
          in
          if col_ok && qual_ok then Some (view, col) else None)
        view.cols)
    views

let resolve scope ?qualifier name =
  let rec go scope depth =
    match matches_in scope.views qualifier name with
    | [ (res_view, res_col) ] -> Ok { res_view; res_col; res_depth = depth }
    | [] -> (
      match scope.parent with
      | Some p -> go p (depth + 1)
      | None -> Error Not_found_in_scope)
    | many ->
      Error (Ambiguous (List.map (fun (v, c) -> describe v c) many))
  in
  go scope 0

(* Wildcard expansion: all columns of the scope's own views, in FROM
   order ([SELECT *]), or of the view(s) matching an alias
   ([SELECT T.*]). *)
let star_columns scope = List.concat_map (fun v -> List.map (fun c -> (v, c)) v.cols) scope.views

let qualified_star_columns scope alias =
  let of_view v =
    match v.alias with
    | Some a when eq_ci a alias -> List.map (fun c -> (v, c)) v.cols
    | Some _ -> []
    | None ->
      List.filter_map
        (fun c ->
          match c.qualifier with
          | Some q when eq_ci q alias -> Some (v, c)
          | _ -> None)
        v.cols
  in
  List.concat_map of_view scope.views
