(* Stage two of the translation (paper section 3.4): semantic
   validation against metadata and computation of every (sub)query's
   output schema.  Wildcards are expanded here, aliases resolved,
   grouping rules enforced — the information the paper moves into
   "XQuery-relevant positions" of the AST is returned as explicit
   structures consumed by stage three. *)

module A = Aqua_sql.Ast
module Sql_type = Aqua_relational.Sql_type
module Schema = Aqua_relational.Schema
module Metadata = Aqua_dsp.Metadata

let fail = Errors.raise_error

type env = {
  lookup_table : A.table_name -> A.pos -> Metadata.table;
}

let env_of_cache cache =
  {
    lookup_table =
      (fun (n : A.table_name) pos ->
        match
          Metadata.Cache.lookup cache ?catalog:n.A.catalog ?schema:n.A.schema
            n.A.table
        with
        | Ok t -> t
        | Error e ->
          fail ~pos Errors.Unknown_table "%s" (Metadata.error_to_string e));
  }

let env_of_application app =
  {
    lookup_table =
      (fun (n : A.table_name) pos ->
        match
          Metadata.lookup app ?catalog:n.A.catalog ?schema:n.A.schema n.A.table
        with
        | Ok t -> t
        | Error e ->
          fail ~pos Errors.Unknown_table "%s" (Metadata.error_to_string e));
  }

(* ------------------------------------------------------------------ *)
(* Scope construction                                                 *)

let table_view (meta : Metadata.table) ~alias : Scope.view =
  let cols =
    List.map
      (fun (c : Schema.column) ->
        {
          Scope.label = c.Schema.name;
          qualifier = None;
          element = c.Schema.name;
          ty = c.Schema.ty;
          nullable = c.Schema.nullable;
        })
      meta.Metadata.columns
  in
  { Scope.alias = Some (Option.value alias ~default:meta.Metadata.table);
    cols;
    binding = None }

let derived_view (cols : Outcol.t list) ~alias : Scope.view =
  {
    Scope.alias = Some alias;
    cols =
      List.map
        (fun (c : Outcol.t) ->
          {
            Scope.label = c.Outcol.label;
            qualifier = None;
            element = c.Outcol.element;
            ty = c.Outcol.ty;
            nullable = c.Outcol.nullable;
          })
        cols;
    binding = None;
  }

(* A join exposes the columns of both sides.  Columns on the
   null-extended side(s) become nullable.  The per-side alias is kept
   as the column qualifier so T.C keeps resolving after the join is
   collapsed into a single materialized view (paper Example 10). *)
let qualify_view_cols (v : Scope.view) =
  List.map
    (fun (c : Scope.vcol) ->
      let qualifier =
        match c.Scope.qualifier with Some _ as q -> q | None -> v.Scope.alias
      in
      let element =
        match qualifier with
        | Some q -> q ^ "." ^ c.Scope.label
        | None -> c.Scope.label
      in
      { c with Scope.qualifier; element })
    v.Scope.cols

let make_nullable cols =
  List.map (fun (c : Scope.vcol) -> { c with Scope.nullable = true }) cols

(* Builds the single flattened view for a join tree; used both for
   semantic resolution and as the record layout of the materialized
   join RECORDSET during generation. *)
let rec join_view env parent (tr : A.table_ref) : Scope.view =
  match tr with
  | A.Primary p -> primary_view env parent p
  | A.Join { kind; left; right; cond } ->
    let lv = join_view env parent left in
    let rv = join_view env parent right in
    let lcols = qualify_view_cols lv in
    let rcols = qualify_view_cols rv in
    let lcols =
      match kind with
      | A.J_right | A.J_full -> make_nullable lcols
      | A.J_inner | A.J_left | A.J_cross -> lcols
    in
    let rcols =
      match kind with
      | A.J_left | A.J_full -> make_nullable rcols
      | A.J_inner | A.J_right | A.J_cross -> rcols
    in
    let view = { Scope.alias = None; cols = lcols @ rcols; binding = None } in
    (* validate the ON condition in the scope of the join's own columns
       (plus outer scopes for subqueries inside ON) *)
    (match cond with
    | None -> ()
    | Some c ->
      let scope = Scope.push parent [ view ] in
      validate_condition env scope ~clause:"ON" c);
    view

and primary_view env _parent (p : A.table_primary) : Scope.view =
  match p with
  | A.Table_ref_name { name; alias; pos } ->
    let meta = env.lookup_table name pos in
    table_view meta ~alias
  | A.Derived { query; alias } ->
    (* SQL-92: derived tables are not correlated with their siblings
       or the outer query *)
    let cols = query_columns env ~parent:Scope.root query in
    derived_view cols ~alias

and spec_scope env parent (spec : A.query_spec) : Scope.t =
  let views = List.map (join_view env parent) spec.A.from in
  (* duplicate alias detection *)
  let aliases =
    List.filter_map (fun (v : Scope.view) -> v.Scope.alias) views
    @ List.concat_map
        (fun (v : Scope.view) ->
          if v.Scope.alias = None then
            List.sort_uniq compare
              (List.filter_map (fun (c : Scope.vcol) -> c.Scope.qualifier) v.Scope.cols)
          else [])
        views
  in
  let rec check_dups = function
    | [] -> ()
    | a :: rest ->
      if List.exists (fun b -> String.uppercase_ascii a = String.uppercase_ascii b) rest
      then fail Errors.Grouping "duplicate table alias %s in FROM" a;
      check_dups rest
  in
  check_dups aliases;
  Scope.push parent views

(* ------------------------------------------------------------------ *)
(* Expression validation                                              *)

and resolve_column env scope ~qualifier name pos : Typer.info =
  ignore env;
  match Scope.resolve scope ?qualifier name with
  | Ok r ->
    {
      Typer.ty = r.Scope.res_col.Scope.ty;
      nullable = r.Scope.res_col.Scope.nullable;
      known = true;
    }
  | Error Scope.Not_found_in_scope ->
    fail ~pos Errors.Unknown_column "column %s does not exist"
      (match qualifier with Some q -> q ^ "." ^ name | None -> name)
  | Error (Scope.Ambiguous candidates) ->
    fail ~pos Errors.Ambiguous_column "column %s is ambiguous: %s" name
      (String.concat ", " candidates)

and typer_env env scope : Typer.env =
  {
    Typer.resolve_column =
      (fun ~qualifier name pos -> resolve_column env scope ~qualifier name pos);
    query_schema = (fun q -> query_columns env ~parent:scope q);
  }

and validate_condition env scope ~clause cond =
  if A.contains_aggregate cond then
    fail Errors.Grouping "aggregate functions are not allowed in %s" clause;
  ignore (Typer.infer (typer_env env scope) cond)

(* ------------------------------------------------------------------ *)
(* Grouping rules                                                     *)

(* A grouped query's non-aggregated column references must be grouping
   columns (the paper's EMPNO/EMPNAME example). *)
and check_grouped_expr _env scope ~group_cols ~context expr =
  let is_group_col qualifier name =
    List.exists
      (fun (gq, gn) ->
        let q_match =
          match (qualifier, gq) with
          | None, _ -> true
          | Some q, Some g -> String.uppercase_ascii q = String.uppercase_ascii g
          | Some q, None -> (
            (* the group-by column was unqualified: compare resolutions *)
            match
              ( Scope.resolve scope ~qualifier:q name,
                Scope.resolve scope gn )
            with
            | Ok a, Ok b -> a.Scope.res_view == b.Scope.res_view
            | _ -> false)
        in
        q_match && String.uppercase_ascii name = String.uppercase_ascii gn)
      group_cols
  in
  (* Explicit recursion: stop at aggregates (their arguments may use
     any column) and at subqueries (they open their own scopes). *)
  let rec walk (e : A.expr) =
    match e with
    | A.Agg _ -> ()
    | A.Scalar_subquery _ | A.Exists _ -> ()
    | A.In_query { arg; _ } | A.Quantified { arg; _ } ->
      (* the comparison argument lives in this query's scope; the
         subquery opens its own *)
      walk arg
    | A.Column { qualifier; name; pos } ->
      if not (is_group_col qualifier name) then
        fail ~pos Errors.Grouping
          "column %s must appear in the GROUP BY clause or be used in an \
           aggregate function (%s)"
          name context
    | A.Lit _ | A.Param _ -> ()
    | A.Neg a | A.Not a | A.Cast (a, _) -> walk a
    | A.Arith (_, a, b) | A.Concat (a, b) | A.Cmp (_, a, b) | A.And (a, b)
    | A.Or (a, b) ->
      walk a;
      walk b
    | A.Is_null { arg; _ } -> walk arg
    | A.Between { arg; low; high; _ } ->
      walk arg;
      walk low;
      walk high
    | A.Like { arg; pattern; escape; _ } ->
      walk arg;
      walk pattern;
      Option.iter walk escape
    | A.In_list { arg; items; _ } ->
      walk arg;
      List.iter walk items
    | A.Func { args; _ } -> List.iter walk args
    | A.Case { operand; branches; else_ } ->
      Option.iter walk operand;
      List.iter
        (fun (w, t) ->
          walk w;
          walk t)
        branches;
      Option.iter walk else_
  in
  walk expr

and group_columns_of env scope (spec : A.query_spec) =
  List.map
    (fun g ->
      match g with
      | A.Column { qualifier; name; pos } ->
        ignore (resolve_column env scope ~qualifier name pos);
        (qualifier, name)
      | _ ->
        fail Errors.Grouping
          "GROUP BY items must be column references in SQL-92")
    spec.A.group_by

and is_grouped (spec : A.query_spec) =
  spec.A.group_by <> []
  || spec.A.having <> None
  || List.exists
       (function
         | A.Expr_item (e, _) -> A.contains_aggregate e
         | A.Star | A.Table_star _ -> false)
       spec.A.select

(* ------------------------------------------------------------------ *)
(* Select-list expansion and output schema                            *)

and unique_element used name =
  (* element names must be valid XML names: letters, digits, '_', '-',
     '.' and ':' (label text like EXPR$1 is sanitized) *)
  let name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> c
        | _ -> '_')
      name
  in
  let name =
    if name = "" then "COL"
    else
      match name.[0] with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> name
      | _ -> "C_" ^ name
  in
  if not (Hashtbl.mem used name) then begin
    Hashtbl.add used name ();
    name
  end
  else begin
    let rec try_n n =
      let candidate = Printf.sprintf "%s_%d" name n in
      if Hashtbl.mem used candidate then try_n (n + 1)
      else begin
        Hashtbl.add used candidate ();
        candidate
      end
    in
    try_n 2
  end

and expand_select env scope (spec : A.query_spec) : (Outcol.t * A.expr) list =
  let tenv = typer_env env scope in
  let used = Hashtbl.create 16 in
  let counter = ref 0 in
  let of_view_col ((v : Scope.view), (c : Scope.vcol)) =
    let qualifier =
      match c.Scope.qualifier with Some _ as q -> q | None -> v.Scope.alias
    in
    let expr = A.Column { qualifier; name = c.Scope.label; pos = A.no_pos } in
    let element =
      unique_element used
        (match qualifier with
        | Some q -> q ^ "." ^ c.Scope.label
        | None -> c.Scope.label)
    in
    ( Outcol.make ~label:c.Scope.label ~element ~ty:c.Scope.ty
        ~nullable:c.Scope.nullable,
      expr )
  in
  List.concat_map
    (fun item ->
      incr counter;
      match item with
      | A.Star -> (
        match Scope.star_columns scope with
        | [] -> fail Errors.Unknown_column "SELECT * with an empty FROM scope"
        | cols -> List.map of_view_col cols)
      | A.Table_star alias -> (
        match Scope.qualified_star_columns scope alias with
        | [] ->
          fail Errors.Unknown_table "%s.* does not match any table in FROM"
            alias
        | cols -> List.map of_view_col cols)
      | A.Expr_item (expr, alias) ->
        let info = Typer.infer tenv expr in
        let label =
          match (alias, expr) with
          | Some a, _ -> a
          | None, A.Column { name; _ } -> name
          | None, _ -> Printf.sprintf "EXPR$%d" !counter
        in
        let element =
          match (alias, expr) with
          | Some a, _ -> unique_element used a
          | None, A.Column { qualifier = Some q; name; _ } ->
            unique_element used (q ^ "." ^ name)
          | None, A.Column { qualifier = None; name; pos } -> (
            (* qualify with the resolved view's alias, as the paper
               does (<CUSTOMERS.CUSTOMERID>) *)
            match Scope.resolve scope name with
            | Ok r ->
              let q =
                match
                  (r.Scope.res_view.Scope.alias, r.Scope.res_col.Scope.qualifier)
                with
                | Some a, _ -> Some a
                | None, Some cq -> Some cq
                | None, None -> None
              in
              unique_element used
                (match q with Some q -> q ^ "." ^ name | None -> name)
            | Error _ ->
              fail ~pos Errors.Unknown_column "column %s does not exist" name)
          | None, _ -> unique_element used label
        in
        [ ( Outcol.make ~label ~element ~ty:info.Typer.ty
              ~nullable:info.Typer.nullable,
            expr ) ])
    spec.A.select

(* Validates a full query spec and returns its output columns. *)
and spec_columns env ~parent (spec : A.query_spec) : Outcol.t list =
  let scope = spec_scope env parent spec in
  (match spec.A.where with
  | None -> ()
  | Some w -> validate_condition env scope ~clause:"WHERE" w);
  let items = expand_select env scope spec in
  if is_grouped spec then begin
    let group_cols = group_columns_of env scope spec in
    List.iter
      (fun (_, expr) ->
        check_grouped_expr env scope ~group_cols ~context:"in SELECT" expr)
      items;
    match spec.A.having with
    | None -> ()
    | Some h ->
      ignore (Typer.infer (typer_env env scope) h);
      check_grouped_expr env scope ~group_cols ~context:"in HAVING" h
  end
  else begin
    match spec.A.having with
    | Some _ -> ()  (* HAVING implies grouping; handled above *)
    | None -> ()
  end;
  List.map fst items

and query_columns env ~parent (q : A.query) : Outcol.t list =
  match q with
  | A.Spec spec -> spec_columns env ~parent spec
  | A.Set { op = _; all = _; left; right } ->
    let lcols = query_columns env ~parent left in
    let rcols = query_columns env ~parent right in
    if List.length lcols <> List.length rcols then
      fail Errors.Type_mismatch
        "set operation sides have different column counts (%d vs %d)"
        (List.length lcols) (List.length rcols);
    List.map2
      (fun (l : Outcol.t) (r : Outcol.t) ->
        if not (Sql_type.comparable l.Outcol.ty r.Outcol.ty) then
          fail Errors.Type_mismatch
            "set operation column %s: incompatible types %s and %s"
            l.Outcol.label
            (Sql_type.to_string l.Outcol.ty)
            (Sql_type.to_string r.Outcol.ty);
        let ty =
          if Sql_type.is_numeric l.Outcol.ty && Sql_type.is_numeric r.Outcol.ty
          then Option.value (Sql_type.promote l.Outcol.ty r.Outcol.ty) ~default:l.Outcol.ty
          else l.Outcol.ty
        in
        { l with Outcol.ty; nullable = l.Outcol.nullable || r.Outcol.nullable })
      lcols rcols

(* ------------------------------------------------------------------ *)
(* ORDER BY                                                           *)

(* Maps an ORDER BY key to an output column index for grouped,
   distinct and set queries: by position, by output label, or — for a
   column key — by resolving it in the spec's scope and matching a
   select item that resolves to the same column ("ORDER BY C.TIER"
   when "C.TIER" is in the select list). *)
let order_key_output_index _env scope (items : (Outcol.t * A.expr) list)
    (o : A.order_item) : int option =
  let cols = List.map fst items in
  match o.A.key with
  | A.Ord_position i ->
    if i >= 1 && i <= List.length cols then Some (i - 1) else None
  | A.Ord_expr (A.Column { qualifier; name; _ } as key_expr) -> (
    let by_label =
      match qualifier with
      | Some _ -> None
      | None ->
        let rec go i = function
          | [] -> None
          | (c : Outcol.t) :: rest ->
            if
              String.uppercase_ascii c.Outcol.label
              = String.uppercase_ascii name
            then Some i
            else go (i + 1) rest
        in
        go 0 cols
    in
    match by_label with
    | Some _ as found -> found
    | None -> (
      ignore key_expr;
      match Scope.resolve scope ?qualifier name with
      | Error _ -> None
      | Ok target ->
        let rec go i = function
          | [] -> None
          | (_, A.Column { qualifier = iq; name = iname; _ }) :: rest -> (
            match Scope.resolve scope ?qualifier:iq iname with
            | Ok r
              when r.Scope.res_view == target.Scope.res_view
                   && r.Scope.res_col == target.Scope.res_col ->
              Some i
            | _ -> go (i + 1) rest)
          | _ :: rest -> go (i + 1) rest
        in
        go 0 items))
  | A.Ord_expr _ -> None

type order_target =
  | By_output of int  (* 0-based output column index *)
  | By_expr of A.expr

let resolve_order_item env scope (cols : Outcol.t list)
    (items : (Outcol.t * A.expr) list option) (o : A.order_item) :
    order_target * bool =
  let target =
    match o.A.key with
    | A.Ord_position i ->
      if i < 1 || i > List.length cols then
        fail Errors.Unknown_column
          "ORDER BY position %d is out of range (1..%d)" i (List.length cols)
      else By_output (i - 1)
    | A.Ord_expr (A.Column { qualifier = None; name; _ })
      when List.exists
             (fun (c : Outcol.t) ->
               String.uppercase_ascii c.Outcol.label
               = String.uppercase_ascii name)
             cols ->
      (* an output label takes precedence over underlying columns *)
      let idx = ref (-1) in
      List.iteri
        (fun i (c : Outcol.t) ->
          if
            !idx < 0
            && String.uppercase_ascii c.Outcol.label
               = String.uppercase_ascii name
          then idx := i)
        cols;
      By_output !idx
    | A.Ord_expr e ->
      ignore items;
      ignore (Typer.infer (typer_env env scope) e);
      By_expr e
  in
  (target, o.A.descending)

(* ------------------------------------------------------------------ *)
(* Statement entry point                                              *)

let statement_columns env (stmt : A.statement) : Outcol.t list =
  let cols = query_columns env ~parent:Scope.root stmt.A.body in
  (* validate ORDER BY *)
  (match stmt.A.body with
  | A.Spec spec when (not (is_grouped spec)) && not spec.A.distinct ->
    let scope = spec_scope env Scope.root spec in
    List.iter
      (fun o -> ignore (resolve_order_item env scope cols None o))
      stmt.A.order_by
  | A.Spec spec ->
    (* grouped or distinct query: ORDER BY keys must map to output
       columns (by position, label, or the column a select item
       resolves to) *)
    let scope = spec_scope env Scope.root spec in
    let items = expand_select env scope spec in
    List.iter
      (fun (o : A.order_item) ->
        match order_key_output_index env scope items o with
        | Some _ -> ()
        | None ->
          fail Errors.Unknown_column
            "ORDER BY over a grouped or DISTINCT query must name an output \
             column or position")
      stmt.A.order_by
  | A.Set _ ->
    (* set query: positions or output labels only *)
    List.iter
      (fun (o : A.order_item) ->
        match o.A.key with
        | A.Ord_position i ->
          if i < 1 || i > List.length cols then
            fail Errors.Unknown_column
              "ORDER BY position %d is out of range (1..%d)" i
              (List.length cols)
        | A.Ord_expr (A.Column { qualifier = None; name; _ })
          when List.exists
                 (fun (c : Outcol.t) ->
                   String.uppercase_ascii c.Outcol.label
                   = String.uppercase_ascii name)
                 cols ->
          ()
        | A.Ord_expr _ ->
          fail Errors.Unsupported
            "ORDER BY over a set operation must name an output column or \
             position")
      stmt.A.order_by);
  cols
