(** Expression datatype computation (paper section 3.5 (v)): bottom-up
    inference of the SQL type and nullability of every expression,
    applying SQL-92 promotion; drives cast generation and the
    metadata-informed elision of null guards. *)

type info = {
  ty : Aqua_relational.Sql_type.t;
  nullable : bool;
  known : bool;  (** [false] for parameters and bare NULLs — suppresses casts *)
}

val known : Aqua_relational.Sql_type.t -> bool -> info
val unknown : info

type env = {
  resolve_column :
    qualifier:string option -> string -> Aqua_sql.Ast.pos -> info;
  query_schema : Aqua_sql.Ast.query -> Outcol.t list;
      (** computes (and validates) a subquery's output columns *)
}

val infer : env -> Aqua_sql.Ast.expr -> info
(** @raise Errors.Error on type mismatches, unknown functions, or
    invalid subqueries. *)
