(** Stage two of the translation (paper section 3.4): semantic
    validation against data-service metadata and computation of every
    (sub)query's output schema — wildcard expansion, alias resolution,
    grouping-rule enforcement, set-operation compatibility.

    The scope-construction helpers are shared with stage three (which
    re-runs resolution with XQuery bindings attached, the way the
    paper's contexts serve XPath-resolution requests during
    generation) and with the baseline SQL engine (so both execution
    paths agree on names and types). *)

type env = {
  lookup_table :
    Aqua_sql.Ast.table_name -> Aqua_sql.Ast.pos -> Aqua_dsp.Metadata.table;
}

val env_of_application : Aqua_dsp.Artifact.application -> env
(** Direct metadata lookups. *)

val env_of_cache : Aqua_dsp.Metadata.Cache.t -> env
(** Lookups through the driver's metadata cache (fetch on miss). *)

(** {2 Scope construction} *)

val table_view : Aqua_dsp.Metadata.table -> alias:string option -> Scope.view
val derived_view : Outcol.t list -> alias:string -> Scope.view

val qualify_view_cols : Scope.view -> Scope.vcol list
(** Qualified column layout a view contributes to a join record
    ([T.C] element names). *)

val make_nullable : Scope.vcol list -> Scope.vcol list

val join_view : env -> Scope.t -> Aqua_sql.Ast.table_ref -> Scope.view
(** The flattened single view of a join tree (columns of both sides,
    null-extended sides made nullable); validates ON conditions. *)

val spec_scope : env -> Scope.t -> Aqua_sql.Ast.query_spec -> Scope.t
(** The scope a query spec's clauses resolve in; detects duplicate
    aliases. *)

(** {2 Validation and schemas} *)

val resolve_column :
  env -> Scope.t -> qualifier:string option -> string -> Aqua_sql.Ast.pos ->
  Typer.info
(** @raise Errors.Error on unknown or ambiguous columns. *)

val typer_env : env -> Scope.t -> Typer.env

val is_grouped : Aqua_sql.Ast.query_spec -> bool
(** Whether the spec is a grouped query (GROUP BY, HAVING, or
    aggregates in the select list). *)

val expand_select :
  env -> Scope.t -> Aqua_sql.Ast.query_spec -> (Outcol.t * Aqua_sql.Ast.expr) list
(** Expands wildcards and computes output columns; each output column
    is paired with the select expression that produces it (stars
    become explicit column references). *)

val query_columns : env -> parent:Scope.t -> Aqua_sql.Ast.query -> Outcol.t list
(** Validates a full (sub)query and returns its output columns.
    @raise Errors.Error on any semantic error. *)

val order_key_output_index :
  env ->
  Scope.t ->
  (Outcol.t * Aqua_sql.Ast.expr) list ->
  Aqua_sql.Ast.order_item ->
  int option
(** Maps an ORDER BY key to an output column index (position, label,
    or a column key resolving to the same column as a select item) —
    the notion of "output column key" grouped/distinct queries
    restrict ORDER BY to. *)

val statement_columns : env -> Aqua_sql.Ast.statement -> Outcol.t list
(** [query_columns] plus ORDER BY validation (positions in range;
    grouped/distinct/set queries restricted to output-column keys). *)
