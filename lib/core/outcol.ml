(* Output column descriptors: the computed result schema of a
   translated query.  [label] is what JDBC metadata reports (alias or
   bare column name); [element] is the XML element name used inside
   generated RECORD constructors (qualified, dot-separated, following
   the paper's <CUSTOMERS.CUSTOMERID> style). *)

module Sql_type = Aqua_relational.Sql_type
module Schema = Aqua_relational.Schema

type t = {
  label : string;
  element : string;
  ty : Sql_type.t;
  nullable : bool;
}

let make ~label ~element ~ty ~nullable = { label; element; ty; nullable }

let to_schema_column c : Schema.column =
  { Schema.name = c.label; ty = c.ty; nullable = c.nullable }

let to_schema cols = List.map to_schema_column cols

let pp fmt c =
  Format.fprintf fmt "%s %a%s" c.label Sql_type.pp c.ty
    (if c.nullable then "" else " NOT NULL")
