(** The result-handling wrapper of paper section 4.

    Instead of shipping XML, the translated query is wrapped in an
    outer query emitting the rows as delimited text via
    [fn:string-join]: each row starts with ['>'] and columns are
    separated by ['<'] — safe because every value passes through
    [fn-bea:xml-escape], after which data can contain neither
    character (the paper's [>987654<Acme Widget Stores] sample relies
    on the same property).  SQL NULL is encoded by [fn-bea:if-empty]
    as a NUL byte, which escaped data can never contain. *)

val row_prefix : string
val column_separator : string
val null_marker : string

val wrap : Aqua_xquery.Ast.query -> Outcol.t list -> Aqua_xquery.Ast.query
(** Wraps a RECORDSET-producing query for the text transport. *)

exception Decode_error of string

val unescape : string -> string
(** Inverse of [fn-bea:xml-escape].
    @raise Decode_error on malformed references. *)

val decode : columns:Outcol.t list -> string -> string option list list
(** Splits the wire text into rows of optional lexical column values
    ([None] = SQL NULL).
    @raise Decode_error on malformed input or arity mismatches. *)
