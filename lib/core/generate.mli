(** Stage three of the translation (paper sections 3.4.3 and 3.5):
    serializes the validated SQL AST into XQuery, every resultset node
    translating itself — tables into [for] clauses over data-service
    functions, derived tables into [let]-bound RECORDSETs, outer joins
    into the if-empty pattern of Example 10, grouping into the BEA
    group-by extension, set operations into membership patterns.

    Boolean predicates are translated with an explicit polarity so SQL
    three-valued logic maps onto XQuery two-valued logic: positive
    polarity is "p is TRUE", negative "p is FALSE"; negation flips the
    polarity rather than emitting [fn:not], which would conflate
    UNKNOWN with FALSE. *)

type style =
  | Patterned
      (** the paper's emission: metadata-informed null-guard elision,
          direct partition paths for plain-column aggregates, constant
          LIKE specialization *)
  | Naive
      (** always guard, always iterate, never specialize — the
          ablation baseline of benchmark P5 *)

type output = {
  query : Aqua_xquery.Ast.query;
  columns : Outcol.t list;
}

val generate :
  ?style:style -> Semantic.env -> Aqua_sql.Ast.statement -> output
(** Requires a statement already validated by
    {!Semantic.statement_columns}.
    @raise Errors.Error on residual semantic errors. *)
