(* The preconfigured map of SQL scalar functions to XQuery Functions &
   Operators (paper section 3.5 (iii)).  Each entry knows its arity,
   its SQL result type rule, and how to emit the XQuery call given
   already-translated argument expressions. *)

module Sql_type = Aqua_relational.Sql_type
module X = Aqua_xquery.Ast

type entry = {
  min_args : int;
  max_args : int;
  (* result type given argument types (None = unknown/parameter) *)
  result_type : Sql_type.t option list -> Sql_type.t;
  (* nullability given argument nullability *)
  nullable : bool list -> bool;
  (* SQL semantics give NULL when any argument is NULL; when true the
     generator adds an emptiness guard if an argument may be null *)
  null_propagating : bool;
  emit : X.expr list -> X.expr;
}

let varchar = Sql_type.Varchar None
let any_null = List.exists Fun.id

let promote_args args =
  let tys = List.filter_map Fun.id args in
  match tys with
  | [] -> Sql_type.Double
  | first :: rest ->
    List.fold_left
      (fun acc ty -> Option.value (Sql_type.promote acc ty) ~default:acc)
      first rest

let simple name ~args:(min_args, max_args) ~ty =
  {
    min_args;
    max_args;
    result_type = (fun _ -> ty);
    nullable = any_null;
    null_propagating = true;
    emit = (fun args -> X.call name args);
  }

let numeric_passthrough name =
  {
    min_args = 1;
    max_args = 1;
    result_type = (fun args -> promote_args args);
    nullable = any_null;
    null_propagating = false;  (* the fn: numeric functions map () to () *)
    emit = (fun args -> X.call name args);
  }

let promote_or_first args =
  let tys = List.filter_map Fun.id args in
  match tys with
  | [] -> varchar
  | first :: _ ->
    if List.for_all Sql_type.is_numeric tys then promote_args args else first

let entries : (string * entry) list =
  [
    ( "CONCAT",
      {
        min_args = 2;
        max_args = 99;
        result_type = (fun _ -> varchar);
        nullable = any_null;
        null_propagating = true;
        emit = (fun args -> X.call "fn:concat" args);
      } );
    ("UPPER", simple "fn:upper-case" ~args:(1, 1) ~ty:varchar);
    ("UCASE", simple "fn:upper-case" ~args:(1, 1) ~ty:varchar);
    ("LOWER", simple "fn:lower-case" ~args:(1, 1) ~ty:varchar);
    ("LCASE", simple "fn:lower-case" ~args:(1, 1) ~ty:varchar);
    ("LENGTH", simple "fn:string-length" ~args:(1, 1) ~ty:Sql_type.Integer);
    ("CHAR_LENGTH", simple "fn:string-length" ~args:(1, 1) ~ty:Sql_type.Integer);
    ( "CHARACTER_LENGTH",
      simple "fn:string-length" ~args:(1, 1) ~ty:Sql_type.Integer );
    ("SUBSTRING", simple "fn:substring" ~args:(2, 3) ~ty:varchar);
    ("SUBSTR", simple "fn:substring" ~args:(2, 3) ~ty:varchar);
    ("POSITION", simple "fn-bea:position" ~args:(2, 2) ~ty:Sql_type.Integer);
    ("LOCATE", simple "fn-bea:position" ~args:(2, 2) ~ty:Sql_type.Integer);
    ("TRIM", simple "fn-bea:trim" ~args:(1, 1) ~ty:varchar);
    ("LTRIM", simple "fn-bea:trim-left" ~args:(1, 1) ~ty:varchar);
    ("RTRIM", simple "fn-bea:trim-right" ~args:(1, 1) ~ty:varchar);
    ("ABS", numeric_passthrough "fn:abs");
    ("FLOOR", numeric_passthrough "fn:floor");
    ("CEILING", numeric_passthrough "fn:ceiling");
    ("CEIL", numeric_passthrough "fn:ceiling");
    ("ROUND", numeric_passthrough "fn:round");
    ( "MOD",
      {
        min_args = 2;
        max_args = 2;
        result_type = promote_args;
        nullable = any_null;
        null_propagating = false;  (* arithmetic maps () to () *)
        emit =
          (fun args ->
            match args with
            | [ a; b ] -> X.Binop (X.B_arith X.Mod, a, b)
            | _ -> assert false);
      } );
    ( "EXTRACT_YEAR",
      simple "fn:year-from-date" ~args:(1, 1) ~ty:Sql_type.Integer );
    ( "EXTRACT_MONTH",
      simple "fn:month-from-date" ~args:(1, 1) ~ty:Sql_type.Integer );
    ("EXTRACT_DAY", simple "fn:day-from-date" ~args:(1, 1) ~ty:Sql_type.Integer);
    ( "EXTRACT_HOUR",
      simple "fn:hours-from-time" ~args:(1, 1) ~ty:Sql_type.Integer );
    ( "EXTRACT_MINUTE",
      simple "fn:minutes-from-time" ~args:(1, 1) ~ty:Sql_type.Integer );
    ( "EXTRACT_SECOND",
      simple "fn:seconds-from-time" ~args:(1, 1) ~ty:Sql_type.Integer );
    ( "COALESCE",
      {
        min_args = 1;
        max_args = 99;
        result_type = promote_or_first;
        nullable = List.for_all Fun.id;
        null_propagating = false;
        emit =
          (fun args ->
            match List.rev args with
            | [] -> assert false
            | last :: rev_init ->
              List.fold_left
                (fun acc arg -> X.call "fn-bea:if-empty" [ arg; acc ])
                last rev_init);
      } );
    ( "NULLIF",
      {
        min_args = 2;
        max_args = 2;
        result_type = (fun args -> Option.value (List.hd args) ~default:varchar);
        nullable = (fun _ -> true);
        null_propagating = false;
        emit =
          (fun args ->
            match args with
            | [ a; b ] ->
              X.If (X.Binop (X.B_general X.Eq, a, b), X.empty_seq, a)
            | _ -> assert false);
      } );
  ]

let find name = List.assoc_opt (String.uppercase_ascii name) entries
let names () = List.map fst entries
