(** Output column descriptors: the computed result schema of a
    translated query.

    [label] is what JDBC metadata reports (the alias, or the bare
    column name); [element] is the XML element name used inside
    generated RECORD constructors — qualified and dot-separated,
    following the paper's [<CUSTOMERS.CUSTOMERID>] style, and
    sanitized to be a valid XML name. *)

type t = {
  label : string;
  element : string;
  ty : Aqua_relational.Sql_type.t;
  nullable : bool;
}

val make :
  label:string ->
  element:string ->
  ty:Aqua_relational.Sql_type.t ->
  nullable:bool ->
  t

val to_schema_column : t -> Aqua_relational.Schema.column
val to_schema : t list -> Aqua_relational.Schema.t
val pp : Format.formatter -> t -> unit
