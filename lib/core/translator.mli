(** The SQL-92 to XQuery translator — the paper's core contribution.

    [translate] runs the three stages of section 3.4:
    stage one parses the SQL and captures contexts, stage two validates
    it against data-service metadata and restructures (wildcard
    expansion, alias and position resolution), stage three serializes
    every resultset node into XQuery and assembles the final query.

    {[
      let env = Aqua_translator.Semantic.env_of_application app in
      let t = Aqua_translator.Translator.translate env
                "SELECT CUSTOMERID ID FROM CUSTOMERS WHERE CUSTOMERID > 10" in
      print_string (Aqua_xquery.Pretty.query_to_string t.xquery)
    ]} *)

type t = {
  statement : Aqua_sql.Ast.statement;  (** stage-one AST *)
  xquery : Aqua_xquery.Ast.query;      (** RECORDSET-of-RECORDs query *)
  columns : Outcol.t list;             (** computed result schema *)
}

val translate :
  ?style:Generate.style -> Semantic.env -> string -> t
(** @raise Errors.Error on syntax or semantic errors. *)

val translate_result :
  ?style:Generate.style -> Semantic.env -> string -> (t, Errors.t) result

val translate_statement :
  ?style:Generate.style -> Semantic.env -> Aqua_sql.Ast.statement -> t
(** Stages two and three only, for callers that already parsed. *)

val for_text_transport : t -> Aqua_xquery.Ast.query
(** Wraps the translated query for the text-encoded result transport
    of paper section 4. *)

val to_string : t -> string
(** Pretty-printed XQuery text. *)
