(** The preconfigured map of SQL scalar functions to XQuery Functions &
    Operators (paper section 3.5 (iii)). *)

type entry = {
  min_args : int;
  max_args : int;
  result_type : Aqua_relational.Sql_type.t option list -> Aqua_relational.Sql_type.t;
      (** SQL result type given argument types ([None] = parameter /
          untyped) *)
  nullable : bool list -> bool;
      (** result nullability given argument nullability *)
  null_propagating : bool;
      (** SQL gives NULL when any argument is NULL; when [true] the
          generator adds an emptiness guard if an argument may be null *)
  emit : Aqua_xquery.Ast.expr list -> Aqua_xquery.Ast.expr;
      (** builds the XQuery call from translated arguments *)
}

val find : string -> entry option
(** Case-insensitive lookup by SQL function name (the parser's
    normalized names, e.g. ["EXTRACT_YEAR"], ["LTRIM"]). *)

val names : unit -> string list
(** All supported SQL function names. *)
