(* Stage three of the translation (paper sections 3.4.3 and 3.5):
   a walk over the validated AST in which every resultset node
   translates itself into an XQuery expression — tables into [for]
   clauses over data-service functions, derived tables into [let]-bound
   RECORDSETs, outer joins into the if-empty pattern of Example 10,
   grouping into the BEA group-by extension, set operations into
   membership patterns — and the pieces are assembled bottom-up.

   Boolean predicates are translated with an explicit polarity so SQL
   three-valued logic maps onto XQuery two-valued logic: [gen_pred
   ~polarity:true p] is true exactly when [p] is TRUE in SQL, and
   [gen_pred ~polarity:false p] exactly when [p] is FALSE.  Negation
   flips the polarity instead of emitting [fn:not], which would
   conflate UNKNOWN with FALSE. *)

module A = Aqua_sql.Ast
module X = Aqua_xquery.Ast
module Sql_type = Aqua_relational.Sql_type
module Metadata = Aqua_dsp.Metadata
module Atomic = Aqua_xml.Atomic

let fail = Errors.raise_error

type style = Patterned | Naive

type state = {
  namer : Namer.t;
  env : Semantic.env;
  style : style;
  mutable imports : X.schema_import list;  (* reverse order *)
}

let create_state ?(style = Patterned) env =
  { namer = Namer.create (); env; style; imports = [] }

(* Registers a schema import for a table's namespace and returns the
   prefix to call its function with. *)
let import state (meta : Metadata.table) =
  match
    List.find_opt
      (fun (i : X.schema_import) -> i.X.namespace = meta.Metadata.namespace)
      state.imports
  with
  | Some i -> i.X.prefix
  | None ->
    let prefix = Printf.sprintf "ns%d" (List.length state.imports) in
    state.imports <-
      state.imports
      @ [ {
            X.prefix;
            namespace = meta.Metadata.namespace;
            location = meta.Metadata.location;
          } ];
    prefix

(* Generation context: the scope (whose views carry XQuery bindings)
   plus, inside a grouped query, how aggregates and grouping columns
   translate. *)
type group_ctx = {
  partition_var : string;
  (* resolved grouping columns -> key variable; vcols are matched by
     physical identity so same-label columns from different join sides
     stay distinct *)
  key_vars : (Scope.view * Scope.vcol * string) list;
  (* the record layout the partition's items follow: resolution ->
     qualified element name *)
  inter_elem : (Scope.view * Scope.vcol * string) list;
}

type gctx = {
  scope : Scope.t;
  group : group_ctx option;
}

let binding_of (view : Scope.view) =
  match view.Scope.binding with
  | Some v -> v
  | None -> fail Errors.Unsupported "internal: view without an XQuery binding"

let col_path (r : Scope.resolution) =
  X.path1 (X.var (binding_of r.Scope.res_view)) r.Scope.res_col.Scope.element

let resolve_exn scope ?qualifier name pos =
  match Scope.resolve scope ?qualifier name with
  | Ok r -> r
  | Error Scope.Not_found_in_scope ->
    fail ~pos Errors.Unknown_column "column %s does not exist"
      (match qualifier with Some q -> q ^ "." ^ name | None -> name)
  | Error (Scope.Ambiguous cs) ->
    fail ~pos Errors.Ambiguous_column "column %s is ambiguous: %s" name
      (String.concat ", " cs)

(* Null-aware optional element: absent when the value is empty.  The
   guard is elided when metadata proves the value non-null (patterned
   style); the naive style always guards. *)
let optional_element state ~nullable ~elem value =
  let body = X.elem elem [ X.call "fn:data" [ value ] ] in
  if nullable || state.style = Naive then
    X.If (X.call "fn:empty" [ value ], X.empty_seq, body)
  else body

let optional_element_of_atomic state ~nullable ~elem value =
  (* for already-atomized (computed) values bound to a variable *)
  let body = X.elem elem [ value ] in
  if nullable || state.style = Naive then
    X.If (X.call "fn:empty" [ value ], X.empty_seq, body)
  else body

(* ------------------------------------------------------------------ *)
(* Literals with casts (paper: `xs:integer(10)`)                      *)

let literal_expr (lit : A.literal) : X.expr =
  match lit with
  | A.L_int i -> X.int i
  | A.L_num (f, _) -> X.Literal (Atomic.Decimal f)
  | A.L_string s -> X.str s
  | A.L_bool b -> X.Literal (Atomic.Boolean b)
  | A.L_null -> X.empty_seq
  | A.L_date s -> X.call "xs:date" [ X.str s ]
  | A.L_time s -> X.call "xs:time" [ X.str s ]
  | A.L_timestamp s -> X.call "xs:dateTime" [ X.str s ]

let cast_literal_to ty (lit : A.literal) : X.expr =
  match lit with
  | A.L_null -> X.empty_seq
  | A.L_date _ | A.L_time _ | A.L_timestamp _ -> literal_expr lit
  | _ -> X.call (Sql_type.xquery_name ty) [ literal_expr lit ]

(* ------------------------------------------------------------------ *)
(* LIKE patterns                                                      *)

type like_shape =
  | Like_exact of string
  | Like_prefix of string
  | Like_suffix of string
  | Like_infix of string
  | Like_general

let like_shape ~escape pattern =
  if escape <> None then Like_general
  else begin
    let n = String.length pattern in
    let has_meta_between i j =
      let rec go k =
        k < j && (pattern.[k] = '%' || pattern.[k] = '_' || go (k + 1))
      in
      i < j && go i
    in
    if n = 0 then Like_exact ""
    else if String.contains pattern '_' then Like_general
    else begin
      let leading = pattern.[0] = '%' in
      let trailing = n > 0 && pattern.[n - 1] = '%' in
      let inner_start = if leading then 1 else 0 in
      let inner_end = if trailing && n > inner_start then n - 1 else n in
      let inner =
        if inner_end > inner_start then
          String.sub pattern inner_start (inner_end - inner_start)
        else ""
      in
      if has_meta_between inner_start inner_end then Like_general
      else
        match (leading, trailing) with
        | false, false -> Like_exact pattern
        | false, true -> Like_prefix inner
        | true, false -> Like_suffix inner
        | true, true -> Like_infix inner
    end
  end

(* ================================================================== *)
(* Expressions                                                        *)

let rec gen_expr state gctx (e : A.expr) : X.expr =
  match e with
  | A.Lit lit -> literal_expr lit
  | A.Column { qualifier; name; pos } ->
    X.call "fn:data" [ gen_column_path state gctx ?qualifier name pos ]
  | A.Param n -> X.var (Printf.sprintf "param%d" n)
  | A.Arith (op, a, b) ->
    let xop =
      match op with
      | A.Add -> X.Add
      | A.Sub -> X.Sub
      | A.Mul -> X.Mul
      | A.Div -> X.Div
    in
    X.Binop (X.B_arith xop, gen_operand state gctx a, gen_operand state gctx b)
  | A.Neg a -> X.Neg (gen_operand state gctx a)
  | A.Concat (a, b) ->
    let xa = gen_operand state gctx a and xb = gen_operand state gctx b in
    (* SQL || yields NULL when either side is NULL *)
    X.If
      ( X.Binop
          ( X.B_or,
            X.call "fn:empty" [ xa ],
            X.call "fn:empty" [ xb ] ),
        X.empty_seq,
        X.call "fn:concat" [ xa; xb ] )
  | A.Func { name; args } -> gen_function state gctx name args
  | A.Agg { func; distinct; arg } ->
    gen_aggregate state gctx ~func ~distinct ~arg
  | A.Cast (a, ty) ->
    X.call (Sql_type.xquery_name ty) [ gen_operand state gctx a ]
  | A.Case { operand; branches; else_ } ->
    let else_expr =
      match else_ with
      | Some e -> gen_operand state gctx e
      | None -> X.empty_seq
    in
    let cond_of (w, _) =
      match operand with
      | None -> gen_pred state gctx ~polarity:true w
      | Some op ->
        (* simple CASE: operand = when-value *)
        X.Binop
          ( X.B_general X.Eq,
            gen_operand state gctx op,
            gen_operand state gctx w )
    in
    List.fold_right
      (fun ((_, t) as branch) acc ->
        X.If (cond_of branch, gen_operand state gctx t, acc))
      branches else_expr
  | A.Scalar_subquery q ->
    let records, cols = gen_query_records state gctx.scope q in
    let elem =
      match cols with
      | [ c ] -> c.Outcol.element
      | _ ->
        fail Errors.Cardinality
          "a scalar subquery must return exactly one column"
    in
    X.call "fn:zero-or-one"
      [ X.call "fn:data" [ X.path1 records elem ] ]
  | A.Cmp _ | A.And _ | A.Or _ | A.Not _ | A.Is_null _ | A.Between _
  | A.Like _ | A.In_list _ | A.In_query _ | A.Exists _ | A.Quantified _ ->
    (* a predicate used as a value: TRUE / FALSE (never NULL at this
       2-valued boundary, mirroring a CASE WHEN p THEN TRUE ELSE FALSE) *)
    X.If
      ( gen_pred state gctx ~polarity:true e,
        X.Literal (Atomic.Boolean true),
        X.Literal (Atomic.Boolean false) )

(* An operand of arithmetic / comparisons: column references stay as
   paths (atomization is implicit), exactly as in the paper's
   examples. *)
and gen_operand state gctx (e : A.expr) : X.expr =
  match e with
  | A.Column { qualifier; name; pos } ->
    gen_column_path state gctx ?qualifier name pos
  | _ -> gen_expr state gctx e

and gen_column_path state gctx ?qualifier name pos : X.expr =
  ignore state;
  match gctx.group with
  | None -> col_path (resolve_exn gctx.scope ?qualifier name pos)
  | Some g -> (
    (* inside a grouped query: a bare column must be a grouping column
       (validated in stage two) and maps to its key variable *)
    let r = resolve_exn gctx.scope ?qualifier name pos in
    match
      List.find_opt
        (fun (view, col, _) ->
          view == r.Scope.res_view && col == r.Scope.res_col)
        g.key_vars
    with
    | Some (_, _, keyvar) -> X.var keyvar
    | None ->
      fail ~pos Errors.Grouping
        "column %s must appear in the GROUP BY clause or inside an \
         aggregate" name)

and gen_function state gctx name args : X.expr =
  match Funcmap.find name with
  | None -> fail Errors.Unsupported "unknown function %s" name
  | Some entry ->
    let xargs = List.map (gen_operand state gctx) args in
    let call = entry.Funcmap.emit xargs in
    if not entry.Funcmap.null_propagating then call
    else begin
      (* SQL gives NULL when any argument is NULL; guard unless
         metadata proves all arguments non-null *)
      let tenv = Semantic.typer_env state.env gctx.scope in
      let needs_guard arg =
        state.style = Naive
        ||
        match gctx.group with
        | Some _ -> true  (* conservatively guard inside grouped exprs *)
        | None -> (
          try (Typer.infer tenv arg).Typer.nullable with Errors.Error _ -> true)
      in
      let guarded =
        List.filter_map
          (fun (a, xa) -> if needs_guard a then Some xa else None)
          (List.combine args xargs)
      in
      match guarded with
      | [] -> call
      | g :: gs ->
        let cond =
          List.fold_left
            (fun acc x ->
              X.Binop (X.B_or, acc, X.call "fn:empty" [ x ]))
            (X.call "fn:empty" [ g ])
            gs
        in
        X.If (cond, X.empty_seq, call)
    end

and gen_aggregate state gctx ~(func : A.agg_func) ~distinct ~arg : X.expr =
  let g =
    match gctx.group with
    | Some g -> g
    | None ->
      fail Errors.Grouping "aggregate function %s outside a grouped query"
        (A.agg_func_name func)
  in
  let partition = X.var g.partition_var in
  match (func, arg) with
  | A.A_count_star, _ -> X.call "fn:count" [ partition ]
  | _, None -> fail Errors.Unsupported "aggregate without an argument"
  | func, Some arg ->
    (* The collected value sequence over the partition.  A plain column
       argument becomes a direct path over the partition (patterned
       style); a computed argument iterates the partition records. *)
    let collected =
      match arg with
      | A.Column { qualifier; name; pos } when state.style = Patterned ->
        let r = resolve_exn gctx.scope ?qualifier name pos in
        let elem =
          match
            List.find_opt
              (fun (view, col, _) ->
                view == r.Scope.res_view && col == r.Scope.res_col)
              g.inter_elem
          with
          | Some (_, _, elem) -> elem
          | None ->
            fail ~pos Errors.Grouping
              "internal: column %s missing from the grouping record" name
        in
        X.path1 partition elem
      | _ ->
        let v = Namer.var state.namer ~ctx:0 Namer.GB in
        let inner_view =
          {
            Scope.alias = None;
            cols =
              List.map
                (fun ((view : Scope.view), (c : Scope.vcol), elem) ->
                  let qualifier =
                    match c.Scope.qualifier with
                    | Some _ as q -> q
                    | None -> view.Scope.alias
                  in
                  { c with Scope.qualifier = qualifier; element = elem })
                g.inter_elem;
            binding = Some v;
          }
        in
        (* rebuild per-alias qualifiers so T.C resolves inside the agg *)
        let inner_scope = Scope.push Scope.root [ inner_view ] in
        let inner_gctx = { scope = inner_scope; group = None } in
        X.Flwor
          {
            X.clauses = [ X.For { var = v; source = partition } ];
            X.return = gen_operand state inner_gctx arg;
          }
    in
    let collected =
      if distinct then X.call "fn:distinct-values" [ collected ]
      else collected
    in
    (match func with
    | A.A_count_star -> assert false
    | A.A_count -> X.call "fn:count" [ collected ]
    | A.A_sum ->
      (* SQL: SUM over the empty (all-NULL) set is NULL, not 0 *)
      X.If
        ( X.call "fn:empty" [ collected ],
          X.empty_seq,
          X.call "fn:sum" [ collected ] )
    | A.A_avg -> X.call "fn:avg" [ collected ]
    | A.A_min -> X.call "fn:min" [ collected ]
    | A.A_max -> X.call "fn:max" [ collected ])

(* ================================================================== *)
(* Predicates with polarity                                           *)

and inverse_cmp (op : A.cmp_op) : A.cmp_op =
  match op with
  | A.Eq -> A.Neq
  | A.Neq -> A.Eq
  | A.Lt -> A.Ge
  | A.Le -> A.Gt
  | A.Gt -> A.Le
  | A.Ge -> A.Lt

and xq_cmp (op : A.cmp_op) : X.cmp =
  match op with
  | A.Eq -> X.Eq
  | A.Neq -> X.Ne
  | A.Lt -> X.Lt
  | A.Le -> X.Le
  | A.Gt -> X.Gt
  | A.Ge -> X.Ge

(* Casting discipline for comparisons and sort keys.  The platform's
   real data is schema-typed; over our untyped flat XML the translator
   makes types explicit instead (the paper's visible `xs:integer(10)`
   casts): literals are cast to the other operand's type, and column
   paths of non-character types are cast to their own metadata type so
   the XQuery comparison is numeric/date rather than string. *)
and needs_type_cast (ty : Sql_type.t) =
  Sql_type.is_numeric ty || Sql_type.is_datetime ty || ty = Sql_type.Boolean

and self_cast ty expr =
  if needs_type_cast ty then X.call (Sql_type.xquery_name ty) [ expr ]
  else expr

and infer_opt state gctx e =
  let tenv = Semantic.typer_env state.env gctx.scope in
  try Some (Typer.infer tenv e) with Errors.Error _ -> None

(* An operand whose value participates in ordering or comparison:
   column paths get their metadata type made explicit. *)
and gen_typed_operand state gctx (e : A.expr) : X.expr =
  let x = gen_operand state gctx e in
  match e with
  | A.Column _ -> (
    match infer_opt state gctx e with
    | Some info when info.Typer.known -> self_cast info.Typer.ty x
    | _ -> x)
  | _ -> x

(* Comparison operands: literals compared against typed expressions
   are cast to the comparison type (paper: `xs:integer(10)`). *)
and gen_cmp_operand state gctx (e : A.expr) (other : A.expr) : X.expr =
  match e with
  | A.Lit lit -> (
    match infer_opt state gctx other with
    | Some info when info.Typer.known -> cast_literal_to info.Typer.ty lit
    | _ -> literal_expr lit)
  | _ -> gen_typed_operand state gctx e

and gen_cmp state gctx ~polarity op a b : X.expr =
  let op = if polarity then op else inverse_cmp op in
  X.Binop
    ( X.B_general (xq_cmp op),
      gen_cmp_operand state gctx a b,
      gen_cmp_operand state gctx b a )

and gen_pred state gctx ~polarity (e : A.expr) : X.expr =
  match e with
  | A.And (a, b) ->
    let xa = gen_pred state gctx ~polarity a in
    let xb = gen_pred state gctx ~polarity b in
    X.Binop ((if polarity then X.B_and else X.B_or), xa, xb)
  | A.Or (a, b) ->
    let xa = gen_pred state gctx ~polarity a in
    let xb = gen_pred state gctx ~polarity b in
    X.Binop ((if polarity then X.B_or else X.B_and), xa, xb)
  | A.Not a -> gen_pred state gctx ~polarity:(not polarity) a
  | A.Cmp (op, a, b) -> gen_cmp state gctx ~polarity op a b
  | A.Is_null { arg; negated } ->
    let v = gen_operand state gctx arg in
    let is_null = polarity <> negated in
    if is_null then X.call "fn:empty" [ v ] else X.call "fn:exists" [ v ]
  | A.Between { arg; low; high; negated } ->
    let expand =
      if negated then
        A.Or (A.Cmp (A.Lt, arg, low), A.Cmp (A.Gt, arg, high))
      else A.And (A.Cmp (A.Ge, arg, low), A.Cmp (A.Le, arg, high))
    in
    gen_pred state gctx ~polarity expand
  | A.Like { arg; pattern; escape; negated } ->
    gen_like state gctx ~polarity:(polarity <> negated) arg pattern escape
  | A.In_list { arg; items; negated } ->
    let positive = polarity <> negated in
    if positive then
      (* existential general comparison against the item sequence *)
      X.Binop
        ( X.B_general X.Eq,
          gen_operand state gctx arg,
          X.Seq (List.map (fun i -> gen_cmp_operand state gctx i arg) items) )
    else
      (* TRUE only when the argument differs from every item *)
      List.fold_left
        (fun acc item ->
          X.Binop
            ( X.B_and,
              acc,
              gen_cmp state gctx ~polarity:true A.Neq arg item ))
        (gen_cmp state gctx ~polarity:true A.Neq arg (List.hd items))
        (List.tl items)
  | A.In_query { arg; query; negated } ->
    let positive = polarity <> negated in
    let records, cols = gen_query_records state gctx.scope query in
    let elem =
      match cols with
      | [ c ] -> c.Outcol.element
      | _ -> fail Errors.Cardinality "IN subquery must return one column"
    in
    if positive then
      X.Binop
        ( X.B_general X.Eq,
          gen_typed_operand state gctx arg,
          X.path1 records elem )
    else begin
      (* NOT IN is TRUE only when the subquery has no NULLs and no
         matches; a record with an absent column makes the comparison
         below false, which is exactly SQL's UNKNOWN -> excluded *)
      let v = Namer.var state.namer ~ctx:0 Namer.WH in
      X.Quantified
        {
          every = true;
          bindings = [ (v, records) ];
          satisfies =
            X.Binop
              ( X.B_general X.Ne,
                gen_typed_operand state gctx arg,
                X.path1 (X.var v) elem );
        }
    end
  | A.Exists q ->
    let records, _ = gen_query_records state gctx.scope q in
    if polarity then X.call "fn:exists" [ records ]
    else X.call "fn:empty" [ records ]
  | A.Quantified { op; quantifier; arg; query } ->
    let records, cols = gen_query_records state gctx.scope query in
    let elem =
      match cols with
      | [ c ] -> c.Outcol.element
      | _ ->
        fail Errors.Cardinality "quantified subquery must return one column"
    in
    let v = Namer.var state.namer ~ctx:0 Namer.WH in
    let body op =
      X.Binop
        ( X.B_general (xq_cmp op),
          gen_typed_operand state gctx arg,
          X.path1 (X.var v) elem )
    in
    (match (quantifier, polarity) with
    | A.Q_any, true ->
      X.Quantified
        { every = false; bindings = [ (v, records) ]; satisfies = body op }
    | A.Q_any, false ->
      X.Quantified
        {
          every = true;
          bindings = [ (v, records) ];
          satisfies = body (inverse_cmp op);
        }
    | A.Q_all, true ->
      X.Quantified
        { every = true; bindings = [ (v, records) ]; satisfies = body op }
    | A.Q_all, false ->
      X.Quantified
        {
          every = false;
          bindings = [ (v, records) ];
          satisfies = body (inverse_cmp op);
        })
  | A.Lit (A.L_bool b) ->
    if b = polarity then X.call "fn:true" [] else X.call "fn:false" []
  | A.Lit A.L_null -> X.call "fn:false" []
  | _ ->
    (* boolean-valued expression (boolean column, CASE, parameter):
       TRUE-test or FALSE-test via a general comparison, so NULL is
       neither *)
    X.Binop
      ( X.B_general X.Eq,
        gen_operand state gctx e,
        X.Literal (Atomic.Boolean polarity) )

and gen_like state gctx ~polarity arg pattern escape : X.expr =
  let xarg = gen_operand state gctx arg in
  (* SQL: NULL LIKE p is UNKNOWN, but the string functions treat an
     empty sequence as "" — guard with fn:exists when the argument may
     be null *)
  let exists_guarded test =
    let nullable =
      match infer_opt state gctx arg with
      | Some info -> info.Typer.nullable
      | None -> true
    in
    if nullable || state.style = Naive then
      X.Binop (X.B_and, X.call "fn:exists" [ xarg ], test)
    else test
  in
  let positive_test =
    match (pattern, escape, state.style) with
    | A.Lit (A.L_string p), None, Patterned -> (
      match like_shape ~escape:None p with
      | Like_exact s -> X.Binop (X.B_general X.Eq, xarg, X.str s)
      | Like_prefix s -> exists_guarded (X.call "fn:starts-with" [ xarg; X.str s ])
      | Like_suffix s -> exists_guarded (X.call "fn:ends-with" [ xarg; X.str s ])
      | Like_infix s -> exists_guarded (X.call "fn:contains" [ xarg; X.str s ])
      | Like_general ->
        X.call "fn-bea:like" [ xarg; X.str p ])
    | _ ->
      let xpat = gen_operand state gctx pattern in
      let args =
        match escape with
        | None -> [ xarg; xpat ]
        | Some e -> [ xarg; xpat; gen_operand state gctx e ]
      in
      X.call "fn-bea:like" args
  in
  if polarity then positive_test
  else
    (* FALSE requires a non-null argument and a failing match *)
    X.Binop
      ( X.B_and,
        X.call "fn:exists" [ xarg ],
        X.call "fn:not" [ positive_test ] )

(* ================================================================== *)
(* FROM clauses: resultset nodes translating themselves               *)

(* Every leaf produces FLWOR clauses plus a bound view. *)
and gen_table_leaf state ctx (meta : Metadata.table) ~alias :
    X.clause list * Scope.view =
  let prefix = import state meta in
  let v = Namer.var state.namer ~ctx Namer.FR in
  let source = X.call (prefix ^ ":" ^ meta.Metadata.table) [] in
  let view = { (Semantic.table_view meta ~alias) with Scope.binding = Some v } in
  ([ X.For { var = v; source } ], view)

and gen_derived_leaf state ctx (query : A.query) ~alias :
    X.clause list * Scope.view =
  let records, cols = gen_query_records state Scope.root query in
  let tempvar = Namer.tempvar state.namer ~ctx Namer.FR in
  let v = Namer.var state.namer ~ctx Namer.FR in
  let clauses =
    [ X.Let { var = tempvar; value = X.elem "RECORDSET" [ records ] };
      X.For { var = v; source = X.path1 (X.var tempvar) "RECORD" } ]
  in
  let view = { (Semantic.derived_view cols ~alias) with Scope.binding = Some v } in
  (clauses, view)

(* Is this join tree free of outer joins (so it can be inlined as a
   chain of for-clauses with where-conjuncts, the paper's "double
   for")? *)
and gen_primary_leaf state ctx (p : A.table_primary) =
  match p with
  | A.Table_ref_name { name; alias; pos } ->
    let meta = state.env.Semantic.lookup_table name pos in
    gen_table_leaf state ctx meta ~alias
  | A.Derived { query; alias } -> gen_derived_leaf state ctx query ~alias

(* Translates one FROM item into clauses + the views it contributes.
   [parent] is the enclosing scope for correlation inside ON
   subqueries. *)
and gen_table_ref state ctx parent (tr : A.table_ref) :
    X.clause list * Scope.view list =
  match tr with
  | A.Primary p ->
    let clauses, view = gen_primary_leaf state ctx p in
    (clauses, [ view ])
  | A.Join { kind = A.J_cross; left; right; cond = _ } ->
    let lc, lv = gen_table_ref state ctx parent left in
    let rc, rv = gen_table_ref state ctx parent right in
    (lc @ rc, lv @ rv)
  | A.Join { kind = A.J_inner; left; right; cond } ->
    let lc, lv = gen_table_ref state ctx parent left in
    let rc, rv = gen_table_ref state ctx parent right in
    let views = lv @ rv in
    let where =
      match cond with
      | None -> []
      | Some c ->
        let scope = Scope.push parent views in
        [ X.Where (gen_pred state { scope; group = None } ~polarity:true c) ]
    in
    (lc @ rc @ where, views)
  | A.Join { kind = A.J_left | A.J_right | A.J_full; _ } ->
    let clauses, view = gen_outer_join state ctx parent tr in
    (clauses, [ view ])

(* Materializes an outer-join tree into a let-bound RECORDSET whose
   RECORDs carry qualified column elements, then iterates it — the
   paper's Example 10 pattern generalized. *)
and gen_outer_join state ctx parent (tr : A.table_ref) :
    X.clause list * Scope.view =
  let records, view_cols = gen_join_records state ctx parent tr in
  let tempvar = Namer.tempvar state.namer ~ctx Namer.FR in
  let v = Namer.var state.namer ~ctx Namer.FR in
  let view = { Scope.alias = None; cols = view_cols; binding = Some v } in
  ( [ X.Let { var = tempvar; value = X.elem "RECORDSET" [ records ] };
      X.For { var = v; source = X.path1 (X.var tempvar) "RECORD" } ],
    view )

(* Produces an expression yielding RECORD elements for a join tree,
   along with the qualified column layout of those records. *)
and gen_join_records state ctx parent (tr : A.table_ref) :
    X.expr * Scope.vcol list =
  match tr with
  | A.Primary _ -> assert false  (* only called on joins *)
  | A.Join { kind; left; right; cond } ->
    (* RIGHT OUTER JOIN mirrors to LEFT with sides swapped *)
    let kind, left, right =
      match kind with
      | A.J_right -> (A.J_left, right, left)
      | k -> (k, left, right)
    in
    let side side_tr =
      (* clauses + bound views + the qualified record layout of the side *)
      let clauses, views = gen_table_ref state ctx parent side_tr in
      let cols =
        List.concat_map
          (fun v -> Semantic.qualify_view_cols v)
          views
      in
      (clauses, views, cols)
    in
    let lclauses, lviews, lcols = side left in
    (* Build the RECORD fields directly: each side's views know their
       bindings; the qualified element name pairs with the underlying
       element in the view's rows. *)
    let fields_of_views views =
      List.concat_map
        (fun (v : Scope.view) ->
          let qualified = Semantic.qualify_view_cols v in
          List.map2
            (fun (orig : Scope.vcol) (q : Scope.vcol) ->
              let value = X.path1 (X.var (binding_of v)) orig.Scope.element in
              optional_element state ~nullable:orig.Scope.nullable
                ~elem:q.Scope.element value)
            v.Scope.cols qualified)
        views
    in
    let lfields = fields_of_views lviews in
    (match kind with
    | A.J_right -> assert false  (* mirrored to J_left above *)
    | A.J_inner | A.J_cross ->
      let rclauses, rviews, rcols = side right in
      let scope = Scope.push parent (lviews @ rviews) in
      let where =
        match cond with
        | None -> []
        | Some c ->
          [ X.Where (gen_pred state { scope; group = None } ~polarity:true c) ]
      in
      let rfields = fields_of_views rviews in
      ( X.Flwor
          {
            X.clauses = lclauses @ rclauses @ where;
            X.return = X.elem "RECORD" (lfields @ rfields);
          },
        lcols @ rcols )
    | A.J_left | A.J_full ->
      let rclauses, rviews, rcols = side right in
      let rcols_nullable = Semantic.make_nullable rcols in
      let scope = Scope.push parent (lviews @ rviews) in
      let on_pred =
        match cond with
        | None ->
          fail Errors.Unsupported "outer join requires an ON condition"
        | Some c -> gen_pred state { scope; group = None } ~polarity:true c
      in
      let rfields = fields_of_views rviews in
      (* matched rows: left clauses, right clauses, ON where *)
      let matched =
        X.Flwor
          {
            X.clauses = lclauses @ rclauses @ [ X.Where on_pred ];
            X.return = X.elem "RECORD" (lfields @ rfields);
          }
      in
      (* left rows with no match: quantifier over the right side *)
      let unmatched_left =
        X.Flwor
          {
            X.clauses =
              lclauses
              @ [ X.Where
                    (X.call "fn:empty"
                       [ X.Flwor
                           {
                             X.clauses = rclauses @ [ X.Where on_pred ];
                             X.return = X.int 1;
                           } ]) ];
            X.return = X.elem "RECORD" lfields;
          }
      in
      let parts =
        match kind with
        | A.J_left -> [ matched; unmatched_left ]
        | A.J_full ->
          let unmatched_right =
            X.Flwor
              {
                X.clauses =
                  rclauses
                  @ [ X.Where
                        (X.call "fn:empty"
                           [ X.Flwor
                               {
                                 X.clauses = lclauses @ [ X.Where on_pred ];
                                 X.return = X.int 1;
                               } ]) ];
                X.return = X.elem "RECORD" rfields;
              }
          in
          [ matched; unmatched_left; unmatched_right ]
        | _ -> assert false
      in
      let lcols_out =
        match kind with
        | A.J_full -> Semantic.make_nullable lcols
        | _ -> lcols
      in
      (X.Seq parts, lcols_out @ rcols_nullable))

(* ================================================================== *)
(* Query specs                                                        *)

(* Returns an expression yielding RECORD elements plus the output
   columns. [parent] scope enables correlated subqueries. *)
and gen_query_records state parent (q : A.query) : X.expr * Outcol.t list =
  match q with
  | A.Spec spec -> gen_spec_records state parent spec
  | A.Set { op; all; left; right } ->
    gen_setop_records state parent op all left right

and gen_spec_records state parent (spec : A.query_spec) :
    X.expr * Outcol.t list =
  let ctx = Namer.fresh_ctx state.namer in
  (* FROM *)
  let from_parts = List.map (gen_table_ref state ctx parent) spec.A.from in
  let clauses = List.concat_map fst from_parts in
  let views = List.concat_map snd from_parts in
  let scope = Scope.push parent views in
  let gctx = { scope; group = None } in
  (* WHERE *)
  let clauses =
    clauses
    @
    match spec.A.where with
    | None -> []
    | Some w -> [ X.Where (gen_pred state gctx ~polarity:true w) ]
  in
  (* select-list expansion against the bound scope *)
  let items = Semantic.expand_select state.env scope spec in
  let cols = List.map fst items in
  if Semantic.is_grouped spec then
    gen_grouped state ctx spec gctx clauses items
  else begin
    let records =
      build_return state gctx ~clauses ~items ~order:[]
    in
    let records =
      if spec.A.distinct then distinct_records state ctx cols records
      else records
    in
    (records, cols)
  end

(* Build the FLWOR returning one RECORD per tuple.  Computed items are
   let-bound so null guards don't evaluate them twice. *)
and build_return state gctx ~clauses ~items ~order : X.expr =
  let lets = ref [] in
  let fields =
    List.map
      (fun ((col : Outcol.t), expr) ->
        match expr with
        | A.Column { qualifier; name; pos } when gctx.group = None ->
          let path = gen_column_path state gctx ?qualifier name pos in
          optional_element state ~nullable:col.Outcol.nullable
            ~elem:col.Outcol.element path
        | _ ->
          let value = gen_expr state gctx expr in
          (match value with
          | X.Literal _ | X.Var _ ->
            optional_element_of_atomic state ~nullable:col.Outcol.nullable
              ~elem:col.Outcol.element value
          | _ ->
            let v = Namer.var state.namer ~ctx:0 Namer.SL in
            lets := X.Let { var = v; value } :: !lets;
            optional_element_of_atomic state ~nullable:col.Outcol.nullable
              ~elem:col.Outcol.element (X.var v)))
      items
  in
  let order_clause =
    match order with
    | [] -> []
    | specs -> [ X.Order_by specs ]
  in
  X.Flwor
    {
      X.clauses = clauses @ List.rev !lets @ order_clause;
      X.return = X.elem "RECORD" fields;
    }

(* Grouped query: materialize the pre-grouping tuple stream into a
   RECORDSET, regroup with the BEA extension, then project (paper
   Example 12). *)
and gen_grouped state ctx (spec : A.query_spec) gctx clauses items :
    X.expr * Outcol.t list =
  let cols = List.map fst items in
  let scope = gctx.scope in
  (* resolve grouping columns in the pre-group scope *)
  let group_resolutions =
    List.map
      (fun g ->
        match g with
        | A.Column { qualifier; name; pos } ->
          (resolve_exn scope ?qualifier name pos, name)
        | _ ->
          fail Errors.Grouping "GROUP BY items must be column references")
      spec.A.group_by
  in
  (* columns needed in the intermediate record: every column referenced
     in select items, HAVING, or GROUP BY *)
  let needed : (Scope.view * Scope.vcol) list ref = ref [] in
  let note (r : Scope.resolution) =
    if
      r.Scope.res_depth = 0
      && not
           (List.exists
              (fun (v, c) -> v == r.Scope.res_view && c == r.Scope.res_col)
              !needed)
    then needed := !needed @ [ (r.Scope.res_view, r.Scope.res_col) ]
  in
  let rec note_expr (e : A.expr) =
    match e with
    | A.Column { qualifier; name; pos } -> (
      match Scope.resolve scope ?qualifier name with
      | Ok r -> note r
      | Error _ -> ignore pos)
    | _ ->
      ignore
        (A.fold_expr
           (fun () sub -> if sub == e then () else note_expr_shallow sub)
           () e)
  and note_expr_shallow e =
    match e with A.Column _ -> note_expr e | _ -> ()
  in
  List.iter (fun (_, e) -> note_expr e) items;
  Option.iter note_expr spec.A.having;
  List.iter (fun (r, _) -> note r) group_resolutions;
  (* naive style: carry every column of every view *)
  if state.style = Naive then
    List.iter
      (fun (v : Scope.view) ->
        List.iter
          (fun c -> note { Scope.res_view = v; res_col = c; res_depth = 0 })
          v.Scope.cols)
      (Scope.views scope);
  (* intermediate record layout: qualified element names *)
  let used = Hashtbl.create 16 in
  let inter =
    List.map
      (fun ((v : Scope.view), (c : Scope.vcol)) ->
        let base =
          match (c.Scope.qualifier, v.Scope.alias) with
          | Some q, _ -> q ^ "." ^ c.Scope.label
          | None, Some a -> a ^ "." ^ c.Scope.label
          | None, None -> c.Scope.label
        in
        let elem =
          if Hashtbl.mem used base then base ^ "_2"
          else begin
            Hashtbl.add used base ();
            base
          end
        in
        (v, c, elem))
      !needed
  in
  let inter_fields =
    List.map
      (fun ((v : Scope.view), (c : Scope.vcol), elem) ->
        let value = X.path1 (X.var (binding_of v)) c.Scope.element in
        optional_element state ~nullable:c.Scope.nullable ~elem value)
      inter
  in
  let inter_var = Namer.tempvar state.namer ~ctx Namer.GB in
  let inter_records =
    X.Flwor { X.clauses; X.return = X.elem "RECORD" inter_fields }
  in
  let let_inter =
    X.Let
      { var = inter_var; value = X.elem "RECORDSET" [ inter_records ] }
  in
  let inter_elem_table =
    List.map (fun (v, (c : Scope.vcol), elem) -> (v, c, elem)) inter
  in
  if spec.A.group_by = [] then begin
    (* implicit single group: aggregates range over the whole input,
       which handles the empty-input case correctly (count star = 0) *)
    let g =
      {
        partition_var = inter_var ^ "Rows";
        key_vars = [];
        inter_elem = inter_elem_table;
      }
    in
    let let_rows =
      X.Let
        {
          var = g.partition_var;
          value = X.path1 (X.var inter_var) "RECORD";
        }
    in
    let ggctx = { gctx with group = Some g } in
    let fields =
      List.map
        (fun ((col : Outcol.t), expr) ->
          let value = gen_expr state ggctx expr in
          optional_element_of_atomic state ~nullable:col.Outcol.nullable
            ~elem:col.Outcol.element value)
        items
    in
    let record = X.elem "RECORD" fields in
    let body =
      match spec.A.having with
      | None -> record
      | Some h ->
        X.If (gen_pred state ggctx ~polarity:true h, record, X.empty_seq)
    in
    ( X.Flwor { X.clauses = [ let_inter; let_rows ]; X.return = body },
      cols )
  end
  else begin
    let row_var = Namer.var state.namer ~ctx Namer.GB in
    let partition_var = Namer.partition state.namer ~ctx in
    let keys =
      List.map
        (fun ((r : Scope.resolution), _name) ->
          let elem =
            match
              List.find_opt
                (fun (v, c, _) ->
                  v == r.Scope.res_view && c == r.Scope.res_col)
                inter_elem_table
            with
            | Some (_, _, elem) -> elem
            | None -> assert false
          in
          let keyvar = Namer.var state.namer ~ctx Namer.GB in
          (r, elem, keyvar))
        group_resolutions
    in
    let group_clause =
      X.Group
        {
          grouped = row_var;
          partition = partition_var;
          keys =
            List.map
              (fun (_, elem, keyvar) ->
                (X.call "fn:data" [ X.path1 (X.var row_var) elem ], keyvar))
              keys;
        }
    in
    let g =
      {
        partition_var;
        key_vars =
          List.map
            (fun ((r : Scope.resolution), _, keyvar) ->
              (r.Scope.res_view, r.Scope.res_col, keyvar))
            keys;
        inter_elem = inter_elem_table;
      }
    in
    let ggctx = { gctx with group = Some g } in
    let having_clause =
      match spec.A.having with
      | None -> []
      | Some h -> [ X.Where (gen_pred state ggctx ~polarity:true h) ]
    in
    let fields =
      List.map
        (fun ((col : Outcol.t), expr) ->
          let value = gen_expr state ggctx expr in
          optional_element_of_atomic state ~nullable:col.Outcol.nullable
            ~elem:col.Outcol.element value)
        items
    in
    let records =
      X.Flwor
        {
          X.clauses =
            [ let_inter;
              X.For
                {
                  var = row_var;
                  source = X.path1 (X.var inter_var) "RECORD";
                };
              group_clause ]
            @ having_clause;
          X.return = X.elem "RECORD" fields;
        }
    in
    let records =
      if spec.A.distinct then distinct_records state ctx cols records
      else records
    in
    (records, cols)
  end

(* DISTINCT / UNION dedup: regroup the records by every output column
   and keep each group's first record. *)
and distinct_records state ctx (cols : Outcol.t list) records : X.expr =
  let setvar = Namer.tempvar state.namer ~ctx Namer.SL in
  let row = Namer.var state.namer ~ctx Namer.SL in
  let partition = Namer.partition state.namer ~ctx in
  let keys =
    List.map
      (fun (c : Outcol.t) ->
        ( X.call "fn:data" [ X.path1 (X.var row) c.Outcol.element ],
          Namer.var state.namer ~ctx Namer.SL ))
      cols
  in
  X.Flwor
    {
      X.clauses =
        [ X.Let { var = setvar; value = X.elem "RECORDSET" [ records ] };
          X.For { var = row; source = X.path1 (X.var setvar) "RECORD" };
          X.Group { grouped = row; partition; keys } ];
      X.return = X.Filter (X.var partition, X.int 1);
    }

(* ================================================================== *)
(* Set operations                                                     *)

(* Re-projects records from one element layout to another (set
   operations take their column names from the left side). *)
and reproject state ctx ~(from_cols : Outcol.t list)
    ~(to_cols : Outcol.t list) records : X.expr =
  let same_layout =
    List.length from_cols = List.length to_cols
    && List.for_all2
         (fun (a : Outcol.t) (b : Outcol.t) ->
           a.Outcol.element = b.Outcol.element)
         from_cols to_cols
  in
  if same_layout then records
  else begin
    let setvar = Namer.tempvar state.namer ~ctx Namer.SL in
    let row = Namer.var state.namer ~ctx Namer.SL in
    let fields =
      List.map2
        (fun (src : Outcol.t) (dst : Outcol.t) ->
          let value = X.path1 (X.var row) src.Outcol.element in
          optional_element state ~nullable:src.Outcol.nullable
            ~elem:dst.Outcol.element value)
        from_cols to_cols
    in
    X.Flwor
      {
        X.clauses =
          [ X.Let { var = setvar; value = X.elem "RECORDSET" [ records ] };
            X.For { var = row; source = X.path1 (X.var setvar) "RECORD" } ];
        X.return = X.elem "RECORD" fields;
      }
  end

(* NULL-aware row equality between grouped key variables and a record's
   columns; used by INTERSECT/EXCEPT membership tests. *)
and roweq_keys keys other_var (cols : Outcol.t list) : X.expr =
  let per_col (keyvar : string) (c : Outcol.t) =
    let other = X.path1 (X.var other_var) c.Outcol.element in
    X.Binop
      ( X.B_or,
        X.Binop (X.B_general X.Eq, X.var keyvar, other),
        X.Binop
          ( X.B_and,
            X.call "fn:empty" [ X.var keyvar ],
            X.call "fn:empty" [ other ] ) )
  in
  match (keys, cols) with
  | [], _ | _, [] -> X.call "fn:true" []
  | k :: ks, c :: cs ->
    List.fold_left2
      (fun acc k c -> X.Binop (X.B_and, acc, per_col k c))
      (per_col k c) ks cs

and gen_setop_records state parent op all left right : X.expr * Outcol.t list =
  let ctx = Namer.fresh_ctx state.namer in
  let lrecords, lcols = gen_query_records state parent left in
  let rrecords, rcols = gen_query_records state parent right in
  (* unified output schema (validated in stage two) *)
  let out_cols =
    List.map2
      (fun (l : Outcol.t) (r : Outcol.t) ->
        { l with Outcol.nullable = l.Outcol.nullable || r.Outcol.nullable })
      lcols rcols
  in
  let rrecords = reproject state ctx ~from_cols:rcols ~to_cols:out_cols rrecords in
  match (op, all) with
  | A.S_union, true -> (X.Seq [ lrecords; rrecords ], out_cols)
  | A.S_union, false ->
    (distinct_records state ctx out_cols (X.Seq [ lrecords; rrecords ]), out_cols)
  | (A.S_intersect | A.S_except), _ ->
    let lvar = Namer.tempvar state.namer ~ctx Namer.SL in
    let rvar = Namer.tempvar state.namer ~ctx Namer.SL in
    let row = Namer.var state.namer ~ctx Namer.SL in
    let partition = Namer.partition state.namer ~ctx in
    let keyvars =
      List.map (fun _ -> Namer.var state.namer ~ctx Namer.SL) out_cols
    in
    let keys =
      List.map2
        (fun (c : Outcol.t) kv ->
          (X.call "fn:data" [ X.path1 (X.var row) c.Outcol.element ], kv))
        out_cols keyvars
    in
    let rmatch_var = Namer.var state.namer ~ctx Namer.SL in
    let matches =
      (* records of the right side equal to the current group's key *)
      X.Flwor
        {
          X.clauses =
            [ X.For
                {
                  var = rmatch_var;
                  source = X.path1 (X.var rvar) "RECORD";
                };
              X.Where (roweq_keys keyvars rmatch_var out_cols) ];
          X.return = X.var rmatch_var;
        }
    in
    let return =
      match (op, all) with
      | A.S_intersect, false ->
        X.If
          ( X.call "fn:exists" [ matches ],
            X.Filter (X.var partition, X.int 1),
            X.empty_seq )
      | A.S_except, false ->
        X.If
          ( X.call "fn:empty" [ matches ],
            X.Filter (X.var partition, X.int 1),
            X.empty_seq )
      | A.S_intersect, true ->
        (* min(l, r) copies *)
        let l = X.call "fn:count" [ X.var partition ] in
        let r = X.call "fn:count" [ matches ] in
        X.call "fn:subsequence"
          [ X.var partition;
            X.int 1;
            X.If (X.Binop (X.B_general X.Lt, r, l), r, l) ]
      | A.S_except, true ->
        (* l - r copies *)
        let l = X.call "fn:count" [ X.var partition ] in
        let r = X.call "fn:count" [ matches ] in
        X.call "fn:subsequence"
          [ X.var partition; X.int 1; X.Binop (X.B_arith X.Sub, l, r) ]
      | A.S_union, _ -> assert false
    in
    (* The lets live in an outer FLWOR so they remain visible after
       the group clause (grouping keeps only the enclosing environment
       plus keys and partition). *)
    ( X.Flwor
        {
          X.clauses =
            [ X.Let { var = lvar; value = X.elem "RECORDSET" [ lrecords ] };
              X.Let { var = rvar; value = X.elem "RECORDSET" [ rrecords ] } ];
          X.return =
            X.Flwor
              {
                X.clauses =
                  [ X.For
                      { var = row; source = X.path1 (X.var lvar) "RECORD" };
                    X.Group { grouped = row; partition; keys } ];
                X.return = return;
              };
        },
      out_cols )

(* ================================================================== *)
(* ORDER BY and the statement entry point                             *)

(* Sorts finished records by output columns (used for set operations,
   DISTINCT and grouped queries, where ORDER BY keys are restricted to
   output columns). *)
and order_output_records state ctx (cols : Outcol.t list)
    (order : (int * bool) list) records : X.expr =
  let setvar = Namer.tempvar state.namer ~ctx Namer.OB in
  let row = Namer.var state.namer ~ctx Namer.OB in
  let specs =
    List.map
      (fun (idx, descending) ->
        let c = List.nth cols idx in
        {
          X.key =
            self_cast c.Outcol.ty
              (X.call "fn:data" [ X.path1 (X.var row) c.Outcol.element ]);
          descending;
          empty = X.Empty_least;
        })
      order
  in
  X.Flwor
    {
      X.clauses =
        [ X.Let { var = setvar; value = X.elem "RECORDSET" [ records ] };
          X.For { var = row; source = X.path1 (X.var setvar) "RECORD" };
          X.Order_by specs ];
      X.return = X.var row;
    }

type output = {
  query : X.query;
  columns : Outcol.t list;
}

let output_index cols name =
  let target = String.uppercase_ascii name in
  let rec go i = function
    | [] -> None
    | (c : Outcol.t) :: rest ->
      if String.uppercase_ascii c.Outcol.label = target then Some i
      else go (i + 1) rest
  in
  go 0 cols

(* ORDER BY for a plain (ungrouped, non-distinct) top-level spec can
   use arbitrary expressions: translate keys inside the spec's own
   FLWOR.  Everything else sorts finished records by output column. *)
let rec gen_statement_internal state (stmt : A.statement) : output =
  let needs_output_sort =
    match stmt.A.body with
    | A.Spec spec -> Semantic.is_grouped spec || spec.A.distinct
    | A.Set _ -> true
  in
  let records, cols =
    match stmt.A.body with
    | A.Spec spec
      when (not needs_output_sort) && stmt.A.order_by <> [] ->
      (* regenerate the spec with the order clause inside its FLWOR *)
      gen_spec_with_order state spec stmt.A.order_by
    | _ -> gen_query_records state Scope.root stmt.A.body
  in
  let records =
    if needs_output_sort && stmt.A.order_by <> [] then begin
      (* probe the spec's own scope so column keys can be matched to
         the select items they resolve to *)
      let probe =
        match stmt.A.body with
        | A.Spec spec ->
          let scope = Semantic.spec_scope state.env Scope.root spec in
          Some (scope, Semantic.expand_select state.env scope spec)
        | A.Set _ -> None
      in
      let order =
        List.map
          (fun (o : A.order_item) ->
            let idx =
              match probe with
              | Some (scope, items) -> (
                match
                  Semantic.order_key_output_index state.env scope items o
                with
                | Some i -> i
                | None ->
                  fail Errors.Unknown_column
                    "ORDER BY key is not an output column")
              | None -> (
                match o.A.key with
                | A.Ord_position i -> i - 1
                | A.Ord_expr (A.Column { qualifier = None; name; _ }) -> (
                  match output_index cols name with
                  | Some i -> i
                  | None ->
                    fail Errors.Unknown_column
                      "ORDER BY key %s is not an output column" name)
                | A.Ord_expr _ ->
                  fail Errors.Unsupported
                    "ORDER BY expressions over set operations")
            in
            (idx, o.A.descending))
          stmt.A.order_by
      in
      let ctx = Namer.fresh_ctx state.namer in
      order_output_records state ctx cols order records
    end
    else records
  in
  let body = X.elem "RECORDSET" [ records ] in
  ( {
      query = { X.prolog = { X.imports = state.imports }; body };
      columns = cols;
    }
    : output )

and gen_spec_with_order state (spec : A.query_spec)
    (order_by : A.order_item list) : X.expr * Outcol.t list =
  let ctx = Namer.fresh_ctx state.namer in
  let parent = Scope.root in
  let from_parts = List.map (gen_table_ref state ctx parent) spec.A.from in
  let clauses = List.concat_map fst from_parts in
  let views = List.concat_map snd from_parts in
  let scope = Scope.push parent views in
  let gctx = { scope; group = None } in
  let clauses =
    clauses
    @
    match spec.A.where with
    | None -> []
    | Some w -> [ X.Where (gen_pred state gctx ~polarity:true w) ]
  in
  let items = Semantic.expand_select state.env scope spec in
  let cols = List.map fst items in
  let order_specs =
    List.map
      (fun (o : A.order_item) ->
        let key_expr =
          match o.A.key with
          | A.Ord_position i ->
            if i < 1 || i > List.length items then
              fail Errors.Unknown_column "ORDER BY position %d out of range" i
            else snd (List.nth items (i - 1))
          | A.Ord_expr (A.Column { qualifier = None; name; _ } as e) -> (
            (* output label takes precedence over source columns *)
            match output_index cols name with
            | Some i -> snd (List.nth items i)
            | None -> e)
          | A.Ord_expr e -> e
        in
        {
          X.key = gen_typed_operand state gctx key_expr;
          descending = o.A.descending;
          empty = X.Empty_least;
        })
      order_by
  in
  (build_return state gctx ~clauses ~items ~order:order_specs, cols)

let generate ?(style = Patterned) env (stmt : A.statement) : output =
  let state = create_state ~style env in
  gen_statement_internal state stmt
