(** XML Schema documents for flat row types.

    Every data-service function's return type is defined in an [.xsd]
    file authored (or generated) at application development time
    (paper section 3.1): a global element declaration whose complex
    type is a sequence of simple-typed, optionally-nillable child
    elements — the driver's table columns.

    This module renders and parses that schema dialect, so services
    can be deployed from file text and metadata import can round-trip
    through real schema documents. *)

type t = {
  element_name : string;              (** the row element *)
  target_namespace : string;          (** e.g. "ld:TestDataServices/CUSTOMERS" *)
  columns : Aqua_relational.Schema.t; (** children in declaration order *)
}

val to_text : t -> string
(** Renders the schema document: one global [xs:element] with a
    [xs:complexType]/[xs:sequence] of simple-typed children;
    nullable columns get [minOccurs="0"]. *)

exception Invalid_schema of string

val of_text : string -> t
(** Parses a schema document of the dialect [to_text] produces
    (and hand-written equivalents).
    @raise Invalid_schema when the document is not a flat row type —
    nested complex types, unbounded children and missing type
    attributes are rejected, mirroring the driver's "flat XML only"
    rule (paper section 2.2). *)

val xs_type_of_sql : Aqua_relational.Sql_type.t -> string
(** The [xs:] simple type used in schema documents. *)

val sql_type_of_xs : string -> Aqua_relational.Sql_type.t option
