module Item = Aqua_xml.Item
module Table = Aqua_relational.Table
module X = Aqua_xquery.Ast
module Eval = Aqua_xqeval.Eval
module Budget = Aqua_resilience.Budget
module Breaker = Aqua_resilience.Breaker
module Retry = Aqua_resilience.Retry
module Failpoint = Aqua_resilience.Failpoint
module Sqlstate = Aqua_resilience.Sqlstate

let fail = Aqua_xqeval.Error.fail

type t = {
  app : Artifact.application;
  optimize : bool;
  vectorize : bool;
  columnar : bool;
  retry : Retry.policy;
  breakers : Breaker.registry;
  scan_cache : Scan_cache.t;
}

let create ?(optimize = true) ?(vectorize = true)
    ?(columnar = Aqua_xqeval.Batch.columnar ())
    ?(retry = Retry.default_policy) ?(breaker = Breaker.default_config)
    ?(scan_cache = true) ?cache app =
  let cache =
    match cache with
    | Some c -> c
    | None -> Scan_cache.create ~enabled:scan_cache app
  in
  {
    app;
    optimize;
    vectorize;
    columnar;
    retry;
    breakers = Breaker.registry ~config:breaker ();
    scan_cache = cache;
  }

let application t = t.app
let breakers t = Breaker.all t.breakers
let scan_cache t = t.scan_cache

(* Recursion guard: logical services may call each other; a cycle in
   .ds definitions must not hang the server. *)
let max_call_depth = 64

let split_qname name =
  match String.index_opt name ':' with
  | Some i ->
    ( String.sub name 0 i,
      String.sub name (i + 1) (String.length name - i - 1) )
  | None -> ("", name)

(* Exceptions that say nothing about the invoked function's health:
   budget cancellations, structural errors already carrying a SQLSTATE,
   and rejections from breakers further down the chain. *)
let count_failure = function
  | Budget.Exceeded _ | Sqlstate.Error _ | Breaker.Open_circuit _ -> false
  | _ -> true

(* [chain] is the invocation path, most recent call first; its length
   is the call depth. *)
let rec resolver t (imports : X.schema_import list) chain :
    string -> Eval.external_fn option =
  let by_prefix = List.map (fun (i : X.schema_import) -> (i.prefix, i.namespace)) imports in
  fun qname ->
    let prefix, local = split_qname qname in
    match List.assoc_opt prefix by_prefix with
    | None -> None
    | Some namespace -> (
      match Artifact.find_service_by_namespace t.app namespace with
      | None -> fail "no data service for namespace %s" namespace
      | Some ds -> (
        match Artifact.find_function ds local with
        | None ->
          fail "data service %s has no function %s" namespace local
        | Some f -> Some (invoke t ds f chain)))

and invoke t (ds : Artifact.data_service) (f : Artifact.ds_function) chain :
    Eval.external_fn =
  fun args ->
  Aqua_core.Telemetry.with_span ("dsp.call." ^ f.Artifact.fn_name) @@ fun () ->
  let label = Artifact.sql_schema_of_service ds ^ ":" ^ f.Artifact.fn_name in
  let chain = label :: chain in
  if List.length chain > max_call_depth then
    Sqlstate.error ~sqlstate:Sqlstate.statement_too_complex
      ~condition:"call depth exceeded"
      "data service call depth %d exceeded (cycle in logical services?); \
       call chain: %s"
      max_call_depth
      (String.concat " -> " (List.rev chain));
  if List.length args <> List.length f.Artifact.params then
    fail "function %s expects %d argument(s), got %d" f.Artifact.fn_name
      (List.length f.Artifact.params)
      (List.length args);
  let run () =
    Failpoint.hit "dsp.invoke";
    match f.Artifact.body with
    | Artifact.Physical table -> List.map Item.node (Table.to_flat_xml table)
    | Artifact.Logical { imports; body } ->
      let ctx = Eval.context ~resolve:(resolver t imports chain) () in
      let ctx =
        List.fold_left
          (fun (ctx, i) arg ->
            (Eval.bind ctx (Printf.sprintf "p%d" i) arg, i + 1))
          (ctx, 1) args
        |> fst
      in
      Eval.eval ~optimize:t.optimize ~vectorize:t.vectorize
        ~columnar:t.columnar
        ~scan_cache:(Scan_cache.enabled t.scan_cache)
        ctx body
  in
  let br = Breaker.get t.breakers label in
  let guarded () = Breaker.call ~count_failure br run in
  (* Retry only at the root of the invocation chain: retrying at every
     nesting level would multiply the attempts exponentially. *)
  let serve () =
    match chain with
    | [ _ ] -> Retry.with_retry ~policy:t.retry guarded
    | _ -> guarded ()
  in
  (* Parameterless calls are pure in the data revision: serve them
     from the materialized scan cache.  A hit bypasses the failpoint /
     breaker / retry chain entirely — in particular a fallback rerun
     after an optimized-plan crash reuses the scans the crashed run
     already materialized.

     Physical scans are evaluator-independent, so the optimized and
     fallback servers sharing one cache also share those entries.  A
     logical body, however, is *evaluated* (by whichever pipeline
     [t.optimize] selects), so its entries carry the flag in the key:
     the graceful-degradation rerun must recompute logical scans
     rather than inherit results the suspect optimized evaluator
     produced. *)
  if args = [] then begin
    let key =
      match f.Artifact.body with
      | Artifact.Physical _ -> label
      | Artifact.Logical _ ->
        (* evaluator flavor in full: optimizer on/off, batch engine
           on/off AND batch layout — a ~vectorize:false (or
           ~columnar:false) oracle server sharing the cache must not
           inherit rows another engine produced, or a differential run
           would compare an engine against its own cached output *)
        label
        ^ (if t.optimize then "|opt" else "|unopt")
        ^ (if t.optimize && t.vectorize then "|vec" else "")
        ^ if t.optimize && t.vectorize && t.columnar then "|col" else ""
    in
    let seq =
      match Scan_cache.find t.scan_cache key with
      | Some seq -> seq
      | None ->
        let seq = serve () in
        Scan_cache.store t.scan_cache key seq;
        seq
    in
    (* The materialization toll, charged at serve time whether the
       rows were fetched or found resident: warm and cold runs of one
       query must see identical item-governor accounting (a cached
       logical serve still skips its nested serves' charges, exactly
       as it skips their work). *)
    if Budget.active () then Budget.tick_items (List.length seq);
    seq
  end
  else serve ()

let execute ?(bindings = []) t (q : X.query) =
  let ctx = Eval.context ~resolve:(resolver t q.prolog.imports []) () in
  let ctx =
    List.fold_left (fun ctx (name, seq) -> Eval.bind ctx name seq) ctx bindings
  in
  Eval.eval_query ~optimize:t.optimize ~vectorize:t.vectorize
    ~columnar:t.columnar
    ~scan_cache:(Scan_cache.enabled t.scan_cache)
    ctx q

let execute_text ?bindings t src =
  execute ?bindings t (Aqua_xquery.Parser.parse_query src)

let execute_to_xml ?bindings t q =
  Aqua_xml.Serialize.sequence_to_string (execute ?bindings t q)

let execute_to_text ?bindings t q =
  let buf = Buffer.create 1024 in
  List.iter
    (fun item ->
      match item with
      | Item.Atomic a -> Buffer.add_string buf (Aqua_xml.Atomic.to_lexical a)
      | Item.Node _ ->
        fail "text transport expected a string result, got a node")
    (execute ?bindings t q);
  Buffer.contents buf

type prepared = Aqua_xqeval.Compile.compiled

let prepare ?(vars = []) t (q : X.query) =
  Aqua_xqeval.Compile.compile ~optimize:t.optimize ~vectorize:t.vectorize
    ~columnar:t.columnar
    ~scan_cache:(Scan_cache.enabled t.scan_cache)
    ~resolve:(resolver t q.X.prolog.X.imports [])
    ~vars q

let execute_prepared ?bindings prepared =
  Aqua_xqeval.Compile.run ?bindings prepared

let call_function t ~path ~name ~fn args =
  match Artifact.find_service t.app ~path ~name with
  | None -> fail "no data service %s/%s" path name
  | Some ds -> (
    match Artifact.find_function ds fn with
    | None -> fail "data service %s/%s has no function %s" path name fn
    | Some f -> invoke t ds f [] args)
