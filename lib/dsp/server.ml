module Item = Aqua_xml.Item
module Table = Aqua_relational.Table
module X = Aqua_xquery.Ast
module Eval = Aqua_xqeval.Eval

let fail = Aqua_xqeval.Error.fail

type t = { app : Artifact.application; optimize : bool }

let create ?(optimize = true) app = { app; optimize }
let application t = t.app

(* Recursion guard: logical services may call each other; a cycle in
   .ds definitions must not hang the server. *)
let max_call_depth = 64

let split_qname name =
  match String.index_opt name ':' with
  | Some i ->
    ( String.sub name 0 i,
      String.sub name (i + 1) (String.length name - i - 1) )
  | None -> ("", name)

let rec resolver t (imports : X.schema_import list) depth :
    string -> Eval.external_fn option =
  let by_prefix = List.map (fun (i : X.schema_import) -> (i.prefix, i.namespace)) imports in
  fun qname ->
    let prefix, local = split_qname qname in
    match List.assoc_opt prefix by_prefix with
    | None -> None
    | Some namespace -> (
      match Artifact.find_service_by_namespace t.app namespace with
      | None -> fail "no data service for namespace %s" namespace
      | Some ds -> (
        match Artifact.find_function ds local with
        | None ->
          fail "data service %s has no function %s" namespace local
        | Some f -> Some (invoke t ds f depth)))

and invoke t (_ds : Artifact.data_service) (f : Artifact.ds_function) depth :
    Eval.external_fn =
  fun args ->
  Aqua_core.Telemetry.with_span ("dsp.call." ^ f.Artifact.fn_name) @@ fun () ->
  if depth > max_call_depth then
    fail "data service call depth exceeded (cycle in logical services?)";
  if List.length args <> List.length f.Artifact.params then
    fail "function %s expects %d argument(s), got %d" f.Artifact.fn_name
      (List.length f.Artifact.params)
      (List.length args);
  match f.Artifact.body with
  | Artifact.Physical table -> List.map Item.node (Table.to_flat_xml table)
  | Artifact.Logical { imports; body } ->
    let ctx =
      Eval.context ~resolve:(resolver t imports (depth + 1)) ()
    in
    let ctx =
      List.fold_left
        (fun (ctx, i) arg -> (Eval.bind ctx (Printf.sprintf "p%d" i) arg, i + 1))
        (ctx, 1) args
      |> fst
    in
    Eval.eval ~optimize:t.optimize ctx body

let execute ?(bindings = []) t (q : X.query) =
  let ctx = Eval.context ~resolve:(resolver t q.prolog.imports 0) () in
  let ctx =
    List.fold_left (fun ctx (name, seq) -> Eval.bind ctx name seq) ctx bindings
  in
  Eval.eval_query ~optimize:t.optimize ctx q

let execute_text ?bindings t src =
  execute ?bindings t (Aqua_xquery.Parser.parse_query src)

let execute_to_xml ?bindings t q =
  Aqua_xml.Serialize.sequence_to_string (execute ?bindings t q)

let execute_to_text ?bindings t q =
  let buf = Buffer.create 1024 in
  List.iter
    (fun item ->
      match item with
      | Item.Atomic a -> Buffer.add_string buf (Aqua_xml.Atomic.to_lexical a)
      | Item.Node _ ->
        fail "text transport expected a string result, got a node")
    (execute ?bindings t q);
  Buffer.contents buf

type prepared = Aqua_xqeval.Compile.compiled

let prepare ?(vars = []) t (q : X.query) =
  Aqua_xqeval.Compile.compile ~optimize:t.optimize
    ~resolve:(resolver t q.X.prolog.X.imports 0)
    ~vars q

let execute_prepared ?bindings prepared =
  Aqua_xqeval.Compile.run ?bindings prepared

let call_function t ~path ~name ~fn args =
  match Artifact.find_service t.app ~path ~name with
  | None -> fail "no data service %s/%s" path name
  | Some ds -> (
    match Artifact.find_function ds fn with
    | None -> fail "data service %s/%s has no function %s" path name fn
    | Some f -> invoke t ds f 0 args)
