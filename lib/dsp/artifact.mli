(** The AquaLogic DSP artifact model (paper section 3.1): an
    application contains projects (with folders); those contain data
    services (.ds files); a data service is a collection of functions.
    A function either wraps a physical source — here an in-memory
    relational table, standing in for the paper's Oracle tables (see
    DESIGN.md) — or is a logical function authored as an XQuery body
    over other data-service functions. *)

type parameter = {
  param_name : string;
  param_type : Aqua_relational.Sql_type.t;
}

type function_body =
  | Physical of Aqua_relational.Table.t
      (** metadata-imported: returns the table as flat XML *)
  | Logical of {
      imports : Aqua_xquery.Ast.schema_import list;
          (** the .ds file's own prolog: how the body's prefixed
              function calls resolve *)
      body : Aqua_xquery.Ast.expr;
          (** parameters are visible as [$p1 .. $pn] *)
    }

type ds_function = {
  fn_name : string;
  params : parameter list;
  element_name : string;  (** row element name of the return type *)
  columns : Aqua_relational.Schema.t;
      (** simple-typed children of the row element *)
  body : function_body;
}

type data_service = {
  ds_path : string;  (** project (and folders), e.g. "TestDataServices" *)
  ds_name : string;  (** .ds file name without extension *)
  functions : ds_function list;
}

type application = {
  app_name : string;
  mutable services : data_service list;
  mutable revision : int;
      (** bumped on every metadata change; caches key on it *)
}

val application : string -> application

val revision : application -> int
(** Monotonic metadata revision: incremented whenever a service is
    added.  Driver-side caches compare it to invalidate stale
    translations and metadata. *)

val data_revision : application -> int
(** Monotonic metadata-plus-data revision: {!revision} plus every
    physical table's {!Aqua_relational.Table.version}, so it also moves
    when rows are inserted into a backing table.  Caches that hold
    materialized scan results (the scan cache, the SQL engine's table
    memo) must key on this, not on {!revision} — translations and
    catalog answers depend only on metadata and may keep using
    {!revision}. *)

val namespace_of_service : data_service -> string
(** e.g. ["ld:TestDataServices/CUSTOMERS"]. *)

val schema_location_of_service : data_service -> string
(** e.g. ["ld:TestDataServices/schemas/CUSTOMERS.xsd"]. *)

val sql_schema_of_service : data_service -> string
(** The SQL schema name per Figure 2: path + .ds name. *)

val add_service : application -> data_service -> unit
(** @raise Invalid_argument on duplicate path/name. *)

val import_physical_table :
  application -> project:string -> Aqua_relational.Table.t -> data_service
(** Metadata import (paper Example 2): a .ds file named after the
    table with one parameterless function returning it as a flat
    element sequence.
    @raise Invalid_argument on duplicate registration. *)

val add_logical_service :
  application -> project:string -> name:string -> ds_function list ->
  data_service
(** @raise Invalid_argument on duplicate registration. *)

val logical_body_of_text : string -> function_body
(** A logical function body authored as XQuery text; the text's prolog
    defines how its prefixed function calls resolve, exactly like a
    hand-written .ds file.
    @raise Aqua_xquery.Parser.Parse_error on malformed text. *)

val find_service : application -> path:string -> name:string -> data_service option
val find_service_by_namespace : application -> string -> data_service option

val find_function : data_service -> string -> ds_function option
(** Case-insensitive lookup by function name. *)

val ds_file_text : data_service -> string
(** Renders the service as .ds file text (paper Example 2) —
    documentation and debugging aid. *)
