module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Node = Aqua_xml.Node

type t = {
  element_name : string;
  target_namespace : string;
  columns : Schema.t;
}

exception Invalid_schema of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_schema s)) fmt

let xs_type_of_sql = Sql_type.xquery_name
let sql_type_of_xs = Sql_type.of_xquery_name

let to_text t =
  let child (c : Schema.column) =
    let attrs =
      [ ("name", c.Schema.name); ("type", xs_type_of_sql c.Schema.ty) ]
      @ if c.Schema.nullable then [ ("minOccurs", "0") ] else []
    in
    Node.element "xs:element" ~attrs []
  in
  let doc =
    Node.element "xs:schema"
      ~attrs:
        [ ("xmlns:xs", "http://www.w3.org/2001/XMLSchema");
          ("targetNamespace", t.target_namespace);
          ("elementFormDefault", "unqualified") ]
      [ Node.element "xs:element"
          ~attrs:[ ("name", t.element_name) ]
          [ Node.element "xs:complexType"
              [ Node.element "xs:sequence" (List.map child t.columns) ] ] ]
  in
  Aqua_xml.Serialize.node_to_string ~indent:true doc ^ "\n"

let attr (e : Node.element) name = List.assoc_opt name e.Node.attrs

let require_attr e name =
  match attr e name with
  | Some v -> v
  | None -> fail "missing attribute %s on <%s>" name e.Node.name

let find_child (e : Node.element) local =
  List.find_opt
    (fun (c : Node.element) -> Node.local_name c.Node.name = local)
    (Node.children_elements (Node.Element e))

let of_text text =
  let root =
    try Aqua_xml.Parse.node_of_string text
    with Aqua_xml.Parse.Parse_error { message; _ } ->
      fail "malformed XML: %s" message
  in
  let schema_el =
    match root with
    | Node.Element e when Node.local_name e.Node.name = "schema" -> e
    | _ -> fail "expected an xs:schema document element"
  in
  let target_namespace =
    Option.value (attr schema_el "targetNamespace") ~default:""
  in
  let row_el =
    match find_child schema_el "element" with
    | Some e -> e
    | None -> fail "schema declares no global element"
  in
  let element_name = require_attr row_el "name" in
  let complex =
    match find_child row_el "complexType" with
    | Some e -> e
    | None -> fail "row element %s has no complex type" element_name
  in
  let sequence =
    match find_child complex "sequence" with
    | Some e -> e
    | None -> fail "row type of %s is not a sequence" element_name
  in
  let columns =
    List.map
      (fun (c : Node.element) ->
        if Node.local_name c.Node.name <> "element" then
          fail "unexpected <%s> in the row sequence" c.Node.name;
        if Node.children_elements (Node.Element c) <> [] then
          fail "column %s is not a simple type (nested content)"
            (Option.value (attr c "name") ~default:"?");
        (match attr c "maxOccurs" with
        | Some m when m <> "1" ->
          fail "column %s repeats (maxOccurs=%s); rows must be flat"
            (require_attr c "name") m
        | _ -> ());
        let name = require_attr c "name" in
        let ty_name = require_attr c "type" in
        let ty =
          match sql_type_of_xs ty_name with
          | Some ty -> ty
          | None -> fail "column %s has unsupported type %s" name ty_name
        in
        let nullable =
          match (attr c "minOccurs", attr c "nillable") with
          | Some "0", _ -> true
          | _, Some "true" -> true
          | _ -> false
        in
        { Schema.name; ty; nullable })
      (Node.children_elements (Node.Element sequence))
  in
  if columns = [] then fail "row element %s has no columns" element_name;
  { element_name; target_namespace; columns }
