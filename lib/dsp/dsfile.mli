(** Deployment of data services from file text: a [.ds] file (an
    XQuery library module, paper Example 2) plus the [.xsd] schema
    documents its return types reference.

    This closes the authoring loop: {!Artifact.ds_file_text} and
    {!Xsd.to_text} render a service's files, and [deploy] registers an
    equivalent service from such files. *)

exception Deploy_error of string

val parse :
  path:string ->
  name:string ->
  load_schema:(string -> Xsd.t) ->
  ?bind_external:(string -> Aqua_relational.Table.t option) ->
  string ->
  Artifact.data_service
(** [parse ~path ~name ~load_schema text] builds the data service
    declared by [text].

    [load_schema location] must return the schema document imported at
    [location] (e.g. ["ld:P/schemas/T.xsd"]); each function's columns
    come from the schema whose row element matches the function's
    [schema-element(...)] return type.

    [bind_external] supplies the backing table for [external]
    (physical) functions; omitting it makes external declarations a
    {!Deploy_error}.

    @raise Deploy_error on unresolvable schemas, element names or
    externals.
    @raise Aqua_xquery.Parser.Parse_error on malformed query text. *)

val deploy :
  Artifact.application ->
  path:string ->
  name:string ->
  load_schema:(string -> Xsd.t) ->
  ?bind_external:(string -> Aqua_relational.Table.t option) ->
  string ->
  Artifact.data_service
(** [parse] followed by registration.
    @raise Invalid_argument on duplicate registration. *)
