module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Node = Aqua_xml.Node

type table = {
  catalog : string;
  schema : string;
  table : string;
  namespace : string;
  location : string;
  element_name : string;
  columns : Schema.t;
}

type error =
  | Table_not_found of string
  | Ambiguous_table of string * string list

let error_to_string = function
  | Table_not_found t -> Printf.sprintf "table %s does not exist" t
  | Ambiguous_table (t, schemas) ->
    Printf.sprintf "table name %s is ambiguous (found in schemas: %s)" t
      (String.concat ", " schemas)

let of_function app (ds : Artifact.data_service) (f : Artifact.ds_function) =
  {
    catalog = app.Artifact.app_name;
    schema = Artifact.sql_schema_of_service ds;
    table = f.Artifact.fn_name;
    namespace = Artifact.namespace_of_service ds;
    location = Artifact.schema_location_of_service ds;
    element_name = f.Artifact.element_name;
    columns = f.Artifact.columns;
  }

let candidates app ?catalog ?schema name =
  let name_up = String.uppercase_ascii name in
  let schema_matches ds =
    match schema with
    | None -> true
    | Some s ->
      let full = Artifact.sql_schema_of_service ds in
      String.uppercase_ascii full = String.uppercase_ascii s
      || String.uppercase_ascii ds.Artifact.ds_name = String.uppercase_ascii s
  in
  let catalog_matches =
    match catalog with
    | None -> true
    | Some c -> String.uppercase_ascii c = String.uppercase_ascii app.Artifact.app_name
  in
  if not catalog_matches then []
  else
    List.concat_map
      (fun ds ->
        if not (schema_matches ds) then []
        else
          List.filter_map
            (fun (f : Artifact.ds_function) ->
              if
                f.Artifact.params = []
                && String.uppercase_ascii f.Artifact.fn_name = name_up
              then Some (of_function app ds f)
              else None)
            ds.Artifact.functions)
      app.Artifact.services

let lookup app ?catalog ?schema name =
  match candidates app ?catalog ?schema name with
  | [ t ] -> Ok t
  | [] -> Error (Table_not_found name)
  | ts -> Error (Ambiguous_table (name, List.map (fun t -> t.schema) ts))

let list_tables app =
  List.concat_map
    (fun ds ->
      List.filter_map
        (fun (f : Artifact.ds_function) ->
          if f.Artifact.params = [] then Some (of_function app ds f) else None)
        ds.Artifact.functions)
    app.Artifact.services

let list_procedures app =
  List.concat_map
    (fun ds ->
      List.filter_map
        (fun (f : Artifact.ds_function) ->
          if f.Artifact.params <> [] then
            Some (of_function app ds f, f.Artifact.params)
          else None)
        ds.Artifact.functions)
    app.Artifact.services

(* ------------------------------------------------------------------ *)
(* Wire encoding                                                      *)

let to_wire t =
  let column (c : Schema.column) =
    Node.element "column"
      ~attrs:
        [ ("name", c.Schema.name);
          ("type", Sql_type.to_string c.Schema.ty);
          ("nullable", if c.Schema.nullable then "true" else "false") ]
      []
  in
  Aqua_xml.Serialize.node_to_string
    (Node.element "tableMetadata"
       ~attrs:
         [ ("catalog", t.catalog);
           ("schema", t.schema);
           ("table", t.table);
           ("namespace", t.namespace);
           ("location", t.location);
           ("element", t.element_name) ]
       (List.map column t.columns))

let of_wire s =
  match Aqua_xml.Parse.node_of_string s with
  | Node.Text _ -> failwith "metadata wire format: expected an element"
  | Node.Element e ->
    let attr el name =
      match List.assoc_opt name el.Node.attrs with
      | Some v -> v
      | None -> failwith ("metadata wire format: missing attribute " ^ name)
    in
    let columns =
      List.map
        (fun (c : Node.element) ->
          let ty_str = attr c "type" in
          let ty =
            (* strip precision arguments for wire round-trip *)
            let base =
              match String.index_opt ty_str '(' with
              | Some i -> String.sub ty_str 0 i
              | None -> ty_str
            in
            match Sql_type.of_string base with
            | Some t -> t
            | None -> failwith ("metadata wire format: bad type " ^ ty_str)
          in
          {
            Schema.name = attr c "name";
            ty;
            nullable = attr c "nullable" = "true";
          })
        (Node.children_elements (Node.Element e))
    in
    {
      catalog = attr e "catalog";
      schema = attr e "schema";
      table = attr e "table";
      namespace = attr e "namespace";
      location = attr e "location";
      element_name = attr e "element";
      columns;
    }

let fetch app ?catalog ?schema name =
  match lookup app ?catalog ?schema name with
  | Error _ as e -> e
  | Ok t -> Ok (of_wire (to_wire t))

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)

module Cache = struct
  module Mcore = Aqua_multicore.Mcore

  type t = {
    app : Artifact.application;
    entries : (string, table) Hashtbl.t;
    lock : Mcore.Mutex.t;  (* guards entries and the hit/miss stats *)
    mutable enabled : bool;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(enabled = true) app =
    {
      app;
      entries = Hashtbl.create 16;
      lock = Mcore.Mutex.create ();
      enabled;
      hits = 0;
      misses = 0;
    }

  let set_enabled t b = t.enabled <- b
  let clear t = Mcore.Mutex.protect t.lock (fun () -> Hashtbl.reset t.entries)

  let key ?catalog ?schema name =
    String.uppercase_ascii
      (String.concat "\x01"
         [ Option.value catalog ~default:"";
           Option.value schema ~default:"";
           name ])

  let lookup t ?catalog ?schema name =
    let k = key ?catalog ?schema name in
    let cached =
      Mcore.Mutex.protect t.lock (fun () ->
          match if t.enabled then Hashtbl.find_opt t.entries k else None with
          | Some tbl ->
            t.hits <- t.hits + 1;
            Some tbl
          | None ->
            t.misses <- t.misses + 1;
            None)
    in
    match cached with
    | Some tbl -> Ok tbl
    | None -> (
      (* the fetch itself runs outside the lock; a racing domain may
         fetch the same table twice, but [replace] keeps one copy *)
      match fetch t.app ?catalog ?schema name with
      | Ok tbl ->
        Mcore.Mutex.protect t.lock (fun () ->
            if t.enabled then Hashtbl.replace t.entries k tbl);
        Ok tbl
      | Error _ as e -> e)

  let hits t = Mcore.Mutex.protect t.lock (fun () -> t.hits)
  let misses t = Mcore.Mutex.protect t.lock (fun () -> t.misses)
end
