(** The in-process stand-in for the AquaLogic DSP server: compiles the
    prolog of an XQuery (its schema imports) into a function resolver
    over the application's data services and evaluates the body.

    Physical data-service functions return their backing table as a
    flat element sequence; logical functions evaluate their XQuery
    bodies, resolving their own imports recursively. *)

type t

val create :
  ?optimize:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  ?retry:Aqua_resilience.Retry.policy ->
  ?breaker:Aqua_resilience.Breaker.config ->
  ?scan_cache:bool ->
  ?cache:Scan_cache.t ->
  Artifact.application ->
  t
(** [optimize] (default [true]) runs the {!Aqua_xqeval.Optimize} pass
    (predicate pushdown, hash equi-joins, streaming pipeline) on every
    query and data-service body this server evaluates or prepares;
    [~optimize:false] keeps the naive nested-loop evaluator as a
    differential-testing oracle.

    [vectorize] (default [true]) executes optimized plans through the
    batched FLWOR engine ({!Aqua_xqeval.Batch}-sized batches of tuple
    snapshots between clauses); [~vectorize:false] keeps the
    tuple-at-a-time pipeline, the row-at-a-time oracle the batch
    engine is differentially tested against.

    [columnar] (default {!Aqua_xqeval.Batch.columnar}, meaningful only
    with [vectorize]) selects the struct-of-arrays batch layout with
    required-column pruning and vectorized aggregation kernels;
    [~columnar:false] keeps the row-snapshot batch layout, the
    columnar engine's differential oracle.  Logical scan-cache entries
    are keyed by evaluator flavor (optimizer, batch engine and batch
    layout), so oracle, batched and columnar servers sharing one cache
    never serve each other's logical rows.

    [scan_cache] (default [true]) enables scan materialization at both
    levels: the optimizer's per-plan scan-sharing hoist and the
    cross-query {!Scan_cache} serving parameterless data-service calls
    (revision-checked, so metadata changes invalidate automatically).
    [cache] supplies an existing cache instance instead — used by the
    driver to share one store between its optimized and fallback
    servers, so a rerun after an optimized-plan crash reuses already
    materialized scans.  When [cache] is given its own enabled flag
    governs and [scan_cache] is ignored.

    Every data-service function invocation runs through a
    per-function circuit breaker ([breaker], default
    {!Aqua_resilience.Breaker.default_config}); root invocations are
    additionally retried with backoff on transient failures ([retry],
    default {!Aqua_resilience.Retry.default_policy} — pass
    {!Aqua_resilience.Retry.no_retry} to disable). *)

val application : t -> Artifact.application

val scan_cache : t -> Scan_cache.t
(** The server's materialized scan cache (possibly disabled). *)

val breakers : t -> Aqua_resilience.Breaker.t list
(** The per-function circuit breakers created so far, sorted by
    function label ("path/service:function"). *)

val execute :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  t ->
  Aqua_xquery.Ast.query ->
  Aqua_xml.Item.sequence
(** [bindings] provides external variables (prepared-statement
    parameters, bound as [$param1 ..]).
    @raise Aqua_xqeval.Error.Dynamic_error on unresolvable function
    names or dynamic evaluation errors
    @raise Aqua_resilience.Sqlstate.Error (54001) when the
    data-service call depth is exceeded — the message carries the full
    invocation chain ("path/service:function -> ...") *)

val execute_text :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  t ->
  string ->
  Aqua_xml.Item.sequence
(** Parses XQuery text (prolog + body) and executes it — the "compile
    and execute" entry point of the real server.
    @raise Aqua_xquery.Parser.Parse_error on malformed query text
    @raise Aqua_xqeval.Error.Dynamic_error on evaluation errors *)

val execute_to_xml :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  t ->
  Aqua_xquery.Ast.query ->
  string
(** [execute] followed by serialization — the "ship XML to the client"
    transport of paper section 4. *)

val execute_to_text :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  t ->
  Aqua_xquery.Ast.query ->
  string
(** [execute] for a wrapper query that already returns the
    text-encoded row stream: concatenates the resulting string
    sequence. *)

type prepared
(** A query compiled once (via {!Aqua_xqeval.Compile}) for repeated
    execution — the server-side compilation step of the platform. *)

val prepare :
  ?vars:string list -> t -> Aqua_xquery.Ast.query -> prepared
(** [vars] declares external variables the query expects at execution
    (e.g. ["param1"] for prepared statements).
    @raise Aqua_xqeval.Compile.Compile_error on unknown functions or
    variables. *)

val execute_prepared :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  prepared ->
  Aqua_xml.Item.sequence
(** @raise Aqua_xqeval.Error.Dynamic_error on dynamic errors. *)

val call_function :
  t ->
  path:string ->
  name:string ->
  fn:string ->
  Aqua_xml.Item.sequence list ->
  Aqua_xml.Item.sequence
(** Directly invoke a data-service function (used for stored-procedure
    style access to parameterized functions).
    @raise Aqua_xqeval.Error.Dynamic_error if the service or function
    does not exist. *)
