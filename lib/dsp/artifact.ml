(* The AquaLogic DSP artifact model (paper section 3.1): an application
   contains projects and folders; those contain data services (.ds
   files); a data service is a collection of functions.  A function
   either wraps a physical source (here: an in-memory relational
   table, standing in for the paper's Oracle tables — see DESIGN.md)
   or is a logical function authored as an XQuery body over other
   data-service functions. *)

module Schema = Aqua_relational.Schema
module Table = Aqua_relational.Table

type parameter = {
  param_name : string;
  param_type : Aqua_relational.Sql_type.t;
}

type function_body =
  | Physical of Table.t
      (** metadata-imported function: returns the table as flat XML *)
  | Logical of {
      imports : Aqua_xquery.Ast.schema_import list;
          (** the .ds file's own prolog: how its body's prefixed
              function calls resolve *)
      body : Aqua_xquery.Ast.expr;
          (** parameters are visible as [$p1 .. $pn] *)
    }

type ds_function = {
  fn_name : string;
  params : parameter list;
  (* return type: a sequence of [element_name] elements whose
     simple-typed children are described by [columns] *)
  element_name : string;
  columns : Schema.t;
  body : function_body;
}

type data_service = {
  ds_path : string;  (** project (and folders), e.g. "TestDataServices" *)
  ds_name : string;  (** .ds file name without extension *)
  functions : ds_function list;
}

type application = {
  app_name : string;
  mutable services : data_service list;
  mutable revision : int;
}

let application name = { app_name = name; services = []; revision = 0 }

let revision app = app.revision

(* Metadata plus data: the invalidation signal for caches holding
   materialized scan *results* (the scan cache, the engine's table
   memo).  [revision] alone only moves on metadata changes; a
   [Table.insert] mutates rows without touching it, so result caches
   fold every physical table's data version into the signal.  All
   components are monotone, so the sum moves on any change. *)
let data_revision app =
  List.fold_left
    (fun acc ds ->
      List.fold_left
        (fun acc f ->
          match f.body with
          | Physical t -> acc + Table.version t
          | Logical _ -> acc)
        acc ds.functions)
    app.revision app.services

let namespace_of_service ds = Printf.sprintf "ld:%s/%s" ds.ds_path ds.ds_name

let schema_location_of_service ds =
  Printf.sprintf "ld:%s/schemas/%s.xsd" ds.ds_path ds.ds_name

(* SQL schema name per Figure 2: path to the .ds file plus its name. *)
let sql_schema_of_service ds = ds.ds_path ^ "/" ^ ds.ds_name

let add_service app ds =
  if
    List.exists
      (fun s -> s.ds_path = ds.ds_path && s.ds_name = ds.ds_name)
      app.services
  then
    invalid_arg
      (Printf.sprintf "data service %s/%s already exists" ds.ds_path ds.ds_name);
  app.services <- app.services @ [ ds ];
  app.revision <- app.revision + 1

(* Metadata import of a relational table (paper Example 2): produces a
   .ds file named after the table, holding one parameterless function
   that returns the whole table as a flat element sequence. *)
let import_physical_table app ~project (table : Table.t) =
  let ds =
    {
      ds_path = project;
      ds_name = table.Table.name;
      functions =
        [ {
            fn_name = table.Table.name;
            params = [];
            element_name = table.Table.name;
            columns = table.Table.schema;
            body = Physical table;
          } ];
    }
  in
  add_service app ds;
  ds

(* A logical function body authored as XQuery text: its prolog's
   schema imports define how the body's prefixed function calls
   resolve, exactly like a hand-written .ds file. *)
let logical_body_of_text src =
  let q = Aqua_xquery.Parser.parse_query src in
  Logical { imports = q.Aqua_xquery.Ast.prolog.Aqua_xquery.Ast.imports;
            body = q.Aqua_xquery.Ast.body }

let add_logical_service app ~project ~name functions =
  let ds = { ds_path = project; ds_name = name; functions } in
  add_service app ds;
  ds

let find_service app ~path ~name =
  List.find_opt
    (fun s -> s.ds_path = path && s.ds_name = name)
    app.services

let find_service_by_namespace app namespace =
  List.find_opt (fun s -> namespace_of_service s = namespace) app.services

let find_function ds name =
  List.find_opt (fun f -> String.uppercase_ascii f.fn_name = String.uppercase_ascii name) ds.functions

(* Rendering of a data service as its .ds file text (paper Example 2)
   — documentation/debugging aid, also exercised by tests. *)
let ds_file_text ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "import schema namespace t1 = \"%s\" at \"%s\";\n\n"
       (namespace_of_service ds)
       (schema_location_of_service ds));
  List.iter
    (fun f ->
      let params =
        String.concat ", "
          (List.mapi (fun i (p : parameter) -> Printf.sprintf "$p%d as xs:%s" (i + 1) (String.lowercase_ascii (Aqua_relational.Sql_type.to_string p.param_type))) f.params)
      in
      match f.body with
      | Physical _ ->
        Buffer.add_string buf
          (Printf.sprintf
             "declare function f1:%s(%s)\n    as schema-element(t1:%s)*\n    external;\n\n"
             f.fn_name params f.element_name)
      | Logical { body; _ } ->
        Buffer.add_string buf
          (Printf.sprintf
             "declare function f1:%s(%s)\n    as schema-element(t1:%s)* {\n%s\n};\n\n"
             f.fn_name params f.element_name
             (Aqua_xquery.Pretty.expr_to_string body)))
    ds.functions;
  Buffer.contents buf
