module Parser = Aqua_xquery.Parser
module X = Aqua_xquery.Ast
module Sql_type = Aqua_relational.Sql_type

exception Deploy_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Deploy_error s)) fmt

let local_of_qname s =
  match String.index_opt s ':' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* "schema-element(t1:CUSTOMERS)*" -> "CUSTOMERS" *)
let element_of_return_type ty =
  let ty = String.trim ty in
  match String.index_opt ty '(' with
  | Some open_paren when String.length ty > 14
                         && String.sub ty 0 14 = "schema-element" -> (
    match String.index_from_opt ty open_paren ')' with
    | Some close ->
      local_of_qname
        (String.trim (String.sub ty (open_paren + 1) (close - open_paren - 1)))
    | None -> fail "malformed return type %S" ty)
  | _ ->
    fail "return type %S is not a schema-element sequence (flat rows only)" ty

let param_type_of_text ty =
  match Sql_type.of_xquery_name (String.trim ty) with
  | Some t -> t
  | None -> (
    (* also accept bare SQL names, e.g. "integer" *)
    match Sql_type.of_string ty with
    | Some t -> t
    | None -> fail "unsupported parameter type %S" ty)

let parse ~path ~name ~load_schema ?bind_external text =
  let prolog, decls = Parser.parse_library text in
  if decls = [] then fail "%s.ds declares no functions" name;
  (* schema documents, loaded once per import location *)
  let schemas =
    List.map
      (fun (i : X.schema_import) ->
        try (i, load_schema i.X.location)
        with Xsd.Invalid_schema m ->
          fail "schema %s: %s" i.X.location m)
      prolog.X.imports
  in
  let find_schema element_name =
    match
      List.find_opt
        (fun (_, (x : Xsd.t)) -> x.Xsd.element_name = element_name)
        schemas
    with
    | Some (_, x) -> x
    | None ->
      fail "no imported schema declares element %s (imports: %s)" element_name
        (String.concat ", "
           (List.map (fun (i : X.schema_import) -> i.X.location) prolog.X.imports))
  in
  let functions =
    List.map
      (fun (d : Parser.function_decl) ->
        let fn_name = local_of_qname d.Parser.fd_name in
        let element_name = element_of_return_type d.Parser.fd_return in
        let xsd = find_schema element_name in
        let params =
          List.map
            (fun (v, ty) ->
              { Artifact.param_name = v; param_type = param_type_of_text ty })
            d.Parser.fd_params
        in
        let body =
          match d.Parser.fd_body with
          | Some body ->
            Artifact.Logical { imports = prolog.X.imports; body }
          | None -> (
            match bind_external with
            | None ->
              fail "function %s is external but no binding was provided"
                fn_name
            | Some bind -> (
              match bind fn_name with
              | Some table -> Artifact.Physical table
              | None -> fail "no table bound for external function %s" fn_name))
        in
        {
          Artifact.fn_name;
          params;
          element_name;
          columns = xsd.Xsd.columns;
          body;
        })
      decls
  in
  { Artifact.ds_path = path; ds_name = name; functions }

let deploy app ~path ~name ~load_schema ?bind_external text =
  let ds = parse ~path ~name ~load_schema ?bind_external text in
  Artifact.add_service app ds;
  ds
