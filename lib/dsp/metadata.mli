(** The metadata API of the platform (paper section 3.5 (i)-(ii)):
    the translator asks the server which data-service functions exist,
    what flat row type they return, and under which namespace/schema
    location they are imported.

    To keep the remote boundary honest for benchmarking (experiment P3
    in DESIGN.md), [fetch] round-trips the answer through its XML wire
    encoding, exactly the work a remote call would do; {!Cache} makes
    that cost observable. *)

type table = {
  catalog : string;        (** application name *)
  schema : string;         (** .ds path + file name, Figure 2 *)
  table : string;          (** function name *)
  namespace : string;      (** e.g. "ld:TestDataServices/CUSTOMERS" *)
  location : string;       (** e.g. "ld:TestDataServices/schemas/CUSTOMERS.xsd" *)
  element_name : string;   (** row element name *)
  columns : Aqua_relational.Schema.t;
}

type error =
  | Table_not_found of string
  | Ambiguous_table of string * string list  (** candidate schemas *)

val error_to_string : error -> string

val lookup :
  Artifact.application ->
  ?catalog:string ->
  ?schema:string ->
  string ->
  (table, error) result
(** Resolves a (possibly qualified) SQL table name to its metadata.
    Matching is case-insensitive on the table name; the schema, when
    given, must match the Figure-2 schema name or its final [.ds]
    component. Only parameterless functions are visible as tables. *)

val list_tables : Artifact.application -> table list

val list_procedures : Artifact.application -> (table * Artifact.parameter list) list
(** Parameterized functions, exposed as callable stored procedures. *)

val to_wire : table -> string
(** XML wire encoding of a metadata answer. *)

val of_wire : string -> table
(** Inverse of [to_wire]. @raise Failure on malformed input. *)

val fetch :
  Artifact.application ->
  ?catalog:string ->
  ?schema:string ->
  string ->
  (table, error) result
(** Like [lookup] but charging the remote-API serialization cost. *)

module Cache : sig
  type t

  val create : ?enabled:bool -> Artifact.application -> t
  val set_enabled : t -> bool -> unit
  val clear : t -> unit

  val lookup :
    t -> ?catalog:string -> ?schema:string -> string -> (table, error) result
  (** Served from cache when possible; otherwise performs {!fetch} and
      caches a successful answer. *)

  val hits : t -> int
  val misses : t -> int
end
