(** Cross-query materialized scan cache for parameterless data-service
    calls.

    Keyed by the invocation label ("path/service:function") and the
    application's metadata revision: any [Artifact.revision] change
    flushes the whole cache before the next lookup or store, so a
    stale scan is never served.  Capacity is bounded by entry count,
    resident bytes and a per-entry row cap, with LRU eviction; every
    cache-hit serve charges the entry's row count to the ambient
    {!Aqua_resilience.Budget} item governor so caching cannot evade
    result-size governors.

    Global telemetry counters ([scan_cache.hits/misses/evictions] and
    the [scan_cache.bytes] resident gauge) move on every operation;
    [stats] exposes per-instance figures for tests and the CLI. *)

type t

val create :
  ?enabled:bool ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?max_rows:int ->
  Artifact.application ->
  t
(** A fresh cache bound to [app]'s revision counter.  [enabled]
    (default [true]): a disabled instance misses every lookup, stores
    nothing and moves no counters — the differential-testing oracle.
    Defaults: 64 entries, 8 MiB resident, 100k rows per entry (larger
    results are served but never cached). *)

val enabled : t -> bool

val find : t -> string -> Aqua_xml.Item.sequence option
(** Revision-checked lookup; a hit refreshes the entry's LRU stamp and
    ticks the budget item governor by the entry's row count. *)

val store : t -> string -> Aqua_xml.Item.sequence -> unit
(** Admit a materialized scan (no-op when disabled, when the key is
    already resident, or when the result exceeds the per-entry row or
    byte cap), then evict LRU entries until within budget. *)

val flush : t -> unit
(** Drop every entry (counted as invalidations, not evictions) —
    called by the driver's invalidation machinery alongside the
    translation cache. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** capacity evictions only *)
  invalidations : int;  (** entries dropped by a revision change *)
  entries : int;
  bytes : int;  (** resident estimate *)
}

val stats : t -> stats
