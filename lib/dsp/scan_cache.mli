(** Cross-query materialized scan cache for parameterless data-service
    calls.

    Keyed by the invocation label ("path/service:function", plus an
    evaluator-flavor suffix for logical bodies — the server owns the
    key format) and the application's data revision: any
    [Artifact.data_revision] change — a metadata mutation or a row
    inserted into any physical table — flushes the whole cache before
    the next lookup or store, so a stale scan is never served.
    Capacity is bounded by entry count, resident bytes and a per-entry
    row cap, with LRU eviction.  Budget accounting is the server's
    job: [Server.invoke] charges the served row count to the ambient
    {!Aqua_resilience.Budget} item governor at serve time, identically
    for hits and misses, so caching cannot evade result-size governors
    and a query admitted cold is never rejected warm.

    Global telemetry counters ([scan_cache.hits/misses/evictions] and
    the [scan_cache.bytes] resident gauge) move on every operation;
    [stats] exposes per-instance figures for tests and the CLI. *)

type t

val create :
  ?enabled:bool ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?max_rows:int ->
  Artifact.application ->
  t
(** A fresh cache bound to [app]'s revision counter.  [enabled]
    (default [true]): a disabled instance misses every lookup, stores
    nothing and moves no counters — the differential-testing oracle.
    Defaults: 64 entries, 8 MiB resident, 100k rows per entry (larger
    results are served but never cached). *)

val enabled : t -> bool

val find : t -> string -> Aqua_xml.Item.sequence option
(** Revision-checked lookup; a hit refreshes the entry's LRU stamp.
    Budget accounting happens at the serve site, not here. *)

val find_batches :
  t -> string -> size:int -> Aqua_xml.Item.t array list option
(** {!find}, served as size-capped array slices (every batch holds
    [size] items except possibly the last).  The array view is
    memoized on the entry at first batched access, so repeated batched
    scans of a cached materialized scan slice in O(batch) instead of
    re-walking the item list.  Counters and LRU behave exactly as
    {!find}. *)

val find_column : t -> string -> Aqua_xml.Item.t array option
(** {!find}, served as the entry's whole memoized array view in one
    piece — a zero-copy value vector the columnar engine indexes
    directly (no per-batch [Array.sub]).  The array is shared entry
    storage; callers must not mutate it.  Counters and LRU behave
    exactly as {!find}. *)

val store : t -> string -> Aqua_xml.Item.sequence -> unit
(** Admit a materialized scan (no-op when disabled, when the key is
    already resident, or when the result exceeds the per-entry row or
    byte cap), then evict LRU entries until within budget. *)

val flush : t -> unit
(** Drop every entry (counted as invalidations, not evictions) —
    called by the driver's invalidation machinery alongside the
    translation cache. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** capacity evictions only *)
  invalidations : int;  (** entries dropped by a revision change *)
  entries : int;
  bytes : int;  (** resident estimate *)
}

val stats : t -> stats
