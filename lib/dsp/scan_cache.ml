(* Cross-query materialized scan cache (paper section 4: repeated
   data-service scans dominate translated-query cost).

   Parameterless data-service calls are pure functions of the
   application's data revision: a physical function returns its
   backing table, a logical one a deterministic view over other
   services.  [Server.invoke] therefore serves them from this cache
   across queries, keyed by the invocation label
   ("path/service:function", suffixed with the evaluator flavor for
   logical bodies — see server.ml).

   Revision safety: every lookup and store first compares
   [Artifact.data_revision] — metadata revision plus every physical
   table's data version — against the revision the resident entries
   were materialized under; on any metadata change OR row insert the
   whole cache is flushed before proceeding, so a stale scan can never
   be served (the driver's translation cache follows the same
   protocol, on the metadata revision alone).

   Budgets: the materialization toll ([Budget.tick_items] over the
   served row count) is charged by [Server.invoke] at serve time,
   identically for a cold fetch and a cache hit, so warm and cold runs
   of one query see the same budget accounting and caching cannot be
   used to evade governors.  Capacity is bounded three ways: entry
   count, resident bytes (structural estimate), and a per-entry row
   cap above which results are served but never cached (one huge scan
   must not wipe the working set).  Eviction is LRU by access stamp.

   A disabled instance ([enabled:false]) is the oracle: every lookup
   misses silently, nothing is stored, no counters move. *)

module Item = Aqua_xml.Item
module Node = Aqua_xml.Node
module Atomic = Aqua_xml.Atomic
module T = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

type entry = {
  seq : Item.sequence;
  bytes : int;
  rows : int;
  mutable stamp : int;  (** last access; larger = more recent *)
  mutable arr : Item.t array option;
      (** memoized array view, built on first batched access so
          repeated batched scans slice in O(batch) instead of
          re-walking the list *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** capacity evictions only *)
  invalidations : int;  (** entries dropped by a revision change *)
  entries : int;
  bytes : int;  (** resident estimate *)
}

type t = {
  app : Artifact.application;
  enabled : bool;
  lock : Mcore.Mutex.t;
      (** guards [tbl], the byte/stat accounting and every entry's
          [stamp]/[arr]; per-instance, so two servers' caches never
          contend.  Not re-entrant: internal helpers assume it held. *)
  max_entries : int;
  max_bytes : int;
  max_rows : int;
  tbl : (string, entry) Hashtbl.t;
  mutable seen_revision : int;
  mutable clock : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(enabled = true) ?(max_entries = 64)
    ?(max_bytes = 8 * 1024 * 1024) ?(max_rows = 100_000) app =
  {
    app;
    enabled;
    lock = Mcore.Mutex.create ();
    max_entries = max 1 max_entries;
    max_bytes = max 1 max_bytes;
    max_rows = max 1 max_rows;
    tbl = Hashtbl.create 16;
    seen_revision = Artifact.data_revision app;
    clock = 0;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let enabled t = t.enabled

let stats t =
  Mcore.Mutex.protect t.lock @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.tbl;
    bytes = t.bytes;
  }

(* ------------------------------------------------------------------ *)
(* Size estimation                                                    *)

(* A cheap structural estimate — per-node overhead plus payload string
   lengths.  It only has to be monotone in actual memory use for the
   byte budget to bound the cache sensibly. *)

let atomic_bytes = function
  | Atomic.String s | Atomic.Untyped s -> 16 + String.length s
  | _ -> 16

let rec node_bytes = function
  | Node.Text s -> 16 + String.length s
  | Node.Element { name; attrs; children } ->
    List.fold_left
      (fun acc (k, v) -> acc + 16 + String.length k + String.length v)
      (32 + String.length name)
      attrs
    + List.fold_left (fun acc c -> acc + node_bytes c) 0 children

let item_bytes = function
  | Item.Atomic a -> atomic_bytes a
  | Item.Node n -> node_bytes n

let sequence_bytes seq = List.fold_left (fun acc i -> acc + item_bytes i) 0 seq

(* ------------------------------------------------------------------ *)
(* Revision tracking and eviction                                     *)

let drop t key (e : entry) ~invalidated =
  Hashtbl.remove t.tbl key;
  t.bytes <- t.bytes - e.bytes;
  T.add T.c_scan_cache_bytes (-e.bytes);
  if invalidated then t.invalidations <- t.invalidations + 1
  else begin
    t.evictions <- t.evictions + 1;
    T.incr T.c_scan_cache_evictions
  end

let flush_unlocked t =
  let all = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl [] in
  List.iter (fun (k, e) -> drop t k e ~invalidated:true) all

let flush t = Mcore.Mutex.protect t.lock (fun () -> flush_unlocked t)

(* Flush everything the moment the application's data revision moves
   (metadata change or a row inserted into any physical table) —
   called on every cache touch, so a served entry is always from the
   current revision. *)
let revalidate_unlocked t =
  let rev = Artifact.data_revision t.app in
  if rev <> t.seen_revision then begin
    flush_unlocked t;
    t.seen_revision <- rev
  end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | Some (k, e) -> drop t k e ~invalidated:false
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Lookup / store                                                     *)

let find t key =
  if not t.enabled then None
  else begin
    Mcore.Mutex.protect t.lock @@ fun () ->
    revalidate_unlocked t;
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      T.incr T.c_scan_cache_hits;
      Some e.seq
    | None ->
      t.misses <- t.misses + 1;
      T.incr T.c_scan_cache_misses;
      None
  end

(* Batched lookup: the same revision/LRU/counter protocol as [find],
   but the entry is served as size-capped array slices over a
   memoized array view — the vectorized scan path consumes cached
   materialized scans without re-traversing the item list per batch. *)
let find_batches t key ~size =
  if not t.enabled then None
  else begin
    Mcore.Mutex.protect t.lock @@ fun () ->
    revalidate_unlocked t;
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      T.incr T.c_scan_cache_hits;
      let arr =
        match e.arr with
        | Some a -> a
        | None ->
          let a = Array.of_list e.seq in
          e.arr <- Some a;
          a
      in
      let size = max 1 size in
      let n = Array.length arr in
      let nbatches = (n + size - 1) / size in
      Some
        (List.init nbatches (fun i ->
             Array.sub arr (i * size) (min size (n - (i * size)))))
    | None ->
      t.misses <- t.misses + 1;
      T.incr T.c_scan_cache_misses;
      None
  end

(* Columnar lookup: the whole memoized array view in one piece,
   zero-copy — the columnar engine treats a cached scan as a single
   value vector and indexes it directly, instead of paying one
   [Array.sub] per batch.  The array is the entry's own storage:
   callers must treat it as read-only. *)
let find_column t key =
  if not t.enabled then None
  else begin
    Mcore.Mutex.protect t.lock @@ fun () ->
    revalidate_unlocked t;
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      T.incr T.c_scan_cache_hits;
      let arr =
        match e.arr with
        | Some a -> a
        | None ->
          let a = Array.of_list e.seq in
          e.arr <- Some a;
          a
      in
      Some arr
    | None ->
      t.misses <- t.misses + 1;
      T.incr T.c_scan_cache_misses;
      None
  end

let store t key (seq : Item.sequence) =
  if t.enabled then begin
    Mcore.Mutex.protect t.lock @@ fun () ->
    revalidate_unlocked t;
    if not (Hashtbl.mem t.tbl key) then begin
      let rows = List.length seq in
      let bytes = sequence_bytes seq in
      (* oversized scans are served but never resident: admitting one
         would evict the entire working set for a single entry *)
      if rows <= t.max_rows && bytes <= t.max_bytes then begin
        t.clock <- t.clock + 1;
        Hashtbl.replace t.tbl key
          { seq; bytes; rows; stamp = t.clock; arr = None };
        t.bytes <- t.bytes + bytes;
        T.add T.c_scan_cache_bytes bytes;
        while
          Hashtbl.length t.tbl > t.max_entries || t.bytes > t.max_bytes
        do
          evict_lru t
        done
      end
    end
  end
