module A = Aqua_sql.Ast
module Sql_type = Aqua_relational.Sql_type
module Schema = Aqua_relational.Schema
module Metadata = Aqua_dsp.Metadata

type profile = {
  max_joins : int;
  allow_outer : bool;
  allow_group : bool;
  allow_subquery : bool;
  allow_setop : bool;
  allow_distinct : bool;
}

let default_profile =
  {
    max_joins = 1;
    allow_outer = true;
    allow_group = true;
    allow_subquery = true;
    allow_setop = true;
    allow_distinct = true;
  }

let reporting_profile =
  {
    max_joins = 1;
    allow_outer = false;
    allow_group = true;
    allow_subquery = false;
    allow_setop = false;
    allow_distinct = false;
  }

(* One bound table in the FROM being generated. *)
type source = {
  alias : string;
  meta : Metadata.table;
}

type gen = {
  rng : Random.State.t;
  tables : Metadata.table list;
  profile : profile;
}

let pick g arr = arr.(Random.State.int g.rng (Array.length arr))
let chance g p = Random.State.float g.rng 1.0 < p
let int_below g n = Random.State.int g.rng (max n 1)

let pick_list g l = List.nth l (int_below g (List.length l))

let columns_of (s : source) =
  List.map (fun (c : Schema.column) -> (s, c)) s.meta.Metadata.columns

let all_columns sources = List.concat_map columns_of sources

let filter_ty p cols = List.filter (fun (_, (c : Schema.column)) -> p c.Schema.ty) cols

let col_expr ((s : source), (c : Schema.column)) =
  A.Column { qualifier = Some s.alias; name = c.Schema.name; pos = A.no_pos }

(* ------------------------------------------------------------------ *)
(* Literals                                                           *)

let sample_strings =
  [| "Acme"; "Widgets"; "Boston"; "Austin"; "OPEN"; "SHIPPED"; "gear"; "bolt";
     "x"; "" |]

let literal_for g (ty : Sql_type.t) : A.expr =
  match ty with
  | Sql_type.Smallint | Sql_type.Integer | Sql_type.Bigint ->
    A.Lit (A.L_int (int_below g 2000))
  | Sql_type.Decimal _ | Sql_type.Real | Sql_type.Double ->
    let v = Float.of_int (int_below g 100000) /. 100. in
    A.Lit (A.L_num (v, Printf.sprintf "%.2f" v))
  | Sql_type.Char _ | Sql_type.Varchar _ ->
    A.Lit (A.L_string (pick g sample_strings))
  | Sql_type.Boolean -> A.Lit (A.L_bool (chance g 0.5))
  | Sql_type.Date ->
    A.Lit
      (A.L_date
         (Printf.sprintf "%04d-%02d-%02d" (2004 + int_below g 2)
            (1 + int_below g 12) (1 + int_below g 28)))
  | Sql_type.Time ->
    A.Lit
      (A.L_time
         (Printf.sprintf "%02d:%02d:%02d" (int_below g 24) (int_below g 60)
            (int_below g 60)))
  | Sql_type.Timestamp ->
    A.Lit
      (A.L_timestamp
         (Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (2004 + int_below g 2)
            (1 + int_below g 12) (1 + int_below g 28) (int_below g 24)
            (int_below g 60) (int_below g 60)))

let cmp_ops = [| A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge |]

(* ------------------------------------------------------------------ *)
(* Predicates                                                         *)

let rec gen_predicate g sources depth : A.expr =
  let cols = all_columns sources in
  let leaf () =
    let s, c = pick_list g cols in
    let col = col_expr (s, c) in
    let ty = c.Schema.ty in
    match int_below g 8 with
    | 0 -> A.Is_null { arg = col; negated = chance g 0.5 }
    | 1 when Sql_type.is_numeric ty || Sql_type.is_datetime ty ->
      A.Between
        {
          arg = col;
          low = literal_for g ty;
          high = literal_for g ty;
          negated = chance g 0.3;
        }
    | 2 when Sql_type.is_character ty ->
      let pattern =
        pick g [| "A%"; "%s%"; "%a"; "_o%"; "%e%"; "Acme%"; "%" |]
      in
      A.Like
        {
          arg = col;
          pattern = A.Lit (A.L_string pattern);
          escape = None;
          negated = chance g 0.3;
        }
    | 3 ->
      A.In_list
        {
          arg = col;
          items = List.init (1 + int_below g 3) (fun _ -> literal_for g ty);
          negated = chance g 0.3;
        }
    | 4 -> (
      (* column vs column of a comparable type *)
      let same_class =
        filter_ty (fun t2 -> Sql_type.comparable ty t2) cols
      in
      match same_class with
      | [] -> A.Cmp (pick g cmp_ops, col, literal_for g ty)
      | _ -> A.Cmp (pick g cmp_ops, col, col_expr (pick_list g same_class)))
    | 5 when g.profile.allow_subquery && depth > 0 ->
      gen_subquery_predicate g sources depth col ty
    | _ -> A.Cmp (pick g cmp_ops, col, literal_for g ty)
  in
  if depth > 0 && chance g 0.4 then begin
    let a = gen_predicate g sources (depth - 1) in
    let b = gen_predicate g sources (depth - 1) in
    let combined = if chance g 0.5 then A.And (a, b) else A.Or (a, b) in
    if chance g 0.2 then A.Not combined else combined
  end
  else leaf ()

and gen_subquery_predicate g _sources _depth col ty : A.expr =
  (* a single-column subquery over some table with a comparable column *)
  let candidates =
    List.concat_map
      (fun (m : Metadata.table) ->
        List.filter_map
          (fun (c : Schema.column) ->
            if Sql_type.comparable ty c.Schema.ty then Some (m, c) else None)
          m.Metadata.columns)
      g.tables
  in
  match candidates with
  | [] -> A.Cmp (pick g cmp_ops, col, literal_for g ty)
  | _ ->
    let m, c = pick_list g candidates in
    let inner_alias = "SQ" in
    let inner_source =
      { alias = inner_alias; meta = m }
    in
    let inner_where =
      if chance g 0.6 then Some (gen_predicate g [ inner_source ] 0) else None
    in
    let query =
      A.Spec
        {
          A.distinct = false;
          select =
            [ A.Expr_item
                ( A.Column
                    {
                      qualifier = Some inner_alias;
                      name = c.Schema.name;
                      pos = A.no_pos;
                    },
                  None ) ];
          from =
            [ A.Primary
                (A.Table_ref_name
                   {
                     name =
                       {
                         A.catalog = None;
                         schema = None;
                         table = m.Metadata.table;
                       };
                     alias = Some inner_alias;
                     pos = A.no_pos;
                   }) ];
          where = inner_where;
          group_by = [];
          having = None;
        }
    in
    (match int_below g 3 with
    | 0 -> A.In_query { arg = col; query; negated = chance g 0.3 }
    | 1 ->
      A.Quantified
        {
          op = pick g cmp_ops;
          quantifier = (if chance g 0.5 then A.Q_any else A.Q_all);
          arg = col;
          query;
        }
    | _ -> A.Exists query)

(* ------------------------------------------------------------------ *)
(* Scalar select expressions                                          *)

let gen_scalar g sources : A.expr * Sql_type.t =
  let cols = all_columns sources in
  let numeric = filter_ty Sql_type.is_numeric cols in
  let strings = filter_ty Sql_type.is_character cols in
  match int_below g 6 with
  | 0 when numeric <> [] ->
    let s, c = pick_list g numeric in
    ( A.Arith
        ( (if chance g 0.5 then A.Add else A.Mul),
          col_expr (s, c),
          A.Lit (A.L_int (1 + int_below g 9)) ),
      c.Schema.ty )
  | 1 when strings <> [] ->
    let s, c = pick_list g strings in
    (A.Func { name = "UPPER"; args = [ col_expr (s, c) ] }, Sql_type.Varchar None)
  | 2 when strings <> [] ->
    let s, c = pick_list g strings in
    ( A.Func { name = "LENGTH"; args = [ col_expr (s, c) ] },
      Sql_type.Integer )
  | 3 ->
    let s, c = pick_list g cols in
    ( A.Case
        {
          operand = None;
          branches =
            [ ( A.Is_null { arg = col_expr (s, c); negated = false },
                A.Lit (A.L_string "missing") ) ];
          else_ = Some (A.Lit (A.L_string "present"));
        },
      Sql_type.Varchar None )
  | 4 when strings <> [] ->
    let s, c = pick_list g strings in
    ( A.Func
        {
          name = "COALESCE";
          args = [ col_expr (s, c); A.Lit (A.L_string "n/a") ];
        },
      Sql_type.Varchar None )
  | _ ->
    let s, c = pick_list g cols in
    (col_expr (s, c), c.Schema.ty)

(* ------------------------------------------------------------------ *)
(* Query specs                                                        *)

let fresh_aliases = [| "T0"; "T1"; "T2"; "T3" |]

let gen_from g : A.table_ref list * source list =
  let n_extra =
    if g.profile.max_joins = 0 then 0 else int_below g (g.profile.max_joins + 1)
  in
  let metas =
    List.init (1 + n_extra) (fun _ ->
        pick_list g g.tables)
  in
  let sources =
    List.mapi (fun i m -> { alias = fresh_aliases.(i); meta = m }) metas
  in
  match sources with
  | [] -> assert false
  | first :: rest ->
    let table_primary (s : source) =
      A.Primary
        (A.Table_ref_name
           {
             name =
               {
                 A.catalog = None;
                 schema = None;
                 table = s.meta.Metadata.table;
               };
             alias = Some s.alias;
             pos = A.no_pos;
           })
    in
    let join_cond (a : source) (b : source) =
      (* equi-join over numeric columns when available *)
      let na = filter_ty Sql_type.is_numeric (columns_of a) in
      let nb = filter_ty Sql_type.is_numeric (columns_of b) in
      match (na, nb) with
      | [], _ | _, [] ->
        A.Cmp (A.Eq, A.Lit (A.L_int 1), A.Lit (A.L_int 1))
      | _ ->
        A.Cmp (A.Eq, col_expr (pick_list g na), col_expr (pick_list g nb))
    in
    let tree =
      List.fold_left
        (fun (acc, prev) s ->
          let kind =
            if g.profile.allow_outer && chance g 0.3 then
              pick g [| A.J_left; A.J_right; A.J_inner |]
            else A.J_inner
          in
          ( A.Join
              {
                kind;
                left = acc;
                right = table_primary s;
                cond = Some (join_cond prev s);
              },
            s ))
        (table_primary first, first)
        rest
      |> fst
    in
    ([ tree ], sources)

let gen_spec g ~for_setop : A.query_spec * source list =
  let from, sources = gen_from g in
  let where =
    if chance g 0.7 then Some (gen_predicate g sources 1) else None
  in
  let grouped = g.profile.allow_group && chance g 0.3 in
  if grouped then begin
    let cols = all_columns sources in
    let group_cols =
      List.sort_uniq compare
        (List.init (1 + int_below g 2) (fun _ -> int_below g (List.length cols)))
      |> List.map (List.nth cols)
    in
    let numeric = filter_ty Sql_type.is_numeric cols in
    let aggs =
      A.Expr_item (A.Agg { func = A.A_count_star; distinct = false; arg = None },
                   Some "CNT")
      ::
      (if numeric = [] then []
       else
         [ A.Expr_item
             ( A.Agg
                 {
                   func = pick g [| A.A_sum; A.A_min; A.A_max; A.A_avg |];
                   distinct = chance g 0.15;
                   arg = Some (col_expr (pick_list g numeric));
                 },
               Some "AGG1" ) ])
    in
    let select =
      List.mapi
        (fun i gc -> A.Expr_item (col_expr gc, Some (Printf.sprintf "G%d" i)))
        group_cols
      @ aggs
    in
    let having =
      if chance g 0.4 then
        Some
          (A.Cmp
             ( pick g cmp_ops,
               A.Agg { func = A.A_count_star; distinct = false; arg = None },
               A.Lit (A.L_int (1 + int_below g 4)) ))
      else None
    in
    ( {
        A.distinct = false;
        select;
        from;
        where;
        group_by = List.map col_expr group_cols;
        having;
      },
      sources )
  end
  else begin
    let n_items = 1 + int_below g 3 in
    let select =
      List.init n_items (fun i ->
          let e, _ = gen_scalar g sources in
          A.Expr_item (e, Some (Printf.sprintf "O%d" i)))
    in
    ignore for_setop;
    ( {
        A.distinct = g.profile.allow_distinct && chance g 0.15;
        select;
        from;
        where;
        group_by = [];
        having = None;
      },
      sources )
  end

let gen_query g : A.query =
  if g.profile.allow_setop && chance g 0.15 then begin
    (* two specs over the same table with identical projections *)
    let m = pick_list g g.tables in
    let source = { alias = "T0"; meta = m } in
    let cols = columns_of source in
    let n = 1 + int_below g (min 3 (List.length cols)) in
    let chosen = List.filteri (fun i _ -> i < n) cols in
    let mk_spec () =
      {
        A.distinct = false;
        select =
          List.mapi
            (fun i c -> A.Expr_item (col_expr c, Some (Printf.sprintf "S%d" i)))
            chosen;
        from =
          [ A.Primary
              (A.Table_ref_name
                 {
                   name =
                     {
                       A.catalog = None;
                       schema = None;
                       table = m.Metadata.table;
                     };
                   alias = Some "T0";
                   pos = A.no_pos;
                 }) ];
        where =
          (if chance g 0.8 then Some (gen_predicate g [ source ] 0) else None);
        group_by = [];
        having = None;
      }
    in
    let op = pick g [| A.S_union; A.S_intersect; A.S_except |] in
    A.Set
      {
        op;
        all = chance g 0.4;
        left = A.Spec (mk_spec ());
        right = A.Spec (mk_spec ());
      }
  end
  else if g.profile.allow_subquery && chance g 0.12 then begin
    (* derived table *)
    let inner, _ = gen_spec g ~for_setop:false in
    let inner_cols =
      List.filter_map
        (function
          | A.Expr_item (_, Some a) -> Some a
          | A.Expr_item (_, None) | A.Star | A.Table_star _ -> None)
        inner.A.select
    in
    let select =
      List.map
        (fun a ->
          A.Expr_item
            ( A.Column { qualifier = Some "D"; name = a; pos = A.no_pos },
              Some a ))
        inner_cols
    in
    A.Spec
      {
        A.distinct = false;
        select;
        from = [ A.Primary (A.Derived { query = A.Spec inner; alias = "D" }) ];
        where = None;
        group_by = [];
        having = None;
      }
  end
  else A.Spec (fst (gen_spec g ~for_setop:false))

let output_arity (q : A.query) =
  let rec count = function
    | A.Spec spec ->
      List.fold_left
        (fun acc item ->
          match item with
          | A.Expr_item _ -> acc + 1
          | A.Star | A.Table_star _ -> acc (* not generated *))
        0 spec.A.select
    | A.Set { left; _ } -> count left
  in
  count q

let generate ?(profile = default_profile) rng tables : A.statement =
  if tables = [] then invalid_arg "Querygen.generate: no tables";
  let g = { rng; tables; profile } in
  let body = gen_query g in
  let order_by =
    if chance g 0.5 then
      let n = output_arity body in
      List.init
        (1 + int_below g (min 2 n))
        (fun _ ->
          {
            A.key = A.Ord_position (1 + int_below g n);
            descending = chance g 0.4;
          })
    else []
  in
  { A.body; order_by }

let generate_sql ?profile rng tables =
  Aqua_sql.Pretty.statement_to_string (generate ?profile rng tables)
