(** Random SQL-92 statement generation over a catalog, used for
    property-based differential testing (translated-XQuery execution
    vs. the baseline engine) and for benchmark workloads.

    Statements are generated as ASTs and are semantically valid by
    construction for the given catalog: column references resolve,
    compared types are comparable, grouped queries project only
    grouping columns and aggregates. *)

type profile = {
  max_joins : int;        (** extra tables beyond the first, 0..n *)
  allow_outer : bool;
  allow_group : bool;
  allow_subquery : bool;
  allow_setop : bool;
  allow_distinct : bool;
}

val default_profile : profile

val reporting_profile : profile
(** Group-heavy rollup queries, the Crystal-Reports-style workload the
    paper motivates. *)

val generate :
  ?profile:profile ->
  Random.State.t ->
  Aqua_dsp.Metadata.table list ->
  Aqua_sql.Ast.statement
(** One random statement over the given tables (at least one table
    required). *)

val generate_sql :
  ?profile:profile ->
  Random.State.t ->
  Aqua_dsp.Metadata.table list ->
  string
(** [generate] rendered to SQL text. *)
