(* The demo application used by the CLI and the examples: a small
   order-management star schema in the spirit of the paper's
   CUSTOMERS / PAYMENTS / PO_CUSTOMERS examples, registered as physical
   data services of the "TestDataServices" project. *)

module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Artifact = Aqua_dsp.Artifact

let customers () =
  let t =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 40));
        Schema.column "CITY" (Sql_type.Varchar (Some 30));
        Schema.column "TIER" Sql_type.Integer ]
  in
  Table.insert_all t
    [ [ Value.Int 1; Value.Str "Acme Widget Stores"; Value.Str "Austin"; Value.Int 1 ];
      [ Value.Int 2; Value.Str "Supermart"; Value.Str "Boston"; Value.Int 2 ];
      [ Value.Int 3; Value.Str "Ajax Distributors"; Value.Str "Austin"; Value.Int 2 ];
      [ Value.Int 4; Value.Str "Zenith Parts and Service"; Value.Null; Value.Int 3 ];
      [ Value.Int 5; Value.Str "Sue"; Value.Str "Chicago"; Value.Null ];
      [ Value.Int 6; Value.Str "Joe"; Value.Str "Boston"; Value.Int 1 ] ];
  t

let payments () =
  let t =
    Table.create "PAYMENTS"
      [ Schema.column ~nullable:false "PAYMENTID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTID" Sql_type.Integer;
        Schema.column ~nullable:false "PAYMENT" (Sql_type.Decimal (Some (10, 2)));
        Schema.column "PAYDATE" Sql_type.Date ]
  in
  Table.insert_all t
    [ [ Value.Int 100; Value.Int 1; Value.Num 250.0; Value.Date { Aqua_xml.Atomic.year = 2005; month = 1; day = 15 } ];
      [ Value.Int 101; Value.Int 1; Value.Num 75.5; Value.Date { Aqua_xml.Atomic.year = 2005; month = 2; day = 20 } ];
      [ Value.Int 102; Value.Int 2; Value.Num 1200.0; Value.Null ];
      [ Value.Int 103; Value.Int 3; Value.Num 42.0; Value.Date { Aqua_xml.Atomic.year = 2005; month = 3; day = 1 } ];
      [ Value.Int 104; Value.Int 6; Value.Num 900.0; Value.Date { Aqua_xml.Atomic.year = 2005; month = 3; day = 2 } ] ];
  t

let po_customers () =
  let t =
    Table.create "PO_CUSTOMERS"
      [ Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "AMOUNT" (Sql_type.Decimal (Some (10, 2)));
        Schema.column "STATUS" (Sql_type.Varchar (Some 10)) ]
  in
  Table.insert_all t
    [ [ Value.Int 9001; Value.Int 1; Value.Num 120.0; Value.Str "OPEN" ];
      [ Value.Int 9002; Value.Int 1; Value.Num 80.0; Value.Str "SHIPPED" ];
      [ Value.Int 9003; Value.Int 2; Value.Num 42.5; Value.Str "OPEN" ];
      [ Value.Int 9004; Value.Int 3; Value.Num 99.99; Value.Null ];
      [ Value.Int 9005; Value.Int 5; Value.Num 10.0; Value.Str "OPEN" ];
      [ Value.Int 9006; Value.Int 5; Value.Num 20.0; Value.Str "SHIPPED" ] ];
  t

let build () =
  let app = Artifact.application "DemoApp" in
  let project = "TestDataServices" in
  ignore (Artifact.import_physical_table app ~project (customers ()));
  ignore (Artifact.import_physical_table app ~project (payments ()));
  ignore (Artifact.import_physical_table app ~project (po_customers ()));
  app
