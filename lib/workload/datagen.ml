module Schema = Aqua_relational.Schema
module Sql_type = Aqua_relational.Sql_type
module Table = Aqua_relational.Table
module Value = Aqua_relational.Value
module Atomic = Aqua_xml.Atomic
module Artifact = Aqua_dsp.Artifact

type sizes = {
  customers : int;
  orders : int;
  lines_per_order : int;
  payments : int;
}

let default_sizes =
  { customers = 50; orders = 200; lines_per_order = 3; payments = 120 }

let cities =
  [| "Austin"; "Boston"; "Chicago"; "Denver"; "El Paso"; "Fresno"; "Georgetown" |]

let first_names =
  [| "Acme"; "Zenith"; "Ajax"; "Globex"; "Initech"; "Umbrella"; "Stark";
     "Wayne"; "Wonka"; "Tyrell" |]

let second_names =
  [| "Widgets"; "Distributors"; "Supplies"; "Parts"; "Industries"; "Trading";
     "Logistics"; "Holdings" |]

let statuses = [| "OPEN"; "SHIPPED"; "BILLED"; "CLOSED" |]
let products = [| "bolt"; "nut"; "washer"; "gear"; "spring"; "shaft"; "cam" |]

let date_of_day d =
  (* days spread over 2004-2005 *)
  let year = 2004 + (d / 360) in
  let month = 1 + (d mod 360 / 30) in
  let day = 1 + (d mod 30) in
  Value.Date { Atomic.year; month; day }

let maybe_null rng fraction v =
  if Random.State.float rng 1.0 < fraction then Value.Null else v

let customers_table rng n =
  let t =
    Table.create "CUSTOMERS"
      [ Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERNAME" (Sql_type.Varchar (Some 60));
        Schema.column "CITY" (Sql_type.Varchar (Some 30));
        Schema.column "TIER" Sql_type.Integer;
        Schema.column "CREDIT" (Sql_type.Decimal (Some (10, 2))) ]
  in
  for i = 1 to n do
    let name =
      first_names.(Random.State.int rng (Array.length first_names))
      ^ " "
      ^ second_names.(Random.State.int rng (Array.length second_names))
      ^ Printf.sprintf " #%d" i
    in
    Table.insert t
      [ Value.Int i;
        Value.Str name;
        maybe_null rng 0.1
          (Value.Str cities.(Random.State.int rng (Array.length cities)));
        maybe_null rng 0.15 (Value.Int (1 + Random.State.int rng 3));
        maybe_null rng 0.2
          (Value.Num (Float.of_int (Random.State.int rng 100000) /. 100.)) ]
  done;
  t

let orders_table rng ~customers n =
  let t =
    Table.create "ORDERS"
      [ Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTOMERID" Sql_type.Integer;
        Schema.column ~nullable:false "ORDERDATE" Sql_type.Date;
        Schema.column "STATUS" (Sql_type.Varchar (Some 10));
        Schema.column "PRIORITY" Sql_type.Integer ]
  in
  for i = 1 to n do
    Table.insert t
      [ Value.Int (1000 + i);
        Value.Int (1 + Random.State.int rng (max customers 1));
        date_of_day (Random.State.int rng 700);
        maybe_null rng 0.05
          (Value.Str statuses.(Random.State.int rng (Array.length statuses)));
        maybe_null rng 0.3 (Value.Int (Random.State.int rng 5)) ]
  done;
  t

let orderlines_table rng ~orders per_order =
  let t =
    Table.create "ORDERLINES"
      [ Schema.column ~nullable:false "LINEID" Sql_type.Integer;
        Schema.column ~nullable:false "ORDERID" Sql_type.Integer;
        Schema.column ~nullable:false "PRODUCT" (Sql_type.Varchar (Some 20));
        Schema.column ~nullable:false "QTY" Sql_type.Integer;
        Schema.column ~nullable:false "PRICE" (Sql_type.Decimal (Some (8, 2))) ]
  in
  let id = ref 0 in
  for o = 1 to orders do
    let lines = 1 + Random.State.int rng (max per_order 1) in
    for _ = 1 to lines do
      incr id;
      Table.insert t
        [ Value.Int !id;
          Value.Int (1000 + o);
          Value.Str products.(Random.State.int rng (Array.length products));
          Value.Int (1 + Random.State.int rng 20);
          Value.Num (Float.of_int (1 + Random.State.int rng 10000) /. 100.) ]
    done
  done;
  t

let payments_table rng ~customers n =
  let t =
    Table.create "PAYMENTS"
      [ Schema.column ~nullable:false "PAYMENTID" Sql_type.Integer;
        Schema.column ~nullable:false "CUSTID" Sql_type.Integer;
        Schema.column ~nullable:false "PAYMENT" (Sql_type.Decimal (Some (10, 2)));
        Schema.column "PAYDATE" Sql_type.Date ]
  in
  for i = 1 to n do
    Table.insert t
      [ Value.Int (5000 + i);
        Value.Int (1 + Random.State.int rng (max customers 1));
        Value.Num (Float.of_int (1 + Random.State.int rng 500000) /. 100.);
        maybe_null rng 0.1 (date_of_day (Random.State.int rng 700)) ]
  done;
  t

let tables ?(seed = 42) sizes =
  let rng = Random.State.make [| seed |] in
  [ customers_table rng sizes.customers;
    orders_table rng ~customers:sizes.customers sizes.orders;
    orderlines_table rng ~orders:sizes.orders sizes.lines_per_order;
    payments_table rng ~customers:sizes.customers sizes.payments ]

let application ?seed ?(project = "Sales") sizes =
  let app = Artifact.application "WorkloadApp" in
  List.iter
    (fun t -> ignore (Artifact.import_physical_table app ~project t))
    (tables ?seed sizes);
  app

let wide_table ?(seed = 7) ~name ~columns ~rows () =
  let rng = Random.State.make [| seed |] in
  let schema =
    Schema.column ~nullable:false "ID" Sql_type.Integer
    :: List.init columns (fun i ->
           if i mod 2 = 0 then
             Schema.column (Printf.sprintf "C%d" i) (Sql_type.Varchar (Some 40))
           else Schema.column (Printf.sprintf "C%d" i) Sql_type.Integer)
  in
  let t = Table.create name schema in
  for r = 1 to rows do
    Table.insert t
      (Value.Int r
      :: List.init columns (fun i ->
             if Random.State.float rng 1.0 < 0.05 then Value.Null
             else if i mod 2 = 0 then
               Value.Str
                 (Printf.sprintf "value-%d-%d <&> %s" r i
                    products.(Random.State.int rng (Array.length products)))
             else Value.Int (Random.State.int rng 1000000)))
  done;
  t
