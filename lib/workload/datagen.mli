(** Synthetic catalog and data generation.

    Stands in for the enterprise sources behind the paper's deployment
    (reporting databases feeding Crystal Reports-style tools): a
    reproducible star schema of customers, orders, order lines and
    payments whose sizes are parameters, so benchmarks can sweep result
    cardinality. *)

type sizes = {
  customers : int;
  orders : int;
  lines_per_order : int;
  payments : int;
}

val default_sizes : sizes

val tables : ?seed:int -> sizes -> Aqua_relational.Table.t list
(** CUSTOMERS, ORDERS, ORDERLINES, PAYMENTS with realistic value
    distributions and NULL fractions; deterministic for a seed. *)

val application :
  ?seed:int -> ?project:string -> sizes -> Aqua_dsp.Artifact.application
(** The same tables imported as physical data services (metadata
    import, paper Example 2). Project defaults to "Sales". *)

val wide_table :
  ?seed:int -> name:string -> columns:int -> rows:int -> unit ->
  Aqua_relational.Table.t
(** A table with [columns] VARCHAR/INTEGER columns for result-width
    sweeps (benchmark P1). *)
