(* The aqua_stat_* virtual tables: pg_stat_statements-style live
   introspection answered by the wire server itself, before any
   translation.  Each table renders a registry snapshot into the same
   Outcol/Value shapes every real result uses, so the existing
   RowDescription/DataRow encoders serve them unchanged and any stock
   client sees ordinary rows. *)

module Outcol = Aqua_translator.Outcol
module Value = Aqua_relational.Value
module Sql_type = Aqua_relational.Sql_type
module Stats = Aqua_obs.Stats
module Histogram = Aqua_obs.Histogram
module Breaker = Aqua_resilience.Breaker

type table = Statements | Activity | Breakers

let table_names =
  [ "aqua_stat_statements"; "aqua_stat_activity"; "aqua_stat_breakers" ]

(* Recognize exactly [SELECT * FROM <name>] (any case, any whitespace,
   optional trailing semicolon).  Anything fancier — projections,
   predicates — falls through to the translator and fails there with
   its normal unknown-table error, which is the honest answer: these
   are not catalog tables. *)
let recognize sql =
  let s = String.trim sql in
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ';' then String.trim (String.sub s 0 (n - 1))
    else s
  in
  let toks =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s)
    |> List.filter (fun t -> t <> "")
    |> List.map String.lowercase_ascii
  in
  match toks with
  | [ "select"; "*"; "from"; name ] -> (
    match name with
    | "aqua_stat_statements" -> Some Statements
    | "aqua_stat_activity" -> Some Activity
    | "aqua_stat_breakers" -> Some Breakers
    | _ -> None)
  | _ -> None

let col label ty =
  (* the element name never reaches XML on this path; the label is a
     valid XML name already *)
  Outcol.make ~label ~element:label ~ty ~nullable:false

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* -- aqua_stat_statements: the per-fingerprint registry ------------- *)

let statements_cols =
  [ col "fingerprint" (Sql_type.Varchar None);
    col "query" (Sql_type.Varchar None);
    col "calls" Sql_type.Bigint;
    col "rows" Sql_type.Bigint;
    col "cache_hits" Sql_type.Bigint;
    col "errors" Sql_type.Bigint;
    col "mean_ms" Sql_type.Double;
    col "p50_ms" Sql_type.Double;
    col "p99_ms" Sql_type.Double;
    col "total_ms" Sql_type.Double ]

let statements () =
  let rows =
    List.map
      (fun (e : Stats.entry) ->
        let total_ns = Histogram.total e.Stats.total in
        let calls = e.Stats.calls in
        let mean_ms =
          if calls = 0 then 0.0 else ms_of_ns total_ns /. float_of_int calls
        in
        [| Value.Str e.Stats.fingerprint;
           Value.Str e.Stats.shape;
           Value.Int calls;
           Value.Int e.Stats.rows;
           Value.Int e.Stats.cache_hits;
           Value.Int e.Stats.errors;
           Value.Num mean_ms;
           Value.Num (ms_of_ns (Histogram.p50 e.Stats.total));
           Value.Num (ms_of_ns (Histogram.p99 e.Stats.total));
           Value.Num (ms_of_ns total_ns) |])
      (Stats.entries ())
  in
  (statements_cols, rows)

(* -- aqua_stat_activity: queries in flight right now ---------------- *)

type activity_row = {
  pid : int;  (* the backend id sent in BackendKeyData *)
  query : string;  (* normalized shape, not raw text *)
  fingerprint : string;
  elapsed_ms : float;
  trace_id : string;
}

let activity_cols =
  [ col "pid" Sql_type.Integer;
    col "state" (Sql_type.Varchar None);
    col "query" (Sql_type.Varchar None);
    col "fingerprint" (Sql_type.Varchar None);
    col "elapsed_ms" Sql_type.Double;
    col "trace_id" (Sql_type.Varchar None) ]

let activity rows =
  let rows =
    List.map
      (fun a ->
        [| Value.Int a.pid;
           Value.Str "active";
           Value.Str a.query;
           Value.Str a.fingerprint;
           Value.Num a.elapsed_ms;
           Value.Str a.trace_id |])
      (List.sort (fun a b -> compare a.pid b.pid) rows)
  in
  (activity_cols, rows)

(* -- aqua_stat_breakers: per-function circuit state ----------------- *)

let breakers_cols =
  [ col "function" (Sql_type.Varchar None);
    col "state" (Sql_type.Varchar None);
    col "rejecting" Sql_type.Boolean;
    col "trips" Sql_type.Bigint;
    col "recoveries" Sql_type.Bigint;
    col "rejections" Sql_type.Bigint ]

let breakers bs =
  let rows =
    List.map
      (fun b ->
        [| Value.Str (Breaker.name b);
           Value.Str (Breaker.state_to_string (Breaker.state b));
           Value.Bool (Breaker.rejecting b);
           Value.Int (Breaker.trips b);
           Value.Int (Breaker.recoveries b);
           Value.Int (Breaker.rejections b) |])
      bs
  in
  (breakers_cols, rows)
