(** The admin plane: a minimal HTTP/1.0 listener on a side port.

    One GET per connection, served on a dedicated domain, so operator
    tooling (curl, a Prometheus scraper, a load-balancer health check)
    reaches the server's diagnostics without speaking the pg wire
    protocol — and keeps reaching them while the data plane drains.
    {!Netserver} registers the actual routes ([/metrics], [/healthz],
    [/statusz]); this module only owns sockets and framing.

    Hardening: 2 s socket deadlines, an 8 KiB request bound, GET/HEAD
    only, and every per-connection failure costs that connection. *)

type response = { status : int; content_type : string; body : string }

val text : int -> string -> response
(** [text/plain; charset=utf-8] *)

val json : int -> string -> response
(** [application/json] *)

type t

val start : ?host:string -> port:int -> (string -> response) -> t
(** Bind (default host 127.0.0.1; port 0 picks an ephemeral one),
    listen, and serve [handler path] on a background domain.  The
    handler sees the request path with any query string stripped; an
    exception inside it becomes a 500 for that request only.
    @raise Failure on the pre-5.0 single-domain shim (no background
    domain to serve from) *)

val port : t -> int
(** The bound port. *)

val stop : t -> unit
(** Stop accepting, join the domain, close the socket.  Idempotent. *)
