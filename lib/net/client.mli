(** Minimal in-repo PostgreSQL simple-query client.

    Just enough protocol to drive {!Netserver} from the bench
    (experiment P13), the test suite and the CI smoke job without any
    external client library: blocking connect, startup handshake, one
    [Query] at a time, typed errors surfaced as [(sqlstate, message)].
    Not a general client — no TLS, no authentication exchanges beyond
    [AuthenticationOk], no extended protocol. *)

type t

type reply = {
  columns : string list;
  rows : string option list list;  (** [None] = SQL NULL *)
  tag : string;  (** CommandComplete tag, e.g. ["SELECT 6"] *)
}

val connect :
  ?timeout_ms:int ->
  ?user:string ->
  ?database:string ->
  host:string ->
  port:int ->
  unit ->
  (t, string * string) result
(** Dial, send the startup message, consume the greeting through
    [ReadyForQuery].  [timeout_ms] (default 5000) bounds connect and
    every read/write.  An [ErrorResponse] during the handshake — the
    server shedding with 53300 or 57P03 — is [Error (sqlstate, msg)];
    transport failures use sqlstate ["08006"]. *)

val query : t -> string -> (reply, string * string) result
(** One simple-query round trip.  A query-level [ErrorResponse]
    followed by [ReadyForQuery] leaves the connection usable; a FATAL
    error or transport failure closes it (subsequent calls fail
    fast). *)

val close : t -> unit
(** Send [Terminate] (best effort) and close the socket.  Safe to call
    twice. *)
