(* A deliberately tiny HTTP/1.0 listener for the admin plane: one
   request per connection, GET only, Connection: close.  It serves
   scrapes and health probes on a side port so the operator's tooling
   (curl, Prometheus) never has to speak the pg wire protocol, and so
   a wedged data plane cannot take the diagnostics down with it — the
   admin loop runs on its own domain and touches only the handler the
   server registered.

   Hardening mirrors the wire server in miniature: socket deadlines on
   every read/write, a bounded request buffer (8 KiB), and any
   per-connection failure costs exactly that connection. *)

module Mcore = Aqua_multicore.Mcore

type response = { status : int; content_type : string; body : string }

let text status body = { status; content_type = "text/plain; charset=utf-8"; body }
let json status body = { status; content_type = "application/json"; body }

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  mutable handle : unit Mcore.Domains.handle option;
}

let reason_of = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 400 -> "Bad Request"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let max_request = 8192

(* Read until the blank line ending the header block (we ignore the
   headers themselves; GET carries no body), bounded in bytes and by
   the socket deadline. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > max_request then None
    else
      let s = Buffer.contents buf in
      let have_terminator =
        let rec find i =
          i + 1 < String.length s
          && ((s.[i] = '\n' && s.[i + 1] = '\n')
             || (i + 3 < String.length s
                && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                && s.[i + 3] = '\n')
             || find (i + 1))
        in
        find 0
      in
      if have_terminator then Some s
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  try go () with Unix.Unix_error _ -> None

let parse_request_line req =
  match String.index_opt req '\n' with
  | None -> None
  | Some i ->
    let line = String.trim (String.sub req 0 i) in
    (match String.split_on_char ' ' line with
    | meth :: target :: _ ->
      (* strip any query string: routing is path-only *)
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path)
    | _ -> None)

let write_response fd resp =
  let payload =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      resp.status (reason_of resp.status) resp.content_type
      (String.length resp.body) resp.body
  in
  let n = String.length payload in
  let rec go off =
    if off < n then
      match Unix.write_substring fd payload off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()

let serve_one handler fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0
   with Unix.Unix_error _ -> ());
  (match read_request fd with
  | None -> ()
  | Some req -> (
    match parse_request_line req with
    | None -> write_response fd (text 400 "bad request\n")
    | Some (meth, path) ->
      if meth <> "GET" && meth <> "HEAD" then
        write_response fd (text 405 "only GET is served here\n")
      else
        let resp =
          try handler path
          with e -> text 500 (Printexc.to_string e ^ "\n")
        in
        write_response fd (if meth = "HEAD" then { resp with body = "" } else resp)));
  close_quiet fd

let accept_loop t handler =
  let rec go () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listener ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | fd, _ -> serve_one handler fd
        | exception
            Unix.Unix_error
              ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED | EBADF), _, _) ->
          ())
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ());
      go ()
    end
  in
  go ()

let start ?(host = "127.0.0.1") ~port handler =
  if not Mcore.multicore then
    failwith "Admin.start needs the multicore build (OCaml >= 5.0)";
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listener SO_REUSEADDR true;
  let addr =
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> Unix.inet_addr_loopback
    in
    Unix.ADDR_INET (ip, port)
  in
  (try
     Unix.bind listener addr;
     Unix.listen listener 16
   with e ->
     close_quiet listener;
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { listener; bound_port; stop_flag = Atomic.make false; handle = None } in
  t.handle <- Some (Mcore.Domains.spawn (fun () -> accept_loop t handler));
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (match t.handle with Some h -> ignore (Mcore.Domains.join h) | None -> ());
    t.handle <- None;
    close_quiet t.listener
  end
