(** The wire-protocol front end: a PostgreSQL-speaking socket server
    over the in-process translator stack.

    The paper's DSP sits behind a JDBC driver; this module reproduces
    the missing network layer so stock PostgreSQL client libraries can
    connect, hand over SQL and stream back translated results.  One
    blocking accept loop feeds a bounded connection queue drained by a
    pool of worker domains; each admitted connection becomes a wire
    session multiplexed onto the shared {!Aqua_driver.Session_pool}.

    Robustness is the point, not a feature flag:
    - admission control: a full queue is refused {e before any work}
      with SQLSTATE 53300, so overload degrades into fast typed
      rejections instead of collapse;
    - an open circuit breaker on the backend fast-fails new queries
      with 08006 while the session survives to retry;
    - every session read/write carries a socket deadline, and each
      query runs under the session's {!Aqua_resilience.Budget};
    - a malformed, truncated or oversized frame costs exactly one
      session (08P01), never the server;
    - SIGTERM starts a graceful drain: the listener closes, queued
      connections get 57P03, live sessions get 57P01 on their next
      query, in-flight queries finish under the drain deadline, and
      the flight recorder ring is dumped with reason ["drain"].

    Fault injection sites: [net.accept], [net.read], [net.write] and
    [net.session] (see {!Aqua_resilience.Failpoint.catalog}). *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (tests/bench) *)
  pool_size : int;  (** sessions in the shared session pool *)
  workers : int;  (** worker domains; [0] means [pool_size] *)
  queue_depth : int;  (** accepted-but-unserved connection bound *)
  borrow_wait_ms : int;  (** per-query wait for a pool session *)
  io_timeout_ms : int;  (** socket read/write deadline *)
  drain_timeout_ms : int;  (** bound on waiting out in-flight queries *)
  max_frame : int;  (** per-frame byte cap (decoder hardening) *)
  limits : Aqua_resilience.Budget.limits;  (** per-session query budget *)
  trace_sample : float;
      (** head-based trace-sampling probability in [0,1]: every wire
          query gets a trace id (client-supplied via a leading
          [/*traceparent:<id>*/] comment — stripped before
          fingerprinting and translation — or minted), and this is
          the probability its span tree emits as NDJSON.  Aggregates
          and the flight recorder see every query regardless. *)
  admin_port : int option;
      (** when set, serve the HTTP admin plane ([/metrics],
          [/healthz], [/statusz]) on this side port (0 = ephemeral);
          multicore builds only — the shim has no spare domain. *)
}

val default_config : config
(** 127.0.0.1:5433, 8 sessions/workers, queue 16, 1 s borrow wait,
    5 s socket deadline, 2 s drain bound, 1 MiB frames, no budget,
    sampling 0.0, no admin port. *)

(** Counter snapshot maintained by the server itself (independent of
    the telemetry enable switch, which the same events also feed). *)
type summary = {
  connections : int;  (** accepted, including later-shed ones *)
  queries : int;  (** Query messages admitted to execution *)
  shed_queue : int;  (** refused 53300: queue full *)
  shed_drain : int;  (** refused 57P03/57P01: draining *)
  shed_breaker : int;  (** refused 08006: breaker open *)
  protocol_errors : int;  (** 08P01 sessions: bad frames *)
  io_timeouts : int;  (** sessions dropped on a socket deadline *)
}

type t
(** A started server. *)

val port : t -> int
(** The bound port (the ephemeral one when configured with 0). *)

val summary : t -> summary

val draining : t -> bool

val request_drain : t -> unit
(** Flip the drain flag (what the SIGTERM handler does): the accept
    loop stops admitting and live sessions begin refusing.  Returns
    immediately; {!drain} completes the shutdown. *)

val admin_port : t -> int option
(** The bound admin-plane port, when [admin_port] was configured (and
    the build is multicore). *)

val request_dump : t -> unit
(** Ask the accept loop to dump the flight-recorder ring to its sink
    with reason ["signal"] on its next turn.  Async-signal-safe: this
    is what the SIGUSR1 handler installed by {!run} calls. *)

val start :
  ?config:config ->
  ?snapshot_sink:(string -> unit) ->
  ?on_admin_listening:(int -> unit) ->
  Aqua_driver.Connection.t ->
  t
(** Bind, listen, and serve in background domains (an accept domain
    plus [workers] session domains).  Requires the multicore build —
    the single-domain shim cannot run a background server.
    [snapshot_sink], when given, receives the final
    {!Aqua_obs.Expose.prometheus} exposition at the end of {!drain}.
    [on_admin_listening] is called with the admin plane's bound port
    once it is listening (only when [admin_port] is configured).

    Besides translated SQL, every session answers the [aqua_stat_*]
    virtual tables ([SELECT * FROM aqua_stat_statements | _activity |
    _breakers]) directly from the live in-process registries — no
    session-pool borrow, no budget, no translation — so diagnostics
    stay reachable even when the data plane is saturated or the
    breaker is open.
    @raise Failure on the pre-5.0 shim *)

val drain : t -> unit
(** Graceful shutdown: stop accepting, broadcast the queue (so workers
    refuse what is left with 57P03), wait — bounded by
    [drain_timeout_ms] — for in-flight queries to finish, unblock idle
    sessions, join every domain, dump the flight recorder with reason
    ["drain"] and emit the exposition snapshot.  Idempotent. *)

val run : ?config:config -> ?snapshot_sink:(string -> unit) ->
  ?on_listening:(int -> unit) ->
  ?on_admin_listening:(int -> unit) ->
  Aqua_driver.Connection.t -> summary
(** The CLI entry point: serve until SIGTERM/SIGINT, then {!drain},
    returning the final summary.  [on_listening] is called with the
    bound port once the socket is listening (before the first accept)
    — the CI smoke job keys on its output; [on_admin_listening]
    likewise for the admin plane.  SIGUSR1 triggers an on-demand
    flight-recorder dump (reason ["signal"]) via {!request_dump}.  On
    the multicore build this is [start] + signal-driven drain; on the
    shim it degrades to a sequential accept loop (one connection
    served at a time, same protocol, same drain semantics). *)
