(* Minimal simple-query client: the counterpart the bench and the CI
   smoke job use to drive Netserver without an external dependency. *)

type t = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  mutable alive : bool;
}

type reply = {
  columns : string list;
  rows : string option list list;
  tag : string;
}

let transport_error msg = Error ("08006", msg)

let close t =
  if t.alive then begin
    t.alive <- false;
    let buf = Buffer.create 8 in
    Wire.terminate_message buf;
    (try
       ignore
         (Unix.write_substring t.fd (Buffer.contents buf) 0
            (Buffer.length buf))
     with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring t.fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  match go 0 with
  | () -> Ok ()
  | exception Unix.Unix_error _ ->
    close t;
    transport_error "write failed"

let error_fields fields =
  let get c = Option.value ~default:"" (List.assoc_opt c fields) in
  (get 'C', get 'M')

(* Consume backend frames until ReadyForQuery, folding what we saw.
   An ErrorResponse is remembered and reported after the Ready (the
   protocol always sends Ready after a non-fatal error); EOF with a
   pending error reports that error (the FATAL case: the server
   closes instead of returning to idle). *)
let drain_until_ready t =
  let columns = ref [] in
  let rows = ref [] in
  let tag = ref "" in
  let err = ref None in
  let rec go () =
    match Wire.read_backend t.reader with
    | Ok (Wire.B_ready _) -> (
      match !err with
      | Some e -> Error e
      | None ->
        Ok { columns = !columns; rows = List.rev !rows; tag = !tag })
    | Ok (Wire.B_row_description cols) ->
      columns := cols;
      go ()
    | Ok (Wire.B_data_row vs) ->
      rows := vs :: !rows;
      go ()
    | Ok (Wire.B_command_complete t') ->
      tag := t';
      go ()
    | Ok Wire.B_empty_query ->
      tag := "";
      go ()
    | Ok (Wire.B_error fields) ->
      err := Some (error_fields fields);
      go ()
    | Ok (Wire.B_auth_ok | Wire.B_parameter_status _ | Wire.B_key_data _)
      ->
      go ()
    | Ok (Wire.B_other _) -> go ()
    | Error e -> (
      close t;
      match !err with
      | Some e -> Error e
      | None -> transport_error (Wire.error_to_string e))
  in
  go ()

let connect ?(timeout_ms = 5_000) ?(user = "sql2xq") ?(database = "demo")
    ~host ~port () =
  match Unix.socket PF_INET SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    transport_error (Unix.error_message e)
  | fd -> (
    let s = float_of_int (max 1 timeout_ms) /. 1000.0 in
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     with Unix.Unix_error _ -> ());
    let addr =
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (ip, port)
    in
    match Unix.connect fd addr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      transport_error (Unix.error_message e)
    | () -> (
      let t = { fd; reader = Wire.Reader.of_fd fd; alive = true } in
      let buf = Buffer.create 64 in
      Wire.startup_message buf
        [ ("user", user); ("database", database) ];
      match write_all t (Buffer.contents buf) with
      | Error e -> Error e
      | Ok () -> (
        match drain_until_ready t with
        | Ok _greeting -> Ok t
        | Error e ->
          close t;
          Error e)))

let query t sql =
  if not t.alive then transport_error "connection already closed"
  else
    let buf = Buffer.create (String.length sql + 16) in
    Wire.query_message buf sql;
    match write_all t (Buffer.contents buf) with
    | Error e -> Error e
    | Ok () -> drain_until_ready t
