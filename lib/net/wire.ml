(* PostgreSQL v3 simple-query wire codec.

   Decoding is hardened by construction: the reader owns every length
   check, a frame's declared size is validated against a hard cap
   before any allocation, and every failure mode — truncation, a
   garbage length, an unknown type byte — is an [error] value the
   server maps to a session-scoped 08P01.  Nothing in this module
   raises on malformed input; the only exceptions that can escape are
   [Unix.Unix_error] from the byte source, and [of_fd] folds those
   into [Eof]/[Timeout] too. *)

module Sql_type = Aqua_relational.Sql_type
module Value = Aqua_relational.Value
module Outcol = Aqua_translator.Outcol

type frontend =
  | Startup of (string * string) list
  | Ssl_request
  | Gss_request
  | Cancel_request
  | Query of string
  | Terminate
  | Other of char * string

type error =
  | Eof
  | Timeout
  | Oversized of { kind : string; length : int; max : int }
  | Malformed of string

let error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "socket deadline expired"
  | Oversized { kind; length; max } ->
    Printf.sprintf "%s frame of %d bytes exceeds the %d-byte cap" kind
      length max
  | Malformed m -> "malformed frame: " ^ m

(* protocol constants *)
let protocol_v3 = 196608 (* 3 << 16 *)
let ssl_request_code = 80877103
let gss_request_code = 80877104
let cancel_request_code = 80877102

module Reader = struct
  type t = {
    read : bytes -> int -> int -> int;
        (* Unix.read contract: 0 = EOF; may raise Unix_error *)
    max_frame : int;
  }

  let default_max_frame = 1 lsl 20

  let of_fd ?(max_frame = default_max_frame) fd =
    { read = (fun b off len -> Unix.read fd b off len); max_frame }

  let of_string ?(max_frame = default_max_frame) s =
    let pos = ref 0 in
    let read b off len =
      let n = min len (String.length s - !pos) in
      if n <= 0 then 0
      else begin
        Bytes.blit_string s !pos b off n;
        pos := !pos + n;
        n
      end
    in
    { read; max_frame }

  (* Exactly [len] bytes, or the error that stopped us.  A partial
     frame followed by EOF is [Eof] — truncation and a closed peer are
     indistinguishable on a stream socket, and both end the session. *)
  let read_exact t len =
    let buf = Bytes.create len in
    let rec go off =
      if off = len then Ok (Bytes.unsafe_to_string buf)
      else
        match t.read buf off (len - off) with
        | 0 -> Error Eof
        | n -> go (off + n)
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
          ->
          Error Timeout
        | exception Unix.Unix_error _ -> Error Eof
    in
    go 0

  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

  let be32 s off =
    (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]

  (* NUL-separated fields of a startup payload: key/value pairs until
     the empty-string terminator; trailing garbage is ignored (be
     liberal in what we accept — the pairs we did parse are real). *)
  let startup_params payload =
    let fields = String.split_on_char '\000' payload in
    let rec pairs acc = function
      | "" :: _ | [] -> List.rev acc
      | [ _lone ] -> List.rev acc
      | k :: v :: rest -> pairs ((k, v) :: acc) rest
    in
    pairs [] fields

  let read_startup t =
    let* header = read_exact t 8 in
    let length = be32 header 0 in
    let code = be32 header 4 in
    if length < 8 then
      Error (Malformed (Printf.sprintf "startup length %d < 8" length))
    else if length - 8 > t.max_frame then
      Error (Oversized { kind = "startup"; length; max = t.max_frame })
    else
      let* payload = read_exact t (length - 8) in
      if code = ssl_request_code then Ok Ssl_request
      else if code = gss_request_code then Ok Gss_request
      else if code = cancel_request_code then Ok Cancel_request
      else if code = protocol_v3 then Ok (Startup (startup_params payload))
      else
        Error
          (Malformed
             (Printf.sprintf "unknown startup protocol %d (want 3.0)" code))

  (* Query text: up to the first NUL (the client appends one); a
     missing terminator is tolerated, the payload is the query. *)
  let cstring payload =
    match String.index_opt payload '\000' with
    | Some i -> String.sub payload 0 i
    | None -> payload

  let read_message t =
    let* tag = read_exact t 1 in
    let tag = tag.[0] in
    let* header = read_exact t 4 in
    let length = be32 header 0 in
    if length < 4 then
      Error
        (Malformed (Printf.sprintf "message %C length %d < 4" tag length))
    else if length - 4 > t.max_frame then
      Error
        (Oversized
           { kind = Printf.sprintf "%C" tag; length; max = t.max_frame })
    else
      let* payload = read_exact t (length - 4) in
      match tag with
      | 'Q' -> Ok (Query (cstring payload))
      | 'X' -> Ok Terminate
      | c when (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ->
        Ok (Other (c, payload))
      | c ->
        Error (Malformed (Printf.sprintf "unknown message type byte %C" c))
end

(* ------------------------------------------------------------------ *)
(* Encoders: every frame is appended whole to a Buffer.t, so the
   sender flushes one write per batch. *)

let add_be32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_be16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_cstring buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\000'

(* [frame buf 'T' fill]: type byte, then a length prefix covering the
   payload [fill] writes (plus the prefix itself, per the protocol). *)
let frame buf tag fill =
  Buffer.add_char buf tag;
  let body = Buffer.create 64 in
  fill body;
  add_be32 buf (Buffer.length body + 4);
  Buffer.add_buffer buf body

(* frontend: the untyped startup frame, then the typed ones *)

let startup_message buf params =
  let body = Buffer.create 64 in
  add_be32 body protocol_v3;
  List.iter
    (fun (k, v) ->
      add_cstring body k;
      add_cstring body v)
    params;
  Buffer.add_char body '\000';
  add_be32 buf (Buffer.length body + 4);
  Buffer.add_buffer buf body

let query_message buf sql = frame buf 'Q' (fun b -> add_cstring b sql)
let terminate_message buf = frame buf 'X' (fun _ -> ())

let authentication_ok buf = frame buf 'R' (fun b -> add_be32 b 0)

let parameter_status buf key value =
  frame buf 'S' (fun b ->
      add_cstring b key;
      add_cstring b value)

let backend_key_data buf ~pid ~secret =
  frame buf 'K' (fun b ->
      add_be32 b pid;
      add_be32 b secret)

let ready_for_query buf = frame buf 'Z' (fun b -> Buffer.add_char b 'I')

(* PostgreSQL catalog OIDs for the SQL-92 types the translator can
   infer, so a real client library recognizes the columns. *)
let type_oid = function
  | Sql_type.Smallint -> 21
  | Sql_type.Integer -> 23
  | Sql_type.Bigint -> 20
  | Sql_type.Decimal _ -> 1700
  | Sql_type.Real -> 700
  | Sql_type.Double -> 701
  | Sql_type.Char _ -> 1042
  | Sql_type.Varchar _ -> 1043
  | Sql_type.Boolean -> 16
  | Sql_type.Date -> 1082
  | Sql_type.Time -> 1083
  | Sql_type.Timestamp -> 1114

let row_description buf (cols : Outcol.t list) =
  frame buf 'T' (fun b ->
      add_be16 b (List.length cols);
      List.iter
        (fun (c : Outcol.t) ->
          add_cstring b c.Outcol.label;
          add_be32 b 0 (* table OID: not a catalog table *);
          add_be16 b 0 (* attribute number *);
          add_be32 b (type_oid c.Outcol.ty);
          add_be16 b 0xffff (* typlen -1: variable *);
          add_be32 b 0xffffffff (* typmod -1 *);
          add_be16 b 0 (* format: text *))
        cols)

let data_row buf values =
  frame buf 'D' (fun b ->
      add_be16 b (Array.length values);
      Array.iter
        (fun v ->
          match v with
          | Value.Null -> add_be32 b 0xffffffff (* -1: SQL NULL *)
          | v ->
            let s = Value.to_string v in
            add_be32 b (String.length s);
            Buffer.add_string b s)
        values)

let command_complete buf tag = frame buf 'C' (fun b -> add_cstring b tag)
let empty_query_response buf = frame buf 'I' (fun _ -> ())

let error_response buf ?(severity = "ERROR") ~sqlstate message =
  frame buf 'E' (fun b ->
      Buffer.add_char b 'S';
      add_cstring b severity;
      Buffer.add_char b 'V';
      add_cstring b severity;
      Buffer.add_char b 'C';
      add_cstring b sqlstate;
      Buffer.add_char b 'M';
      add_cstring b message;
      Buffer.add_char b '\000' (* field-list terminator *))

let ssl_refused buf = Buffer.add_char buf 'N'

(* ------------------------------------------------------------------ *)
(* Backend decoder, for the in-repo client side. *)

type backend =
  | B_auth_ok
  | B_parameter_status of string * string
  | B_key_data of { pid : int; secret : int }
  | B_ready of char
  | B_row_description of string list
  | B_data_row of string option list
  | B_command_complete of string
  | B_empty_query
  | B_error of (char * string) list
  | B_other of char * string

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* signed big-endian 32-bit read out of a decoded payload *)
let sbe32 s off =
  let v = Reader.be32 s off in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let split_cstrings s =
  match String.split_on_char '\000' s with
  | [] -> []
  | parts -> (
    (* a well-formed field list ends with NUL, leaving one "" *)
    match List.rev parts with
    | "" :: rest -> List.rev rest
    | _ -> parts)

let decode_error_fields payload =
  let rec go acc off =
    if off >= String.length payload || payload.[off] = '\000' then
      List.rev acc
    else
      let code = payload.[off] in
      let value_end =
        match String.index_from_opt payload (off + 1) '\000' with
        | Some i -> i
        | None -> String.length payload
      in
      let value = String.sub payload (off + 1) (value_end - off - 1) in
      go ((code, value) :: acc) (value_end + 1)
  in
  go [] 0

let decode_row_description payload =
  if String.length payload < 2 then Error (Malformed "T frame too short")
  else
    let n = (Char.code payload.[0] lsl 8) lor Char.code payload.[1] in
    let rec field acc off = function
      | 0 -> Ok (List.rev acc)
      | k ->
        if off >= String.length payload then
          Error (Malformed "T frame truncated")
        else (
          match String.index_from_opt payload off '\000' with
          | None -> Error (Malformed "T column name unterminated")
          | Some nul ->
            let name = String.sub payload off (nul - off) in
            (* skip the 18 fixed descriptor bytes after the name *)
            field (name :: acc) (nul + 1 + 18) (k - 1))
    in
    field [] 2 n

let decode_data_row payload =
  if String.length payload < 2 then Error (Malformed "D frame too short")
  else
    let n = (Char.code payload.[0] lsl 8) lor Char.code payload.[1] in
    let rec value acc off = function
      | 0 -> Ok (List.rev acc)
      | k ->
        if off + 4 > String.length payload then
          Error (Malformed "D frame truncated")
        else
          let len = sbe32 payload off in
          if len = -1 then value (None :: acc) (off + 4) (k - 1)
          else if len < 0 || off + 4 + len > String.length payload then
            Error (Malformed "D value length out of range")
          else
            value
              (Some (String.sub payload (off + 4) len) :: acc)
              (off + 4 + len) (k - 1)
    in
    value [] 2 n

let read_backend (r : Reader.t) =
  let* tag = Reader.read_exact r 1 in
  let tag = tag.[0] in
  if tag = 'N' then Ok (B_other ('N', "")) (* SSL refusal byte *)
  else
    let* header = Reader.read_exact r 4 in
    let length = Reader.be32 header 0 in
    if length < 4 then Error (Malformed "backend length < 4")
    else if length - 4 > r.Reader.max_frame then
      Error
        (Oversized
           { kind = Printf.sprintf "%C" tag; length; max = r.Reader.max_frame })
    else
      let* payload = Reader.read_exact r (length - 4) in
      match tag with
      | 'R' -> Ok B_auth_ok
      | 'S' -> (
        match split_cstrings payload with
        | [ k; v ] -> Ok (B_parameter_status (k, v))
        | _ -> Error (Malformed "S frame fields"))
      | 'K' ->
        if String.length payload <> 8 then
          Error (Malformed "K frame size")
        else
          Ok
            (B_key_data
               { pid = Reader.be32 payload 0; secret = Reader.be32 payload 4 })
      | 'Z' ->
        if String.length payload <> 1 then
          Error (Malformed "Z frame size")
        else Ok (B_ready payload.[0])
      | 'T' ->
        let* cols = decode_row_description payload in
        Ok (B_row_description cols)
      | 'D' ->
        let* values = decode_data_row payload in
        Ok (B_data_row values)
      | 'C' -> Ok (B_command_complete (Reader.cstring payload))
      | 'I' -> Ok B_empty_query
      | 'E' -> Ok (B_error (decode_error_fields payload))
      | c -> Ok (B_other (c, payload))

let error_field b code =
  match b with
  | B_error fields -> List.assoc_opt code fields
  | _ -> None
