(* The wire-protocol front end: accept loop, bounded connection queue,
   worker domains, graceful drain.

   The failure philosophy mirrors the rest of the stack: every
   overload or fault becomes a *typed, bounded* outcome — a SQLSTATE
   on the wire, a counter in telemetry — and the blast radius of any
   single connection is that connection.  A worker can never die from
   a session (catch-all at the session boundary), the accept loop can
   never block on a client (sheds are written under the same socket
   deadlines as everything else), and memory per session is bounded by
   the frame cap plus one buffered response. *)

module Budget = Aqua_resilience.Budget
module Sqlstate = Aqua_resilience.Sqlstate
module Breaker = Aqua_resilience.Breaker
module Failpoint = Aqua_resilience.Failpoint
module Mcore = Aqua_multicore.Mcore
module T = Aqua_core.Telemetry
module Connection = Aqua_driver.Connection
module Session_pool = Aqua_driver.Session_pool
module Result_set = Aqua_driver.Result_set
module Server = Aqua_dsp.Server
module Stats = Aqua_obs.Stats
module Recorder = Aqua_obs.Recorder
module Expose = Aqua_obs.Expose
module Histogram = Aqua_obs.Histogram
module Fingerprint = Aqua_obs.Fingerprint

type config = {
  host : string;
  port : int;
  pool_size : int;
  workers : int;
  queue_depth : int;
  borrow_wait_ms : int;
  io_timeout_ms : int;
  drain_timeout_ms : int;
  max_frame : int;
  limits : Budget.limits;
  trace_sample : float;
  admin_port : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5433;
    pool_size = 8;
    workers = 0;
    queue_depth = 16;
    borrow_wait_ms = 1_000;
    io_timeout_ms = 5_000;
    drain_timeout_ms = 2_000;
    max_frame = 1 lsl 20;
    limits = Budget.no_limits;
    trace_sample = 0.0;
    admin_port = None;
  }

type summary = {
  connections : int;
  queries : int;
  shed_queue : int;
  shed_drain : int;
  shed_breaker : int;
  protocol_errors : int;
  io_timeouts : int;
}

type server = {
  conn : Connection.t;
  cfg : config;
  nworkers : int;
  inline : bool;  (* shim mode: serve on the accept loop, no queue *)
  pool : Session_pool.t;
  listener : Unix.file_descr;
  bound_port : int;
  queue : Unix.file_descr Queue.t;
  qlock : Mcore.Mutex.t;
  qcond : Mcore.Condition.t;
  drain_flag : bool Atomic.t;
  in_flight : int Atomic.t;  (* queries between admission and response *)
  live : (Unix.file_descr, unit) Hashtbl.t;  (* sessions being served *)
  llock : Mcore.Mutex.t;
  hist_lock : Mcore.Mutex.t;  (* per-session histogram merges *)
  conn_seq : int Atomic.t;
  (* in-flight query registry for aqua_stat_activity / statusz: one
     entry per session pid while its query runs *)
  active : (int, string * string * int64 * string) Hashtbl.t;
      (* pid -> (fp digest, shape, start_ns, trace id) *)
  alock : Mcore.Mutex.t;
  trace_seq : int Atomic.t;
  trace_seed : int64;  (* start-time salt so restarts mint fresh ids *)
  dump_request : bool Atomic.t;  (* SIGUSR1 -> recorder dump, out of band *)
  admin : Admin.t option ref;
  s_connections : int Atomic.t;
  s_queries : int Atomic.t;
  s_shed_queue : int Atomic.t;
  s_shed_drain : int Atomic.t;
  s_shed_breaker : int Atomic.t;
  s_protocol_errors : int Atomic.t;
  s_io_timeouts : int Atomic.t;
  snapshot_sink : (string -> unit) option;
}

type t = {
  srv : server;
  mutable domains : unit Mcore.Domains.handle list;
  mutable drained : bool;
  dlock : Mcore.Mutex.t;
}

(* the summary atomics count even with telemetry disabled; the
   telemetry counters feed exposition when it is enabled *)
let bump a c =
  Atomic.incr a;
  T.incr c

let read_summary srv =
  {
    connections = Atomic.get srv.s_connections;
    queries = Atomic.get srv.s_queries;
    shed_queue = Atomic.get srv.s_shed_queue;
    shed_drain = Atomic.get srv.s_shed_drain;
    shed_breaker = Atomic.get srv.s_shed_breaker;
    protocol_errors = Atomic.get srv.s_protocol_errors;
    io_timeouts = Atomic.get srv.s_io_timeouts;
  }

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

exception Session_end
(* internal control flow: this wire session is over (for whatever
   reason); never escapes a session boundary *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let set_deadlines fd ms =
  let s = float_of_int (max 1 ms) /. 1000.0 in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
   with Unix.Unix_error _ -> ());
  try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  with Unix.Unix_error _ -> ()

(* One buffered response batch, one write.  Every failure ends the
   session: a send-deadline expiry is counted, a vanished peer and an
   injected net.write fault are not worth distinguishing. *)
let flush srv fd buf =
  let s = Buffer.contents buf in
  Buffer.clear buf;
  let write_loop () =
    Failpoint.hit "net.write";
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write_substring fd s off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
    in
    go 0
  in
  match write_loop () with
  | () -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
    bump srv.s_io_timeouts T.c_net_io_timeouts;
    raise Session_end
  | exception Unix.Unix_error _ -> raise Session_end
  | exception Failpoint.Injected _ -> raise Session_end

let send_error srv fd buf ?severity ~sqlstate msg =
  Wire.error_response buf ?severity ~sqlstate msg;
  flush srv fd buf

(* Refuse a connection that never got a session: best-effort read of
   the startup frame (answering an SSL/GSS probe so a real client
   library reaches its error-reading state), then one FATAL error.
   Bounded by the socket deadlines like everything else. *)
let refuse srv fd ~sqlstate msg =
  let buf = Buffer.create 128 in
  (try
     let reader = Wire.Reader.of_fd ~max_frame:srv.cfg.max_frame fd in
     (match Wire.Reader.read_startup reader with
     | Ok (Wire.Ssl_request | Wire.Gss_request) ->
       Wire.ssl_refused buf;
       flush srv fd buf;
       ignore (Wire.Reader.read_startup reader)
     | _ -> ());
     send_error srv fd buf ~severity:"FATAL" ~sqlstate msg
   with Session_end | Unix.Unix_error _ -> ());
  close_quiet fd

(* ------------------------------------------------------------------ *)
(* Trace context *)

(* splitmix64 finalizer: a cheap, well-mixed 64-bit id from a counter
   xor a start-time seed — no dependency on Random's global state. *)
let splitmix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mint_trace srv =
  Printf.sprintf "%016Lx"
    (splitmix64
       (Int64.logxor srv.trace_seed
          (Int64.of_int (1 + Atomic.fetch_and_add srv.trace_seq 1))))

let trace_id_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

(* A leading [/*traceparent:<id>*/] comment carries the client's trace
   id.  It is stripped from the SQL either way — the translator's
   parser has no comment syntax, and the translation LRU must key on
   the bare statement so a thousand distinct trace ids share one cache
   entry.  (The fingerprint normalizer already drops comments
   lexically, so shapes were never at risk.)  An id that is empty,
   over 64 chars, or outside [A-Za-z0-9_-] is ignored and the server
   mints its own. *)
let extract_traceparent sql =
  let n = String.length sql in
  let i = ref 0 in
  while
    !i < n
    && (sql.[!i] = ' ' || sql.[!i] = '\t' || sql.[!i] = '\n'
       || sql.[!i] = '\r')
  do
    incr i
  done;
  let prefix = "/*traceparent:" in
  let plen = String.length prefix in
  if !i + plen <= n && String.sub sql !i plen = prefix then begin
    let rec find_close j =
      if j + 1 >= n then None
      else if sql.[j] = '*' && sql.[j + 1] = '/' then Some j
      else find_close (j + 1)
    in
    match find_close (!i + plen) with
    | None -> (None, sql)
    | Some j ->
      let id = String.trim (String.sub sql (!i + plen) (j - !i - plen)) in
      let rest = String.sub sql (j + 2) (n - j - 2) in
      let ok =
        id <> "" && String.length id <= 64
        && String.for_all trace_id_char_ok id
      in
      ((if ok then Some id else None), rest)
  end
  else (None, sql)

(* Head-based probabilistic sampling, deterministic in the trace id
   (FNV-1a 64 of the id against the rate): retries of the same trace
   land on the same side of the coin, and a client-supplied id decides
   its fate identically on every server. *)
let sample_decision rate id =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else begin
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
               0x100000001b3L)
      id;
    let bits = Int64.to_int (Int64.logand !h 0x3fffffffL) in
    float_of_int bits /. 1073741824.0 < rate
  end

(* ------------------------------------------------------------------ *)
(* The wire session *)

let breaker_rejecting srv =
  List.exists Breaker.rejecting (Server.breakers (Connection.server srv.conn))

let greet srv fd buf ~sid =
  Wire.authentication_ok buf;
  Wire.parameter_status buf "server_version" "15.0";
  Wire.parameter_status buf "server_encoding" "UTF8";
  Wire.parameter_status buf "client_encoding" "UTF8";
  Wire.backend_key_data buf ~pid:(sid land 0x3fffffff)
    ~secret:(sid * 0x9e3779b1 land 0x3fffffff);
  Wire.ready_for_query buf;
  flush srv fd buf

(* Answer an aqua_stat_* virtual table from the live registries: no
   translation, no pool session, no budget — a saturated or broken
   data plane is exactly when the operator needs these to answer. *)
let answer_stat srv fd buf table =
  bump srv.s_queries T.c_net_queries;
  T.incr T.c_net_stat_queries;
  let cols, rows =
    match (table : Stat_tables.table) with
    | Stat_tables.Statements -> Stat_tables.statements ()
    | Stat_tables.Activity ->
      let now = T.now_ns () in
      let entries =
        Mcore.Mutex.protect srv.alock (fun () ->
            Hashtbl.fold
              (fun pid (fp, shape, start_ns, trace) acc ->
                {
                  Stat_tables.pid;
                  query = shape;
                  fingerprint = fp;
                  elapsed_ms =
                    Int64.to_float (Int64.sub now start_ns) /. 1e6;
                  trace_id = trace;
                }
                :: acc)
              srv.active [])
      in
      Stat_tables.activity entries
    | Stat_tables.Breakers ->
      Stat_tables.breakers (Server.breakers (Connection.server srv.conn))
  in
  Wire.row_description buf cols;
  List.iter (fun r -> Wire.data_row buf r) rows;
  Wire.command_complete buf (Printf.sprintf "SELECT %d" (List.length rows));
  Wire.ready_for_query buf;
  flush srv fd buf

let handle_query srv fd buf hist ~sid sql =
  Failpoint.hit "net.session";
  if String.trim sql = "" then begin
    Wire.empty_query_response buf;
    Wire.ready_for_query buf;
    flush srv fd buf
  end
  else
    match Stat_tables.recognize sql with
    | Some table -> answer_stat srv fd buf table
    | None ->
  if breaker_rejecting srv then begin
    (* fast backpressure: the backend is known-bad and inside its
       cooldown, so fail in microseconds instead of burning a pool
       session; once the cooldown elapses [Breaker.rejecting] goes
       false and the half-open trial flows through normally *)
    bump srv.s_shed_breaker T.c_net_shed_breaker;
    send_error srv fd buf ~sqlstate:Sqlstate.connection_failure
      "backend circuit open; retry after cooldown";
    Wire.ready_for_query buf;
    flush srv fd buf
  end
  else begin
    (* in_flight covers execution AND the response write, so the drain
       sequence (which waits for in_flight = 0 before shutting down
       idle sockets) can never cut off an admitted query's response *)
    Atomic.incr srv.in_flight;
    Fun.protect ~finally:(fun () -> Atomic.decr srv.in_flight)
    @@ fun () ->
    (* trace context: a client-supplied /*traceparent:…*/ id (stripped
       from the SQL) or a freshly minted one, with the head-based
       sampling decision; the DLS context travels through the session
       pool, the driver and every span below without threading *)
    let client_id, sql = extract_traceparent sql in
    let trace_id =
      match client_id with Some id -> id | None -> mint_trace srv
    in
    let sampled = sample_decision srv.cfg.trace_sample trace_id in
    if sampled then T.incr T.c_net_traces_sampled;
    T.with_trace ~id:trace_id ~sampled
    @@ fun () ->
    let fp_digest, fp_shape = Fingerprint.fingerprint sql in
    let t0 = T.now_ns () in
    Mcore.Mutex.protect srv.alock (fun () ->
        Hashtbl.replace srv.active sid (fp_digest, fp_shape, t0, trace_id));
    Fun.protect
      ~finally:(fun () ->
        Mcore.Mutex.protect srv.alock (fun () ->
            Hashtbl.remove srv.active sid))
    @@ fun () ->
    T.with_span "net.query"
    @@ fun () ->
    match
      Session_pool.execute ~wait_ms:srv.cfg.borrow_wait_ms srv.pool sql
    with
    | rs ->
      bump srv.s_queries T.c_net_queries;
      Histogram.record hist (Int64.sub (T.now_ns ()) t0);
      let ncols = Result_set.column_count rs in
      Wire.row_description buf (Result_set.columns rs);
      let count = ref 0 in
      while Result_set.next rs do
        incr count;
        Wire.data_row buf
          (Array.init ncols (fun i -> Result_set.get_value rs (i + 1)))
      done;
      Wire.command_complete buf (Printf.sprintf "SELECT %d" !count);
      Wire.ready_for_query buf;
      flush srv fd buf
    | exception Sqlstate.Error e ->
      (* a typed failure (translation error, budget trip, pool
         exhaustion 53300, breaker 08004, …) costs one statement, not
         the session *)
      send_error srv fd buf ~sqlstate:e.Sqlstate.sqlstate
        e.Sqlstate.message;
      Wire.ready_for_query buf;
      flush srv fd buf
    | exception Failpoint.Injected _ ->
      send_error srv fd buf ~sqlstate:Sqlstate.connection_failure
        "injected backend fault";
      Wire.ready_for_query buf;
      flush srv fd buf
    | exception e ->
      send_error srv fd buf ~sqlstate:Sqlstate.internal_error
        (Printexc.to_string e);
      Wire.ready_for_query buf;
      flush srv fd buf
  end

let drain_error srv fd buf ~sqlstate msg =
  bump srv.s_shed_drain T.c_net_shed_drain;
  (try send_error srv fd buf ~severity:"FATAL" ~sqlstate msg
   with Session_end -> ());
  raise Session_end

let serve_session srv fd =
  let reader = Wire.Reader.of_fd ~max_frame:srv.cfg.max_frame fd in
  let buf = Buffer.create 1024 in
  let hist = Histogram.create () in
  let merge () =
    if not (Histogram.is_empty hist) then
      Mcore.Mutex.protect srv.hist_lock (fun () ->
          Histogram.merge_into ~into:(Stats.histogram "net.query") hist)
  in
  Fun.protect ~finally:merge @@ fun () ->
  (* startup: answer the SSL/GSS probes, then expect Startup *)
  let rec startup attempts =
    if attempts > 4 then raise Session_end;
    match Wire.Reader.read_startup reader with
    | Ok (Wire.Ssl_request | Wire.Gss_request) ->
      Wire.ssl_refused buf;
      flush srv fd buf;
      startup (attempts + 1)
    | Ok Wire.Cancel_request -> raise Session_end
    | Ok (Wire.Startup _params) -> ()
    | Ok (Wire.Query _ | Wire.Terminate | Wire.Other _) ->
      (* Reader.read_startup never produces these *)
      raise Session_end
    | Error ((Wire.Oversized _ | Wire.Malformed _) as e) ->
      bump srv.s_protocol_errors T.c_net_protocol_errors;
      (try
         send_error srv fd buf ~severity:"FATAL"
           ~sqlstate:Sqlstate.protocol_violation (Wire.error_to_string e)
       with Session_end -> ());
      raise Session_end
    | Error Wire.Timeout ->
      bump srv.s_io_timeouts T.c_net_io_timeouts;
      raise Session_end
    | Error Wire.Eof -> raise Session_end
  in
  startup 0;
  if Atomic.get srv.drain_flag then
    drain_error srv fd buf ~sqlstate:Sqlstate.cannot_connect_now
      "the database system is shutting down";
  let sid = 1 + Atomic.fetch_and_add srv.conn_seq 1 in
  greet srv fd buf ~sid;
  let rec loop () =
    if Atomic.get srv.drain_flag then
      drain_error srv fd buf ~sqlstate:Sqlstate.admin_shutdown
        "terminating connection: server is draining";
    Failpoint.hit "net.read";
    match Wire.Reader.read_message reader with
    | Ok (Wire.Query sql) ->
      (* a live session that raced the drain flag past the loop head
         still refuses: nothing new is admitted once draining *)
      if Atomic.get srv.drain_flag then
        drain_error srv fd buf ~sqlstate:Sqlstate.admin_shutdown
          "terminating connection: server is draining"
      else begin
        handle_query srv fd buf hist ~sid sql;
        loop ()
      end
    | Ok Wire.Terminate -> ()
    | Ok (Wire.Other (c, _)) ->
      (* a well-framed message we do not implement is recoverable:
         complain and keep the session *)
      bump srv.s_protocol_errors T.c_net_protocol_errors;
      send_error srv fd buf ~sqlstate:Sqlstate.protocol_violation
        (Printf.sprintf "unimplemented frontend message %C" c);
      Wire.ready_for_query buf;
      flush srv fd buf;
      loop ()
    | Ok (Wire.Startup _ | Wire.Ssl_request | Wire.Gss_request
         | Wire.Cancel_request) ->
      (* Reader.read_message never produces these *)
      raise Session_end
    | Error Wire.Eof ->
      (* closed peer, or the drain sequence shut this socket down *)
      ()
    | Error Wire.Timeout ->
      if Atomic.get srv.drain_flag then
        drain_error srv fd buf ~sqlstate:Sqlstate.admin_shutdown
          "terminating connection: server is draining"
      else begin
        bump srv.s_io_timeouts T.c_net_io_timeouts;
        raise Session_end
      end
    | Error ((Wire.Oversized _ | Wire.Malformed _) as e) ->
      (* a broken or hostile byte stream is session-scoped: one FATAL
         08P01 and this socket dies; the server and every other
         session are untouched *)
      bump srv.s_protocol_errors T.c_net_protocol_errors;
      (try
         send_error srv fd buf ~severity:"FATAL"
           ~sqlstate:Sqlstate.protocol_violation (Wire.error_to_string e)
       with Session_end -> ());
      raise Session_end
  in
  loop ()

let serve_connection srv fd =
  Mcore.Mutex.protect srv.llock (fun () -> Hashtbl.replace srv.live fd ());
  (try
     Failpoint.hit "net.accept";
     serve_session srv fd
   with
  | Session_end | Failpoint.Injected _ | Unix.Unix_error _ -> ()
  | _ ->
    (* nothing a session does may kill its worker *)
    ());
  Mcore.Mutex.protect srv.llock (fun () -> Hashtbl.remove srv.live fd);
  close_quiet fd

(* ------------------------------------------------------------------ *)
(* Admission and the accept loop *)

let enqueue srv fd =
  let admitted =
    Mcore.Mutex.protect srv.qlock (fun () ->
        if Queue.length srv.queue >= srv.cfg.queue_depth then false
        else begin
          Queue.push fd srv.queue;
          Mcore.Condition.signal srv.qcond;
          true
        end)
  in
  if not admitted then begin
    (* admission control: refuse before doing any work — the client
       gets a typed 53300 in one round trip instead of a timeout *)
    bump srv.s_shed_queue T.c_net_shed_queue;
    refuse srv fd ~sqlstate:Sqlstate.too_many_connections
      (Printf.sprintf "connection queue full (%d waiting)"
         srv.cfg.queue_depth)
  end

let admit srv fd =
  bump srv.s_connections T.c_net_connections;
  set_deadlines fd srv.cfg.io_timeout_ms;
  if Atomic.get srv.drain_flag then begin
    bump srv.s_shed_drain T.c_net_shed_drain;
    refuse srv fd ~sqlstate:Sqlstate.cannot_connect_now
      "the database system is shutting down"
  end
  else if srv.inline then serve_connection srv fd
  else enqueue srv fd

let accept_loop srv =
  let rec go () =
    if not (Atomic.get srv.drain_flag) then begin
      (* SIGUSR1 handlers only set a flag: the dump itself runs here,
         on the accept domain, where no recorder or registry lock can
         already be held (a handler interrupting its own domain
         mid-dump would deadlock on the non-reentrant ring mutex) *)
      if Atomic.exchange srv.dump_request false then
        ignore (Recorder.dump_to_sink ~reason:"signal" ());
      (match Unix.select [ srv.listener ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept srv.listener with
        | fd, _addr -> admit srv fd
        | exception
            Unix.Unix_error
              ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED | EBADF), _, _)
          ->
          ())
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ());
      go ()
    end
  in
  go ()

(* Workers block on the queue condition; a release or the drain
   broadcast wakes them.  Once draining, anything still queued is
   refused (57P03) and the worker exits when the queue is dry. *)
let pop srv =
  Mcore.Mutex.lock srv.qlock;
  let rec go () =
    if not (Queue.is_empty srv.queue) then begin
      let fd = Queue.pop srv.queue in
      Mcore.Mutex.unlock srv.qlock;
      Some fd
    end
    else if Atomic.get srv.drain_flag then begin
      Mcore.Mutex.unlock srv.qlock;
      None
    end
    else begin
      Mcore.Condition.wait srv.qcond srv.qlock;
      go ()
    end
  in
  go ()

let worker srv =
  let rec go () =
    match pop srv with
    | None -> ()
    | Some fd ->
      (if Atomic.get srv.drain_flag then begin
         bump srv.s_shed_drain T.c_net_shed_drain;
         refuse srv fd ~sqlstate:Sqlstate.cannot_connect_now
           "the database system is shutting down"
       end
       else serve_connection srv fd);
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The admin plane: /metrics, /healthz, /statusz *)

let queue_length srv =
  Mcore.Mutex.protect srv.qlock (fun () -> Queue.length srv.queue)

let json_str = T.json_escape

(* Health is about admission: draining or a full connection queue
   means new work will be refused, so a load balancer should stop
   sending it (503); anything else is 200 with the load numbers. *)
let healthz srv =
  let pool = Session_pool.stats srv.pool in
  let q = queue_length srv in
  let body status =
    Printf.sprintf
      "{\"status\":\"%s\",\"draining\":%b,\"queue\":%d,\"queue_depth\":%d,\"pool_in_use\":%d,\"pool_capacity\":%d,\"in_flight\":%d}"
      status
      (Atomic.get srv.drain_flag)
      q srv.cfg.queue_depth pool.Session_pool.in_use
      pool.Session_pool.capacity (Atomic.get srv.in_flight)
  in
  if Atomic.get srv.drain_flag then Admin.json 503 (body "draining")
  else if q >= srv.cfg.queue_depth then Admin.json 503 (body "saturated")
  else Admin.json 200 (body "ok")

let statusz srv =
  let now = T.now_ns () in
  let sessions = Mcore.Mutex.protect srv.llock (fun () -> Hashtbl.length srv.live) in
  let inflight =
    Mcore.Mutex.protect srv.alock (fun () ->
        Hashtbl.fold
          (fun pid (fp, shape, start_ns, trace) acc ->
            (pid, fp, shape, Int64.sub now start_ns, trace) :: acc)
          srv.active [])
  in
  let inflight = List.sort compare inflight in
  let pool = Session_pool.stats srv.pool in
  let breakers = Server.breakers (Connection.server srv.conn) in
  let s = read_summary srv in
  Printf.sprintf
    "{\"draining\":%b,\"active_sessions\":%d,\"queue\":%d,\"in_flight\":[%s],\"pool\":{\"capacity\":%d,\"in_use\":%d,\"borrows\":%d,\"rejections\":%d,\"waits\":%d,\"peak_in_use\":%d},\"breakers\":[%s],\"summary\":{\"connections\":%d,\"queries\":%d,\"shed_queue\":%d,\"shed_drain\":%d,\"shed_breaker\":%d,\"protocol_errors\":%d,\"io_timeouts\":%d}}"
    (Atomic.get srv.drain_flag) sessions (queue_length srv)
    (String.concat ","
       (List.map
          (fun (pid, fp, shape, elapsed_ns, trace) ->
            Printf.sprintf
              "{\"pid\":%d,\"fingerprint\":\"%s\",\"query\":\"%s\",\"elapsed_ms\":%.3f,\"trace\":\"%s\"}"
              pid (json_str fp) (json_str shape)
              (Int64.to_float elapsed_ns /. 1e6)
              (json_str trace))
          inflight))
    pool.Session_pool.capacity pool.Session_pool.in_use
    pool.Session_pool.borrows pool.Session_pool.rejections
    pool.Session_pool.waits pool.Session_pool.peak_in_use
    (String.concat ","
       (List.map
          (fun b ->
            Printf.sprintf
              "{\"function\":\"%s\",\"state\":\"%s\",\"rejecting\":%b}"
              (json_str (Breaker.name b))
              (Breaker.state_to_string (Breaker.state b))
              (Breaker.rejecting b))
          breakers))
    s.connections s.queries s.shed_queue s.shed_drain s.shed_breaker
    s.protocol_errors s.io_timeouts

let admin_handler srv path =
  match path with
  | "/metrics" ->
    {
      Admin.status = 200;
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = Expose.prometheus ();
    }
  | "/healthz" -> healthz srv
  | "/statusz" -> Admin.json 200 (statusz srv)
  | "/" -> Admin.text 200 "aqua admin: /metrics /healthz /statusz\n"
  | _ -> Admin.text 404 "not found\n"

(* gauge names registered by this server (Expose keys by name; a
   restarted server re-registers over its predecessor) *)
let gauge_names =
  [ "net.queue_depth"; "net.in_flight"; "session_pool.in_use" ]

let register_gauges srv =
  Expose.register_gauge
    ~help:"accepted connections waiting for a worker"
    "net.queue_depth"
    (fun () -> queue_length srv);
  Expose.register_gauge
    ~help:"queries between admission and response"
    "net.in_flight"
    (fun () -> Atomic.get srv.in_flight);
  Expose.register_gauge
    ~help:"sessions currently borrowed from the session pool"
    "session_pool.in_use"
    (fun () -> (Session_pool.stats srv.pool).Session_pool.in_use)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let make ~inline ?(config = default_config) ?snapshot_sink conn =
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listener SO_REUSEADDR true;
  let addr =
    let ip =
      try Unix.inet_addr_of_string config.host
      with Failure _ -> Unix.inet_addr_loopback
    in
    Unix.ADDR_INET (ip, config.port)
  in
  (try
     Unix.bind listener addr;
     Unix.listen listener (max 8 (2 * config.queue_depth))
   with e ->
     close_quiet listener;
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (* a client closing mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let srv = {
    conn;
    cfg = config;
    nworkers =
      (if config.workers > 0 then config.workers else max 1 config.pool_size);
    inline;
    pool =
      Session_pool.create ~capacity:config.pool_size ~limits:config.limits
        conn;
    listener;
    bound_port;
    queue = Queue.create ();
    qlock = Mcore.Mutex.create ();
    qcond = Mcore.Condition.create ();
    drain_flag = Atomic.make false;
    in_flight = Atomic.make 0;
    live = Hashtbl.create 16;
    llock = Mcore.Mutex.create ();
    hist_lock = Mcore.Mutex.create ();
    conn_seq = Atomic.make 0;
    active = Hashtbl.create 16;
    alock = Mcore.Mutex.create ();
    trace_seq = Atomic.make 0;
    trace_seed = T.now_ns ();
    dump_request = Atomic.make false;
    admin = ref None;
    s_connections = Atomic.make 0;
    s_queries = Atomic.make 0;
    s_shed_queue = Atomic.make 0;
    s_shed_drain = Atomic.make 0;
    s_shed_breaker = Atomic.make 0;
    s_protocol_errors = Atomic.make 0;
    s_io_timeouts = Atomic.make 0;
    snapshot_sink;
  }
  in
  register_gauges srv;
  srv

(* The admin listener is a background domain, so it exists only on the
   multicore build; it outlives the drain (health flips to 503 the
   moment the flag is set) and stops in the epilogue. *)
let start_admin ?on_admin_listening srv =
  match srv.cfg.admin_port with
  | Some p when Mcore.multicore ->
    let a = Admin.start ~host:srv.cfg.host ~port:p (admin_handler srv) in
    srv.admin := Some a;
    (match on_admin_listening with Some f -> f (Admin.port a) | None -> ())
  | _ -> ()

let stop_admin srv =
  match !(srv.admin) with
  | Some a ->
    Admin.stop a;
    srv.admin := None
  | None -> ()

(* The drain tail, once the accept loop has stopped enqueueing:
   broadcast the queue so parked workers wake and refuse the leftovers,
   wait out in-flight queries (bounded), then shut down idle session
   sockets so workers blocked in a read return.  The caller joins the
   worker domains after this. *)
let drain_tail srv =
  close_quiet srv.listener;
  Mcore.Mutex.protect srv.qlock (fun () ->
      Mcore.Condition.broadcast srv.qcond);
  let deadline =
    Int64.add (T.now_ns ())
      (Int64.of_int (srv.cfg.drain_timeout_ms * 1_000_000))
  in
  while
    Atomic.get srv.in_flight > 0
    && Int64.compare (T.now_ns ()) deadline < 0
  do
    Unix.sleepf 0.002
  done;
  let idle =
    Mcore.Mutex.protect srv.llock (fun () ->
        Hashtbl.fold (fun fd () acc -> fd :: acc) srv.live [])
  in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    idle

let drain_epilogue srv =
  (* any fd that slipped into the queue after the workers exited *)
  let leftovers =
    Mcore.Mutex.protect srv.qlock (fun () ->
        let fds = Queue.fold (fun acc fd -> fd :: acc) [] srv.queue in
        Queue.clear srv.queue;
        fds)
  in
  List.iter
    (fun fd ->
      bump srv.s_shed_drain T.c_net_shed_drain;
      refuse srv fd ~sqlstate:Sqlstate.cannot_connect_now
        "the database system is shutting down")
    leftovers;
  (* the flight recorder dump fires on graceful shutdown, not only
     when an error escapes: the operator sees what the server did
     last, every time it stops *)
  ignore (Recorder.dump_to_sink ~reason:"drain" ());
  T.incr T.c_net_drains;
  (match srv.snapshot_sink with
  | Some sink -> sink (Expose.prometheus ())
  | None -> ());
  (* the final exposition above still carries this server's gauges;
     after it they would read a dead server, so they go *)
  List.iter Expose.unregister_gauge gauge_names;
  stop_admin srv

let port t = t.srv.bound_port
let admin_port t = Option.map Admin.port !(t.srv.admin)
let summary t = read_summary t.srv
let draining t = Atomic.get t.srv.drain_flag
let request_drain t = Atomic.set t.srv.drain_flag true
let request_dump t = Atomic.set t.srv.dump_request true

let start ?config ?snapshot_sink ?on_admin_listening conn =
  if not Mcore.multicore then
    failwith "Netserver.start needs the multicore build (OCaml >= 5.0)";
  let srv = make ~inline:false ?config ?snapshot_sink conn in
  let workers =
    List.init srv.nworkers (fun _ -> Mcore.Domains.spawn (fun () -> worker srv))
  in
  let acceptor = Mcore.Domains.spawn (fun () -> accept_loop srv) in
  start_admin ?on_admin_listening srv;
  { srv; domains = acceptor :: workers; drained = false; dlock = Mcore.Mutex.create () }

let drain t =
  let first =
    Mcore.Mutex.protect t.dlock (fun () ->
        if t.drained then false
        else begin
          t.drained <- true;
          true
        end)
  in
  if first then begin
    Atomic.set t.srv.drain_flag true;
    (* the acceptor is the head domain: join it first so nothing new
       enters the queue behind the broadcast *)
    (match t.domains with
    | acceptor :: _ -> Mcore.Domains.join acceptor
    | [] -> ());
    drain_tail t.srv;
    List.iteri
      (fun i d -> if i > 0 then Mcore.Domains.join d)
      t.domains;
    t.domains <- [];
    drain_epilogue t.srv
  end

let run ?config ?snapshot_sink ?on_listening ?on_admin_listening conn =
  let srv = make ~inline:(not Mcore.multicore) ?config ?snapshot_sink conn in
  (match on_listening with Some f -> f srv.bound_port | None -> ());
  let on_signal _ = Atomic.set srv.drain_flag true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  (* SIGUSR1: flag only — the accept loop performs the dump at its
     next turn, outside any lock the interrupted code might hold *)
  let on_usr1 _ = Atomic.set srv.dump_request true in
  let old_usr1 =
    try Some (Sys.signal Sys.sigusr1 (Sys.Signal_handle on_usr1))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let workers =
    if srv.inline then []
    else
      List.init srv.nworkers (fun _ ->
          Mcore.Domains.spawn (fun () -> worker srv))
  in
  start_admin ?on_admin_listening srv;
  accept_loop srv;
  drain_tail srv;
  List.iter Mcore.Domains.join workers;
  drain_epilogue srv;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  (match old_usr1 with
  | Some b -> ( try Sys.set_signal Sys.sigusr1 b with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  read_summary srv
