(** PostgreSQL v3 simple-query wire codec.

    The subset a legacy reporting tool's driver needs to speak to the
    translator as if it were a PostgreSQL server: the startup
    handshake (plus the SSL/GSS probes, answered with a refusal byte),
    [Query], [Terminate], and the backend frames that carry a result
    set — [RowDescription], [DataRow] (text format), [CommandComplete]
    — or a typed failure ([ErrorResponse] with SQLSTATE fields).

    The codec is deliberately split from the socket layer: a {!Reader}
    pulls frames from any byte source (a connected socket, or an
    in-memory string for the fuzz suite), and every decoding failure
    is a value — {!error} — never an exception, so the server can map
    garbage, truncation and oversized frames to a session-scoped
    SQLSTATE 08P01 instead of dying.  Encoders append to a [Buffer.t]
    so one flush per response batch reaches the socket. *)

(** {1 Frontend (client -> server) messages} *)

type frontend =
  | Startup of (string * string) list
      (** protocol 3.0 startup; [(key, value)] parameters, e.g.
          [("user", …); ("database", …)] *)
  | Ssl_request  (** answered with ['N'] — no TLS *)
  | Gss_request  (** answered with ['N'] — no GSSAPI *)
  | Cancel_request  (** consumed and ignored (no backend keys map) *)
  | Query of string  (** simple-query: one SQL string *)
  | Terminate
  | Other of char * string
      (** a well-framed typed message the server does not implement
          (extended-protocol Parse/Bind/…); payload included *)

type error =
  | Eof  (** peer closed at a frame boundary or mid-frame *)
  | Timeout  (** the socket's receive deadline expired *)
  | Oversized of { kind : string; length : int; max : int }
      (** declared frame length beyond the reader's [max_frame] *)
  | Malformed of string  (** self-inconsistent frame *)

val error_to_string : error -> string

(** {1 Frame reader} *)

module Reader : sig
  type t

  val of_fd : ?max_frame:int -> Unix.file_descr -> t
  (** Reads from a connected socket.  [max_frame] (default 1 MiB)
      bounds any single frame's declared payload length — a garbage
      length prefix can therefore never make the server allocate or
      block unboundedly.  A [SO_RCVTIMEO] expiry surfaces as
      {!Timeout}; any other socket error as {!Eof}. *)

  val of_string : ?max_frame:int -> string -> t
  (** Reads from an in-memory byte string (fuzz and unit tests);
      running out of bytes is {!Eof}, exactly like a closed peer. *)

  val read_startup : t -> (frontend, error) result
  (** The first, untyped frame of a connection: [Startup],
      {!Ssl_request}, {!Gss_request} or {!Cancel_request}. *)

  val read_message : t -> (frontend, error) result
  (** One typed frame ([Query], [Terminate], or {!Other}). *)
end

(** {1 Frontend encoders}

    Used by the in-repo bench client and the test suite. *)

val startup_message : Buffer.t -> (string * string) list -> unit
val query_message : Buffer.t -> string -> unit
val terminate_message : Buffer.t -> unit

(** {1 Backend (server -> client) encoders} *)

val authentication_ok : Buffer.t -> unit
val parameter_status : Buffer.t -> string -> string -> unit
val backend_key_data : Buffer.t -> pid:int -> secret:int -> unit

val ready_for_query : Buffer.t -> unit
(** Always reports idle (['I']) — no transactions. *)

val type_oid : Aqua_relational.Sql_type.t -> int
(** The PostgreSQL type OID advertised for a translator output column
    (e.g. INTEGER -> 23, VARCHAR -> 1043). *)

val row_description : Buffer.t -> Aqua_translator.Outcol.t list -> unit

val data_row : Buffer.t -> Aqua_relational.Value.t array -> unit
(** Text format; SQL NULL is the -1 length sentinel. *)

val command_complete : Buffer.t -> string -> unit
(** The tag, e.g. ["SELECT 6"]. *)

val empty_query_response : Buffer.t -> unit

val error_response :
  Buffer.t -> ?severity:string -> sqlstate:string -> string -> unit
(** [ErrorResponse] with severity (default ["ERROR"]), SQLSTATE code
    and message fields. *)

val ssl_refused : Buffer.t -> unit
(** The single ['N'] byte answering an SSL/GSS probe. *)

(** {1 Backend decoder}

    Used by the in-repo bench client and the test suite to consume the
    server's responses; not needed to serve. *)

type backend =
  | B_auth_ok
  | B_parameter_status of string * string
  | B_key_data of { pid : int; secret : int }
  | B_ready of char
  | B_row_description of string list  (** column labels *)
  | B_data_row of string option list  (** [None] = SQL NULL *)
  | B_command_complete of string
  | B_empty_query
  | B_error of (char * string) list  (** field code -> value *)
  | B_other of char * string

val read_backend : Reader.t -> (backend, error) result

val error_field : backend -> char -> string option
(** [error_field (B_error fields) 'C'] is the SQLSTATE, ['M'] the
    message; [None] on other frames. *)
