(** The [aqua_stat_*] virtual tables.

    pg_stat_statements-style introspection served by {!Netserver}
    itself: a [SELECT * FROM aqua_stat_statements | aqua_stat_activity
    | aqua_stat_breakers] is intercepted before translation and
    answered from the live registries over ordinary
    RowDescription/DataRow frames, so any stock client can watch the
    server it is talking to.

    - [aqua_stat_statements] — the {!Aqua_obs.Stats} per-fingerprint
      registry: fingerprint, normalized query, calls, rows, cache
      hits, errors, mean/p50/p99/total latency in milliseconds;
    - [aqua_stat_activity] — queries in flight at snapshot time: pid
      (the BackendKeyData id), normalized query, fingerprint, elapsed
      ms, trace id;
    - [aqua_stat_breakers] — per-function circuit breakers: state,
      whether currently rejecting, trips/recoveries/rejections. *)

type table = Statements | Activity | Breakers

val table_names : string list

val recognize : string -> table option
(** [Some _] iff the SQL is exactly [SELECT * FROM <table>] (any case
    or whitespace, optional trailing [;]) naming a virtual table.
    Anything else — projections, predicates, joins — falls through to
    the translator. *)

val statements :
  unit -> Aqua_translator.Outcol.t list * Aqua_relational.Value.t array list

type activity_row = {
  pid : int;
  query : string;
  fingerprint : string;
  elapsed_ms : float;
  trace_id : string;
}

val activity :
  activity_row list ->
  Aqua_translator.Outcol.t list * Aqua_relational.Value.t array list
(** Rows are returned sorted by pid. *)

val breakers :
  Aqua_resilience.Breaker.t list ->
  Aqua_translator.Outcol.t list * Aqua_relational.Value.t array list
