(* Log-linear (HDR-style) histogram over non-negative int64 values.

   Bucket layout: values 0..15 get one bucket each (the identity
   region); from there every power-of-two range [2^e, 2^(e+1)) is
   split into 16 linear sub-buckets, so bucket widths grow
   geometrically while the relative error stays <= 1/16.  For a value
   with highest set bit e >= 4 the index is

     (e - 3) * 16 + ((v lsr (e - 4)) land 15)

   which is continuous with the identity region (v = 16 lands on
   index 16).  Everything is exact-integer arithmetic; merge is
   bucketwise addition. *)

let subbuckets = 16

(* Highest exponent represented exactly; values with a higher leading
   bit clamp into the last bucket (2^51 ns is about 26 days, far past
   any query latency we care to resolve). *)
let max_exponent = 50

let bucket_count = ((max_exponent - 3) * subbuckets) + subbuckets

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : int64;
  mutable min_v : int64;  (* meaningful only when n > 0 *)
  mutable max_v : int64;
}

let create () =
  {
    buckets = Array.make bucket_count 0;
    n = 0;
    sum = 0L;
    min_v = 0L;
    max_v = 0L;
  }

let msb v =
  (* position of the highest set bit of a positive int *)
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_index v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  let vi =
    if Int64.compare v (Int64.of_int max_int) > 0 then max_int
    else Int64.to_int v
  in
  if vi < subbuckets then vi
  else
    let e = msb vi in
    if e > max_exponent then bucket_count - 1
    else ((e - 3) * subbuckets) + ((vi lsr (e - 4)) land (subbuckets - 1))

let bucket_upper_bound i =
  if i < subbuckets then Int64.of_int i
  else
    let e = (i / subbuckets) + 3 in
    let sub = i mod subbuckets in
    let width = 1 lsl (e - 4) in
    let lower = (subbuckets + sub) * width in
    Int64.of_int (lower + width - 1)

let record_n t v n =
  if n > 0 then begin
    let v = if Int64.compare v 0L < 0 then 0L else v in
    let i = bucket_index v in
    t.buckets.(i) <- t.buckets.(i) + n;
    if t.n = 0 then begin
      t.min_v <- v;
      t.max_v <- v
    end
    else begin
      if Int64.compare v t.min_v < 0 then t.min_v <- v;
      if Int64.compare v t.max_v > 0 then t.max_v <- v
    end;
    t.n <- t.n + n;
    t.sum <- Int64.add t.sum (Int64.mul v (Int64.of_int n))
  end

let record t v = record_n t v 1

let count t = t.n
let total t = t.sum
let min_value t = if t.n = 0 then 0L else t.min_v
let max_value t = if t.n = 0 then 0L else t.max_v
let mean t = if t.n = 0 then nan else Int64.to_float t.sum /. float_of_int t.n
let is_empty t = t.n = 0

let percentile t p =
  if t.n = 0 then 0L
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
    in
    let rec walk i seen =
      if i >= bucket_count then max_value t
      else
        let seen = seen + t.buckets.(i) in
        if seen >= rank then
          (* the bucket bound over-approximates; the exact max is a
             tighter cap for ranks landing in the top bucket *)
          let b = bucket_upper_bound i in
          if Int64.compare b t.max_v > 0 then t.max_v else b
        else walk (i + 1) seen
    in
    walk 0 0
  end

let p50 t = percentile t 50.0
let p90 t = percentile t 90.0
let p99 t = percentile t 99.0

let merge_into ~into src =
  if src.n > 0 then begin
    Array.iteri
      (fun i c -> if c > 0 then into.buckets.(i) <- into.buckets.(i) + c)
      src.buckets;
    if into.n = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if Int64.compare src.min_v into.min_v < 0 then into.min_v <- src.min_v;
      if Int64.compare src.max_v into.max_v > 0 then into.max_v <- src.max_v
    end;
    into.n <- into.n + src.n;
    into.sum <- Int64.add into.sum src.sum
  end

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let reset t =
  Array.fill t.buckets 0 bucket_count 0;
  t.n <- 0;
  t.sum <- 0L;
  t.min_v <- 0L;
  t.max_v <- 0L

let nonzero_buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then
      acc := (bucket_upper_bound i, t.buckets.(i)) :: !acc
  done;
  !acc

let quantiles_to_json t =
  Printf.sprintf
    "{\"count\":%d,\"total_ns\":%Ld,\"min_ns\":%Ld,\"p50_ns\":%Ld,\"p90_ns\":%Ld,\"p99_ns\":%Ld,\"max_ns\":%Ld}"
    t.n t.sum (min_value t) (p50 t) (p90 t) (p99 t) (max_value t)
