(** SQL query-shape fingerprints (pg_stat_statements style).

    {!normalize} reduces a SQL text to its shape: literals become [?],
    keywords and identifiers are case-folded to upper case, whitespace
    collapses to single separators, and [IN]-lists of literals
    collapse to [IN (?)] — so the ad-hoc SQL a reporting tool
    regenerates with different constants, casing or layout lands on
    one stable key.  {!digest} is a 64-bit FNV-1a hash of the
    normalized text in fixed-width hex, usable as a metric label.

    The normalizer is a standalone lexical pass (it does not parse),
    so even SQL the translator rejects still fingerprints — errors
    aggregate by shape too. *)

val normalize : string -> string
(** The canonical shape text.  Quoted identifiers ["..."] keep their
    case; string literals ['...'] (with [''] escapes) and numeric
    literals (including decimals and exponents) become [?]. *)

val digest : string -> string
(** 16 lowercase hex characters: FNV-1a 64 over [normalize sql]. *)

val fingerprint : string -> string * string
(** [(digest, normalized)] computed in one pass over the input. *)
