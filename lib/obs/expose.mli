(** Metric exposition: Prometheus text format and JSON.

    Renders everything the obs layer knows — telemetry counters and
    span aggregates, the named latency histograms, and the
    per-fingerprint registry — for scraping ({!prometheus}) or
    programmatic consumption ({!json}).  {!lint} is a standalone
    checker for the Prometheus text format, used by the CI [obs-smoke]
    job (via [bench/validate.exe --prom]) and the test suite, so the
    renderer can never silently drift from the format. *)

(** {1 Gauges}

    Live values — queue depths, pool occupancy, in-flight counts — are
    exposed through registered read callbacks: the owner registers a
    closure over its own state, and every scrape calls it for the
    instant value.  Re-registering a name replaces the callback (a
    restarted server takes over); a callback that raises is skipped
    for that scrape. *)

val register_gauge : help:string -> string -> (unit -> int) -> unit
(** [register_gauge ~help name read] — [name] is sanitized into the
    [aqua_<name>] metric family (rendered with [# TYPE … gauge]). *)

val unregister_gauge : string -> unit

val gauge_values : unit -> (string * int) list
(** Current [(name, value)] per registered gauge, registration order,
    raising readers skipped. *)

val prometheus : unit -> string
(** Prometheus exposition (text format 0.0.4):
    - every telemetry counter as [aqua_<name>_total];
    - every registered gauge as [aqua_<name>] with [# TYPE … gauge];
    - span aggregates as [aqua_span_count_total{span=…}] /
      [aqua_span_duration_ns_total{span=…}];
    - each named histogram as the [aqua_latency_ns{op=…}] histogram
      family (cumulative [le] buckets from the sparse log-linear
      representation, plus [_sum]/[_count]);
    - per-fingerprint calls / rows / cache hits / errors-by-class
      counters and an [aqua_query_latency_ns{fp=…,stage=…}] summary
      (p50/p90/p99 quantiles). *)

val json : unit -> string
(** The same data as one JSON object:
    [{"counters":…,"gauges":…,"spans":…,"histograms":…,"fingerprints":…}]. *)

val lint : string -> string list
(** Problems found in a Prometheus text exposition (empty = valid):
    malformed lines, samples without a preceding [# TYPE], unknown
    metric types, duplicate [TYPE] declarations, malformed labels or
    values, histogram buckets out of order / non-cumulative / missing
    [le="+Inf"], and [_count] disagreeing with the [+Inf] bucket. *)
