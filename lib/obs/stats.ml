(* Per-fingerprint statistics registry + named latency histograms.
   Mirrors the registration discipline of [Aqua_core.Telemetry]: a
   by-key hashtable plus a reverse-ordered list for stable reporting
   order, mutable records for O(1) accumulation. *)

module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

(* One module lock guards both registries, every entry's mutable
   fields and every histogram's buckets (Histogram.t is not itself
   thread-safe).  Functions suffixed [_unlocked] assume the lock is
   held — the locks are not re-entrant. *)
let lock = Mcore.Mutex.create ()

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type entry = {
  fingerprint : string;
  shape : string;
  mutable calls : int;
  mutable rows : int;
  mutable cache_hits : int;
  mutable errors : int;
  error_classes : (string, int) Hashtbl.t;
  translate : Histogram.t;
  execute : Histogram.t;
  decode : Histogram.t;
  total : Histogram.t;
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let order : entry list ref = ref []

let entry_unlocked ~digest ~shape =
  match Hashtbl.find_opt table digest with
  | Some e -> e
  | None ->
    let e =
      {
        fingerprint = digest;
        shape;
        calls = 0;
        rows = 0;
        cache_hits = 0;
        errors = 0;
        error_classes = Hashtbl.create 4;
        translate = Histogram.create ();
        execute = Histogram.create ();
        decode = Histogram.create ();
        total = Histogram.create ();
      }
    in
    Hashtbl.add table digest e;
    order := e :: !order;
    e

let sqlstate_class code =
  if String.length code >= 2 then String.sub code 0 2 else code

let observe ~digest ~shape ?translate_ns ?execute_ns ?decode_ns ?(rows = 0)
    ?(cache_hit = false) ?error ~total_ns () =
  if !enabled_flag then begin
    Mcore.Mutex.protect lock @@ fun () ->
    let e = entry_unlocked ~digest ~shape in
    e.calls <- e.calls + 1;
    e.rows <- e.rows + rows;
    if cache_hit then e.cache_hits <- e.cache_hits + 1;
    (match error with
    | Some code ->
      e.errors <- e.errors + 1;
      let cls = sqlstate_class code in
      Hashtbl.replace e.error_classes cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt e.error_classes cls))
    | None -> ());
    let stage h = function Some ns -> Histogram.record h ns | None -> () in
    stage e.translate translate_ns;
    stage e.execute execute_ns;
    stage e.decode decode_ns;
    Histogram.record e.total total_ns
  end

let entries () = Mcore.Mutex.protect lock (fun () -> List.rev !order)
let find digest = Mcore.Mutex.protect lock (fun () -> Hashtbl.find_opt table digest)

type order = By_total_time | By_p99 | By_calls

let top ?(by = By_total_time) n =
  let weight e =
    match by with
    | By_total_time -> Int64.to_float (Histogram.total e.total)
    | By_p99 -> Int64.to_float (Histogram.p99 e.total)
    | By_calls -> float_of_int e.calls
  in
  let sorted =
    Mcore.Mutex.protect lock (fun () ->
        List.sort (fun a b -> compare (weight b) (weight a)) (List.rev !order))
  in
  List.filteri (fun i _ -> i < n) sorted

let error_classes e =
  Mcore.Mutex.protect lock (fun () ->
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.error_classes []))

(* Named histograms ---------------------------------------------------- *)

let h_table : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32
let h_order : (string * Histogram.t) list ref = ref []

let histogram_unlocked name =
  match Hashtbl.find_opt h_table name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add h_table name h;
    h_order := (name, h) :: !h_order;
    h

let histogram name = Mcore.Mutex.protect lock (fun () -> histogram_unlocked name)

let histograms () = Mcore.Mutex.protect lock (fun () -> List.rev !h_order)

let install_span_histograms () =
  Telemetry.set_span_observer
    (Some
       (fun name dur ->
         Mcore.Mutex.protect lock (fun () ->
             Histogram.record (histogram_unlocked name) dur)))

let uninstall_span_histograms () = Telemetry.set_span_observer None

let reset () =
  Mcore.Mutex.protect lock @@ fun () ->
  Hashtbl.reset table;
  order := [];
  Hashtbl.reset h_table;
  h_order := []
