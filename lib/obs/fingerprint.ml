(* Lexical SQL normalizer + FNV-1a digest.  This deliberately does not
   reuse the SQL parser: fingerprinting must work on statements the
   parser rejects (so errors aggregate by shape), and must not care
   about grammar details.  One left-to-right pass produces a token
   list; a second tiny pass collapses literal IN-lists. *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'

(* Two-character operators that must stay one token. *)
let two_char_ops = [ "<="; ">="; "<>"; "!="; "||" ]

let tokens sql =
  let n = String.length sql in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = sql.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && sql.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && sql.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && sql.[!i + 1] = '*' then begin
      (* block comment (unterminated: swallow the rest) *)
      i := !i + 2;
      let fin = ref false in
      while not !fin && !i < n do
        if sql.[!i] = '*' && !i + 1 < n && sql.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else incr i
      done
    end
    else if c = '\'' then begin
      (* string literal, '' escapes; unterminated swallows the rest *)
      incr i;
      let fin = ref false in
      while not !fin && !i < n do
        if sql.[!i] = '\'' then
          if !i + 1 < n && sql.[!i + 1] = '\'' then i := !i + 2
          else begin
            incr i;
            fin := true
          end
        else incr i
      done;
      push "?"
    end
    else if c = '"' then begin
      (* quoted identifier: kept verbatim, case preserved *)
      let start = !i in
      incr i;
      while !i < n && sql.[!i] <> '"' do incr i done;
      if !i < n then incr i;
      push (String.sub sql start (!i - start))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit sql.[!i + 1])
    then begin
      (* numeric literal: digits [. digits] [eE [+-] digits] *)
      while !i < n && is_digit sql.[!i] do incr i done;
      if !i < n && sql.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit sql.[!i] do incr i done
      end;
      if !i < n && (sql.[!i] = 'e' || sql.[!i] = 'E') then begin
        let j = !i + 1 in
        let j = if j < n && (sql.[j] = '+' || sql.[j] = '-') then j + 1 else j in
        if j < n && is_digit sql.[j] then begin
          i := j;
          while !i < n && is_digit sql.[!i] do incr i done
        end
      end;
      push "?"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char sql.[!i] do incr i done;
      push (String.uppercase_ascii (String.sub sql start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub sql !i 2) else None
      in
      match two with
      | Some op when List.mem op two_char_ops ->
        push op;
        i := !i + 2
      | _ ->
        push (String.make 1 c);
        incr i
    end
  done;
  List.rev !toks

(* [IN ( ? , ? , ... ? )] -> [IN ( ? )]: the arity of a literal
   IN-list is workload noise, not query shape. *)
let rec collapse_in_lists = function
  | "IN" :: "(" :: "?" :: rest -> (
    let rec eat = function
      | "," :: "?" :: r -> eat r
      | ")" :: r -> Some r
      | _ -> None
    in
    match eat rest with
    | Some r -> "IN" :: "(" :: "?" :: ")" :: collapse_in_lists r
    | None -> "IN" :: "(" :: "?" :: collapse_in_lists rest)
  | tok :: rest -> tok :: collapse_in_lists rest
  | [] -> []

(* Spacing: single separators, but punctuation hugs its operand — no
   space before commas, dots or parens and none after an opening paren
   or dot — so shapes read like [COUNT(STAR)] and [IN(?)]. *)
let assemble toks =
  let buf = Buffer.create 128 in
  let no_space_before t = t = "," || t = ")" || t = "." || t = "(" in
  let no_space_after t = t = "(" || t = "." in
  let prev = ref None in
  List.iter
    (fun t ->
      (match !prev with
      | Some p when not (no_space_before t) && not (no_space_after p) ->
        Buffer.add_char buf ' '
      | _ -> ());
      Buffer.add_string buf t;
      prev := Some t)
    toks;
  Buffer.contents buf

let normalize sql = assemble (collapse_in_lists (tokens sql))

(* FNV-1a, 64-bit *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let digest_of_normalized s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let normalize_and_digest sql =
  let n = normalize sql in
  (digest_of_normalized n, n)

let digest sql = fst (normalize_and_digest sql)
let fingerprint = normalize_and_digest
