(* Prometheus / JSON renderers over the obs registries, plus a
   text-format linter.  The renderer and the linter live side by side
   on purpose: CI lints the renderer's own output, so the two cannot
   drift apart silently. *)

module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)

(* Live values owned by someone else — connection-queue depth, pool
   in-use, in-flight queries — exposed through registered read
   callbacks rather than stored samples, so a scrape always sees the
   instant truth and the owner carries no exposition dependency beyond
   registration.  Keyed by name; re-registering replaces (a restarted
   server takes over its names). *)
type gauge = { g_help : string; g_read : unit -> int }

let gauge_lock = Mcore.Mutex.create ()
let gauge_table : (string, gauge) Hashtbl.t = Hashtbl.create 8
let gauge_order : string list ref = ref []  (* reverse registration order *)

let register_gauge ~help name read =
  Mcore.Mutex.protect gauge_lock @@ fun () ->
  if not (Hashtbl.mem gauge_table name) then
    gauge_order := name :: !gauge_order;
  Hashtbl.replace gauge_table name { g_help = help; g_read = read }

let unregister_gauge name =
  Mcore.Mutex.protect gauge_lock @@ fun () ->
  Hashtbl.remove gauge_table name;
  gauge_order := List.filter (fun n -> n <> name) !gauge_order

(* Snapshot the registry under the lock, then run the callbacks
   outside it: a reader is free to take its owner's locks (queue lock,
   pool lock) without ordering against ours.  A raising reader is
   skipped — one broken gauge must not poison the whole scrape. *)
let gauge_samples () =
  let snap =
    Mcore.Mutex.protect gauge_lock (fun () ->
        List.rev_map
          (fun name -> (name, Hashtbl.find gauge_table name))
          !gauge_order)
  in
  List.filter_map
    (fun (name, g) ->
      match g.g_read () with
      | v -> Some (name, g.g_help, v)
      | exception _ -> None)
    snap

let gauge_values () =
  List.map (fun (name, _, v) -> (name, v)) (gauge_samples ())

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                  *)

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      then c
      else '_')
    name

(* Label values escape backslash, double quote and newline (the
   text-format rules). *)
let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_str = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           labels)
    ^ "}"

let prometheus () =
  let buf = Buffer.create 4096 in
  let family name ty help =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name help name ty)
  in
  let sample ?(labels = []) name v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (label_str labels) v)
  in
  let int_sample ?labels name v = sample ?labels name (string_of_int v) in
  let i64_sample ?labels name v = sample ?labels name (Int64.to_string v) in
  (* counters *)
  List.iter
    (fun (name, value) ->
      let m = "aqua_" ^ sanitize name ^ "_total" in
      family m "counter" ("telemetry counter " ^ name);
      int_sample m value)
    (Telemetry.counters ());
  (* gauges: live read-callback values (no _total suffix) *)
  List.iter
    (fun (name, help, v) ->
      let m = "aqua_" ^ sanitize name in
      family m "gauge" help;
      int_sample m v)
    (gauge_samples ());
  (* span aggregates *)
  let spans = Telemetry.span_stats () in
  if spans <> [] then begin
    family "aqua_span_count_total" "counter" "span closes per span name";
    List.iter
      (fun (name, n, _) ->
        int_sample ~labels:[ ("span", name) ] "aqua_span_count_total" n)
      spans;
    family "aqua_span_duration_ns_total" "counter"
      "total nanoseconds per span name";
    List.iter
      (fun (name, _, total) ->
        i64_sample ~labels:[ ("span", name) ] "aqua_span_duration_ns_total"
          total)
      spans
  end;
  (* named latency histograms *)
  let hists =
    List.filter (fun (_, h) -> not (Histogram.is_empty h)) (Stats.histograms ())
  in
  if hists <> [] then begin
    family "aqua_latency_ns" "histogram"
      "latency distribution per operation (log-linear buckets)";
    List.iter
      (fun (op, h) ->
        let labels le = [ ("op", op); ("le", le) ] in
        let cum = ref 0 in
        List.iter
          (fun (bound, count) ->
            cum := !cum + count;
            int_sample
              ~labels:(labels (Int64.to_string bound))
              "aqua_latency_ns_bucket" !cum)
          (Histogram.nonzero_buckets h);
        int_sample ~labels:(labels "+Inf") "aqua_latency_ns_bucket"
          (Histogram.count h);
        i64_sample ~labels:[ ("op", op) ] "aqua_latency_ns_sum"
          (Histogram.total h);
        int_sample ~labels:[ ("op", op) ] "aqua_latency_ns_count"
          (Histogram.count h))
      hists
  end;
  (* per-fingerprint registry *)
  let entries = Stats.entries () in
  if entries <> [] then begin
    family "aqua_query_calls_total" "counter" "statements per fingerprint";
    List.iter
      (fun (e : Stats.entry) ->
        int_sample
          ~labels:[ ("fp", e.Stats.fingerprint) ]
          "aqua_query_calls_total" e.Stats.calls)
      entries;
    family "aqua_query_rows_total" "counter" "result rows per fingerprint";
    List.iter
      (fun (e : Stats.entry) ->
        int_sample
          ~labels:[ ("fp", e.Stats.fingerprint) ]
          "aqua_query_rows_total" e.Stats.rows)
      entries;
    family "aqua_query_cache_hits_total" "counter"
      "translation cache hits per fingerprint";
    List.iter
      (fun (e : Stats.entry) ->
        int_sample
          ~labels:[ ("fp", e.Stats.fingerprint) ]
          "aqua_query_cache_hits_total" e.Stats.cache_hits)
      entries;
    if List.exists (fun (e : Stats.entry) -> e.Stats.errors > 0) entries
    then begin
      family "aqua_query_errors_total" "counter"
        "failed statements per fingerprint and SQLSTATE class";
      List.iter
        (fun (e : Stats.entry) ->
          List.iter
            (fun (cls, n) ->
              int_sample
                ~labels:[ ("fp", e.Stats.fingerprint); ("class", cls) ]
                "aqua_query_errors_total" n)
            (Stats.error_classes e))
        entries
    end;
    family "aqua_query_latency_ns" "summary"
      "per-fingerprint per-stage latency quantiles";
    List.iter
      (fun (e : Stats.entry) ->
        List.iter
          (fun (stage, h) ->
            if not (Histogram.is_empty h) then begin
              let base = [ ("fp", e.Stats.fingerprint); ("stage", stage) ] in
              List.iter
                (fun (q, v) ->
                  i64_sample
                    ~labels:(base @ [ ("quantile", q) ])
                    "aqua_query_latency_ns" v)
                [ ("0.5", Histogram.p50 h); ("0.9", Histogram.p90 h);
                  ("0.99", Histogram.p99 h) ];
              i64_sample ~labels:base "aqua_query_latency_ns_sum"
                (Histogram.total h);
              int_sample ~labels:base "aqua_query_latency_ns_count"
                (Histogram.count h)
            end)
          [ ("translate", e.Stats.translate); ("execute", e.Stats.execute);
            ("decode", e.Stats.decode); ("total", e.Stats.total) ])
      entries
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)

let json_escape = Telemetry.json_escape

let json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"counters\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\":%d" (json_escape name) v)
          (Telemetry.counters ())));
  Buffer.add_string buf "},\"gauges\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\":%d" (json_escape name) v)
          (gauge_values ())));
  Buffer.add_string buf "},\"spans\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (name, n, total) ->
            Printf.sprintf "{\"name\":\"%s\",\"count\":%d,\"total_ns\":%Ld}"
              (json_escape name) n total)
          (Telemetry.span_stats ())));
  Buffer.add_string buf "],\"histograms\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.filter_map
          (fun (op, h) ->
            if Histogram.is_empty h then None
            else
              Some
                (Printf.sprintf "\"%s\":%s" (json_escape op)
                   (Histogram.quantiles_to_json h)))
          (Stats.histograms ())));
  Buffer.add_string buf "},\"fingerprints\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (e : Stats.entry) ->
            let stage name h =
              Printf.sprintf "\"%s\":%s" name (Histogram.quantiles_to_json h)
            in
            Printf.sprintf
              "{\"fp\":\"%s\",\"shape\":\"%s\",\"calls\":%d,\"rows\":%d,\"cache_hits\":%d,\"errors\":{%s},%s,%s,%s,%s}"
              (json_escape e.Stats.fingerprint)
              (json_escape e.Stats.shape)
              e.Stats.calls e.Stats.rows e.Stats.cache_hits
              (String.concat ","
                 (List.map
                    (fun (cls, n) ->
                      Printf.sprintf "\"%s\":%d" (json_escape cls) n)
                    (Stats.error_classes e)))
              (stage "translate" e.Stats.translate)
              (stage "execute" e.Stats.execute)
              (stage "decode" e.Stats.decode)
              (stage "total" e.Stats.total))
          (Stats.entries ())));
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus text-format linter                                      *)

type lint_state = {
  mutable problems : string list;
  types : (string, string) Hashtbl.t;  (* family -> metric type *)
  (* (family, labels-minus-le) -> buckets in appearance order *)
  buckets : (string * string, (float * float) list ref) Hashtbl.t;
  counts : (string * string, float) Hashtbl.t;  (* _count samples *)
}

let metric_name_ok name =
  name <> ""
  && (let c = name.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name

let label_name_ok name =
  metric_name_ok name && not (String.contains name ':')

let float_ok s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> float_of_string_opt s <> None

let value_of s =
  match s with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | _ -> float_of_string s

(* Parse one sample line: name[{labels}] value.  Returns
   (name, labels, value-string) or None on malformed syntax. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do incr i done;
  let name = String.sub line 0 !i in
  if not (metric_name_ok name) then None
  else begin
    let labels = ref [] in
    let ok = ref true in
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let fin = ref false in
      while !ok && not !fin && !i < n do
        if line.[!i] = '}' then begin
          incr i;
          fin := true
        end
        else begin
          (* label name *)
          let start = !i in
          while !i < n && line.[!i] <> '=' do incr i done;
          if !i >= n then ok := false
          else begin
            let lname = String.sub line start (!i - start) in
            incr i;
            if not (label_name_ok lname) || !i >= n || line.[!i] <> '"' then
              ok := false
            else begin
              incr i;
              let vbuf = Buffer.create 16 in
              let closed = ref false in
              while (not !closed) && !i < n do
                if line.[!i] = '\\' && !i + 1 < n then begin
                  (match line.[!i + 1] with
                  | 'n' -> Buffer.add_char vbuf '\n'
                  | c -> Buffer.add_char vbuf c);
                  i := !i + 2
                end
                else if line.[!i] = '"' then begin
                  incr i;
                  closed := true
                end
                else begin
                  Buffer.add_char vbuf line.[!i];
                  incr i
                end
              done;
              if not !closed then ok := false
              else begin
                labels := (lname, Buffer.contents vbuf) :: !labels;
                if !i < n && line.[!i] = ',' then incr i
                else if !i < n && line.[!i] = '}' then ()
                else if !i < n then ok := false
              end
            end
          end
        end
      done;
      if not !fin then ok := false
    end;
    if not !ok then None
    else begin
      (* single space, then the value *)
      if !i >= n || line.[!i] <> ' ' then None
      else begin
        let value = String.sub line (!i + 1) (n - !i - 1) in
        if String.trim value = "" then None
        else Some (name, List.rev !labels, String.trim value)
      end
    end
  end

let strip_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

let lint text =
  let st =
    {
      problems = [];
      types = Hashtbl.create 16;
      buckets = Hashtbl.create 16;
      counts = Hashtbl.create 16;
    }
  in
  let problem lineno fmt =
    Printf.ksprintf
      (fun m -> st.problems <- Printf.sprintf "line %d: %s" lineno m :: st.problems)
      fmt
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if String.trim line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: ty :: [] ->
          if not (metric_name_ok name) then
            problem lineno "bad metric name in TYPE: %s" name;
          if
            not
              (List.mem ty
                 [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then problem lineno "unknown metric type %S" ty;
          if Hashtbl.mem st.types name then
            problem lineno "duplicate TYPE for %s" name
          else Hashtbl.add st.types name ty
        | "#" :: "TYPE" :: _ -> problem lineno "malformed TYPE line"
        | "#" :: "HELP" :: name :: _ ->
          if not (metric_name_ok name) then
            problem lineno "bad metric name in HELP: %s" name
        | _ -> ()  (* free-form comment *)
      end
      else begin
        match parse_sample line with
        | None -> problem lineno "malformed sample: %s" line
        | Some (name, labels, value) ->
          if not (float_ok value) then
            problem lineno "bad sample value %S" value;
          (* resolve the declaring family *)
          let family_of () =
            if Hashtbl.mem st.types name then Some (name, Hashtbl.find st.types name)
            else
              let try_suffix suffix kinds =
                match strip_suffix name suffix with
                | Some base
                  when Hashtbl.mem st.types base
                       && List.mem (Hashtbl.find st.types base) kinds ->
                  Some (base, Hashtbl.find st.types base)
                | _ -> None
              in
              match try_suffix "_bucket" [ "histogram" ] with
              | Some f -> Some f
              | None -> (
                match try_suffix "_sum" [ "histogram"; "summary" ] with
                | Some f -> Some f
                | None -> try_suffix "_count" [ "histogram"; "summary" ])
          in
          (match family_of () with
          | None -> problem lineno "sample %s has no preceding TYPE" name
          | Some (base, ty) ->
            let labels_no_le =
              List.filter (fun (k, _) -> k <> "le") labels
            in
            let group =
              ( base,
                String.concat ","
                  (List.map (fun (k, v) -> k ^ "=" ^ v)
                     (List.sort compare labels_no_le)) )
            in
            if ty = "histogram" && strip_suffix name "_bucket" <> None
            then begin
              match List.assoc_opt "le" labels with
              | None -> problem lineno "histogram bucket without le label"
              | Some le ->
                if not (float_ok le) then
                  problem lineno "bad le value %S" le
                else begin
                  let cell =
                    match Hashtbl.find_opt st.buckets group with
                    | Some c -> c
                    | None ->
                      let c = ref [] in
                      Hashtbl.add st.buckets group c;
                      c
                  in
                  cell := (value_of le, value_of value) :: !cell
                end
            end;
            if
              (ty = "histogram" || ty = "summary")
              && strip_suffix name "_count" <> None
            then Hashtbl.replace st.counts group (value_of value);
            if ty = "summary" && name = base then begin
              match List.assoc_opt "quantile" labels with
              | None -> problem lineno "summary sample without quantile label"
              | Some q ->
                if not (float_ok q) then problem lineno "bad quantile %S" q
            end)
      end)
    lines;
  (* histogram group checks *)
  Hashtbl.iter
    (fun (base, labels) cell ->
      let buckets = List.rev !cell in
      let where =
        Printf.sprintf "%s{%s}" base (if labels = "" then "" else labels)
      in
      let rec check_order = function
        | (le1, v1) :: ((le2, v2) :: _ as rest) ->
          if not (le1 < le2 || (le1 = le2 && classify_float le1 = FP_infinite))
          then
            st.problems <-
              Printf.sprintf "%s: bucket le out of order (%g then %g)" where
                le1 le2
              :: st.problems;
          if v1 > v2 then
            st.problems <-
              Printf.sprintf "%s: buckets not cumulative (%g then %g)" where v1
                v2
              :: st.problems;
          check_order rest
        | _ -> ()
      in
      check_order buckets;
      match List.rev buckets with
      | (le, inf_v) :: _ when classify_float le = FP_infinite && le > 0.0 -> (
        match Hashtbl.find_opt st.counts (base, labels) with
        | Some c when c <> inf_v ->
          st.problems <-
            Printf.sprintf "%s: _count %g disagrees with +Inf bucket %g" where
              c inf_v
            :: st.problems
        | Some _ -> ()
        | None ->
          st.problems <-
            Printf.sprintf "%s: histogram without _count" where :: st.problems)
      | _ ->
        st.problems <-
          Printf.sprintf "%s: histogram without le=\"+Inf\" bucket" where
          :: st.problems)
    st.buckets;
  List.rev st.problems
