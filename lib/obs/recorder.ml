(* Bounded ring of recent query events.  A preallocated [event option
   array] plus a write cursor: append overwrites the oldest slot, so
   the last [capacity] statements are always available for a
   post-mortem dump, at O(1) per statement and fixed memory. *)

let json_escape = Aqua_core.Telemetry.json_escape

module Mcore = Aqua_multicore.Mcore

type resilience = {
  retries : int;
  fallbacks : int;
  faults : int;
  breaker_rejections : int;
}

let no_resilience =
  { retries = 0; fallbacks = 0; faults = 0; breaker_rejections = 0 }

type outcome = Done | Failed of string

type event = {
  seq : int;
  fingerprint : string;
  shape : string;
  start_ns : int64;
  dur_ns : int64;
  rows : int;
  cache_hit : bool;
  plan : string;
  trace_id : string;  (* "" when the statement ran outside a trace *)
  outcome : outcome;
  resilience : resilience;
}

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let default_capacity = 64
let ring : event option array ref = ref (Array.make default_capacity None)
let cursor = ref 0  (* next slot to write *)
let seq = ref 0

(* guards ring, cursor and seq: concurrent appends from N domains each
   get a distinct seq and slot *)
let lock = Mcore.Mutex.create ()

let capacity () = Mcore.Mutex.protect lock (fun () -> Array.length !ring)

let set_capacity n =
  if n < 1 then invalid_arg "Recorder.set_capacity: capacity must be >= 1";
  Mcore.Mutex.protect lock @@ fun () ->
  ring := Array.make n None;
  cursor := 0

let clear () =
  Mcore.Mutex.protect lock @@ fun () ->
  Array.fill !ring 0 (Array.length !ring) None;
  cursor := 0

let record ~fingerprint ~shape ~start_ns ~dur_ns ?(rows = 0)
    ?(cache_hit = false) ?(plan = "optimized") ?trace_id
    ?(resilience = no_resilience) outcome =
  if !enabled_flag then begin
    (* the ambient trace context (installed by the wire frontend) is
       the default stamp, so tail capture of errored queries works
       even when head sampling said no: the ring always has the id a
       client can quote back *)
    let trace_id =
      match trace_id with
      | Some t -> t
      | None ->
        Option.value ~default:""
          (Aqua_core.Telemetry.current_trace_id ())
    in
    Mcore.Mutex.protect lock @@ fun () ->
    incr seq;
    let ev =
      {
        seq = !seq;
        fingerprint;
        shape;
        start_ns;
        dur_ns;
        rows;
        cache_hit;
        plan;
        trace_id;
        outcome;
        resilience;
      }
    in
    let r = !ring in
    r.(!cursor) <- Some ev;
    cursor := (!cursor + 1) mod Array.length r
  end

let events () =
  Mcore.Mutex.protect lock @@ fun () ->
  let r = !ring in
  let n = Array.length r in
  let acc = ref [] in
  (* walk backwards from the newest slot so the result is oldest
     first after the fold *)
  for i = 0 to n - 1 do
    match r.((!cursor + n - 1 - i) mod n) with
    | Some ev -> acc := ev :: !acc
    | None -> ()
  done;
  !acc

let last_error () =
  List.fold_left
    (fun acc ev -> match ev.outcome with Failed _ -> Some ev | Done -> acc)
    None (events ())

let event_to_ndjson ev =
  Printf.sprintf
    "{\"ev\":\"query\",\"seq\":%d,\"fp\":\"%s\",\"shape\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"rows\":%d,\"cache_hit\":%b,\"plan\":\"%s\"%s,\"outcome\":\"%s\",\"retries\":%d,\"fallbacks\":%d,\"faults\":%d,\"breaker_rejections\":%d}"
    ev.seq (json_escape ev.fingerprint) (json_escape ev.shape) ev.start_ns
    ev.dur_ns ev.rows ev.cache_hit (json_escape ev.plan)
    (if ev.trace_id = "" then ""
     else Printf.sprintf ",\"trace\":\"%s\"" (json_escape ev.trace_id))
    (match ev.outcome with Done -> "ok" | Failed s -> json_escape s)
    ev.resilience.retries ev.resilience.fallbacks ev.resilience.faults
    ev.resilience.breaker_rejections

let dump ?(reason = "on-demand") () =
  let evs = events () in
  Printf.sprintf "{\"ev\":\"recorder\",\"reason\":\"%s\",\"events\":%d}"
    (json_escape reason) (List.length evs)
  :: List.map event_to_ndjson evs

let dump_sink : (string -> unit) option ref = ref None
let set_dump_sink s = dump_sink := s

let dump_to_sink ?reason () =
  match !dump_sink with
  | None -> false
  | Some sink ->
    List.iter sink (dump ?reason ());
    true
