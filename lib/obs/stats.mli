(** Per-fingerprint query statistics and named latency histograms.

    The driver feeds one {!observe} per executed statement; the
    registry aggregates by {!Fingerprint} digest: call and row counts,
    translation-cache hits, errors bucketed by SQLSTATE class, and
    per-stage (translate / execute / decode / total) latency
    histograms.  Off by default — {!observe} is a single branch until
    {!set_enabled} — so the always-threaded driver path stays cheap.

    Independent of fingerprints, a histogram registry keyed by
    operation name collects latency distributions; installing
    {!install_span_histograms} routes every telemetry span close into
    it, upgrading the span layer from total-ns aggregates to full
    distributions (p50/p90/p99 per stage). *)

(** {1 Switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Per-fingerprint registry} *)

type entry = {
  fingerprint : string;  (** {!Fingerprint.digest} of the shape *)
  shape : string;  (** normalized SQL text *)
  mutable calls : int;
  mutable rows : int;  (** result rows returned across all calls *)
  mutable cache_hits : int;  (** translation-LRU hits *)
  mutable errors : int;  (** calls that raised *)
  error_classes : (string, int) Hashtbl.t;
      (** two-character SQLSTATE class -> count *)
  translate : Histogram.t;
  execute : Histogram.t;
  decode : Histogram.t;
  total : Histogram.t;
}

val observe :
  digest:string ->
  shape:string ->
  ?translate_ns:int64 ->
  ?execute_ns:int64 ->
  ?decode_ns:int64 ->
  ?rows:int ->
  ?cache_hit:bool ->
  ?error:string ->
  total_ns:int64 ->
  unit ->
  unit
(** Record one statement execution.  [error] is the five-character
    SQLSTATE when the statement failed; its class (first two
    characters) is what aggregates.  No-op while disabled. *)

val entries : unit -> entry list
(** First-seen order. *)

val find : string -> entry option
(** Lookup by fingerprint digest. *)

type order = By_total_time | By_p99 | By_calls

val top : ?by:order -> int -> entry list
(** The [n] heaviest fingerprints (default {!By_total_time}). *)

val error_classes : entry -> (string * int) list
(** Sorted by class. *)

(** {1 Named latency histograms} *)

val histogram : string -> Histogram.t
(** The histogram registered under an operation name, created on
    first use (same registration discipline as telemetry counters). *)

val histograms : unit -> (string * Histogram.t) list
(** First-seen order. *)

val install_span_histograms : unit -> unit
(** Set the {!Aqua_core.Telemetry} span observer to record every span
    close into {!histogram} under the span's name. *)

val uninstall_span_histograms : unit -> unit

val reset : unit -> unit
(** Drop all fingerprint entries and named histograms.  Does not
    change the enabled flag or the span observer. *)
