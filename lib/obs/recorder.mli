(** Flight recorder: an always-on bounded ring of recent query events.

    The driver appends one event per executed statement — fingerprint,
    shape, duration, rows, plan note, and the resilience outcome
    (retries, unoptimized fallbacks, injected faults, breaker
    rejections) — into a fixed-capacity ring.  When a SQLSTATE error
    escapes the driver boundary the ring is dumped as NDJSON to the
    configured sink, so the operator sees what the last queries —
    including the failing one — actually did; {!dump} reads it on
    demand.  Appending is O(1) into a preallocated array; with
    recording disabled the probe is a single branch. *)

type resilience = {
  retries : int;
  fallbacks : int;  (** reruns on the unoptimized server *)
  faults : int;  (** failpoint faults injected *)
  breaker_rejections : int;
}

val no_resilience : resilience

type outcome = Done | Failed of string  (** SQLSTATE *)

type event = {
  seq : int;  (** monotonically increasing, survives ring wrap *)
  fingerprint : string;
  shape : string;  (** normalized SQL *)
  start_ns : int64;
  dur_ns : int64;
  rows : int;
  cache_hit : bool;
  plan : string;  (** plan shape note, e.g. ["optimized"] *)
  trace_id : string;  (** [""] when recorded outside a trace context *)
  outcome : outcome;
  resilience : resilience;
}

val set_enabled : bool -> unit
(** Default [true] — the recorder is meant to be always on. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Resize (and clear) the ring.  Default 64 events. *)

val capacity : unit -> int

val record :
  fingerprint:string ->
  shape:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  ?rows:int ->
  ?cache_hit:bool ->
  ?plan:string ->
  ?trace_id:string ->
  ?resilience:resilience ->
  outcome ->
  unit
(** [trace_id] defaults to the ambient
    {!Aqua_core.Telemetry.current_trace_id} (or [""]), so events
    recorded under a wire query carry its trace id without the caller
    threading it — the always-on tail-capture path for errored
    queries, sampled or not. *)

val events : unit -> event list
(** Oldest first; at most {!capacity} entries. *)

val last_error : unit -> event option
(** The most recent [Failed _] event still in the ring. *)

val event_to_ndjson : event -> string
(** One-line JSON object, [{"ev":"query",...}]. *)

val dump : ?reason:string -> unit -> string list
(** A [{"ev":"recorder","reason":…,"events":N}] header line followed
    by every ring event as NDJSON, oldest first. *)

val set_dump_sink : (string -> unit) option -> unit
(** Where {!dump_to_sink} writes, one line per call. *)

val dump_to_sink : ?reason:string -> unit -> bool
(** Dump the ring to the sink; [false] (and no work) when no sink is
    installed.  The driver calls this when a SQLSTATE error escapes. *)

val clear : unit -> unit
(** Empty the ring (the sequence counter keeps advancing). *)
