(** Mergeable fixed-memory log-linear latency histograms.

    Values (nanoseconds, non-negative) are counted into buckets whose
    width grows geometrically: each power-of-two range is split into
    {!subbuckets} linear sub-buckets, so the relative quantization
    error is bounded by [1/subbuckets] (6.25%) across the whole range
    — the HDR-histogram layout.  A histogram is a flat [int array]
    (plus exact count/sum/min/max), so recording is O(1), memory is
    fixed (~6 KB), and two histograms merge by adding bucket counts —
    which makes per-fingerprint and global aggregation associative. *)

type t

val subbuckets : int
(** Linear sub-buckets per power of two (16). *)

val bucket_count : int
(** Total buckets; values beyond the last bucket's range clamp into
    it (the exact maximum is still tracked by {!max_value}). *)

val create : unit -> t

val record : t -> int64 -> unit
(** Count one value.  Negative values clamp to 0. *)

val record_n : t -> int64 -> int -> unit
(** Count the same value [n] times. *)

val count : t -> int

val total : t -> int64
(** Exact sum of recorded values. *)

val min_value : t -> int64
(** Exact; 0 when empty. *)

val max_value : t -> int64
(** Exact; 0 when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val percentile : t -> float -> int64
(** [percentile h p] for [p] in [0,100]: the upper bound of the bucket
    holding the value of rank [ceil(p/100 * count)] — within one
    bucket (≤ 6.25% relative error) of the exact quantile.  0 when
    empty; the exact maximum for the last-ranked value. *)

val p50 : t -> int64
val p90 : t -> int64
val p99 : t -> int64

val bucket_index : int64 -> int
(** The bucket a value falls into (exposed for accuracy tests). *)

val bucket_upper_bound : int -> int64
(** Largest value counted by bucket [i]. *)

val merge_into : into:t -> t -> unit
(** Add every bucket and the exact aggregates of the second histogram
    into [into]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples. *)

val reset : t -> unit
val is_empty : t -> bool

val nonzero_buckets : t -> (int64 * int) list
(** [(upper_bound, count)] for every non-empty bucket, ascending —
    the sparse form the Prometheus and JSON renderers emit. *)

val quantiles_to_json : t -> string
(** One-line JSON object:
    [{"count":N,"total_ns":…,"min_ns":…,"p50_ns":…,"p90_ns":…,
      "p99_ns":…,"max_ns":…}]. *)
