(** Logical optimizer over the XQuery AST.

    Runs before evaluation ([Eval]) or compilation ([Compile]) and
    rewrites FLWOR blocks: conjunctive [where] clauses are split and
    pushed to the earliest position where their free variables are
    bound, and [for]+[where] equality patterns over independent clause
    variables are fused into the [Ast.Hash_join] physical operator
    (hash table on the build side keyed by [Atomic.hash_key], probed by
    the incoming tuple stream — O(n+m) instead of the O(n*m) nested
    loop).

    A final scan-sharing pass hoists parameterless data-service calls
    that occur more than once in the plan (self-joins, uncorrelated
    subqueries) into a single [let]-bound materialization at the top,
    so the service is invoked once per plan instead of once per
    occurrence.

    The pass is purely structural and never evaluates expressions. *)

module Vars : Set.S with type elt = string

type report = {
  pushed_predicates : int;  (** conjuncts moved earlier in a pipeline *)
  hash_joins : int;         (** [For]+[Where] pairs fused into [Hash_join] *)
  shared_scans : int;       (** repeated scans hoisted into a shared [let] *)
  notes : string list;      (** human-readable one-liners *)
}

val empty_report : report

val scan_var : string -> string
(** The hoisted binding name for a shared scan of the named function
    ('#'-prefixed, so it can never collide with parsed identifiers). *)

val expr :
  ?share_scans:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  Aqua_xquery.Ast.expr ->
  Aqua_xquery.Ast.expr * report
(** Optimize an expression bottom-up.  [share_scans] (default [true])
    controls the scan-sharing hoist.  [vectorize] and [columnar]
    (default [true]) do not change the plan — execution strategy is
    chosen at compile time — but record the batch-pipeline shape
    (current {!Batch.size}, per-operator column materialization and
    kernel selection) in the report notes so EXPLAIN-style consumers
    describe how the plan will run. *)

val query :
  ?share_scans:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  Aqua_xquery.Ast.query ->
  Aqua_xquery.Ast.query * report
(** Optimize a query body (prolog is untouched). *)

(** {1 Columnar-engine analyses}

    Used by {!Compile}'s columnar pipeline; exposed here because they
    are purely structural AST analyses. *)

type kernel_spec = {
  k_kind : Kernels.kind;
  k_step : string option;
      (** [None] = the whole partition; [Some name] = the child-step
          column [$partition/name] *)
  k_var : string;  (** the synthetic ['#agg:'] variable bound instead *)
}

val spec_label : kernel_spec -> string
(** e.g. ["count"] or ["sum(PAYMENT)"], for plans and analyze output. *)

val group_kernels :
  partition:string ->
  Aqua_xquery.Ast.clause list ->
  Aqua_xquery.Ast.expr ->
  (kernel_spec list * Aqua_xquery.Ast.clause list * Aqua_xquery.Ast.expr)
  option
(** [group_kernels ~partition rest return] rewrites every use of the
    partition variable in the post-group remainder into a read of a
    synthetic kernel variable, when — and only when — every use is one
    of the translator's aggregate shapes ([fn:count]/[fn:sum]/[fn:avg]/
    [fn:min]/[fn:max]/[fn:empty]/[fn:exists] over the partition or one
    child step of it, including the [if (fn:empty(c)) then () else
    fn:sum(c)] SQL NULL shape).  Returns the kernel inventory plus the
    rewritten remainder, or [None] when any other use (or a rebinding
    of the partition name) forces the materializing path. *)

val columnar_shape : Aqua_xquery.Ast.expr -> string list
(** EXPLAIN-style one-liners describing the columnar pipeline shape:
    columns carried vs pruned per expander/barrier and the kernels
    selected per group clause. *)

val free_vars : Aqua_xquery.Ast.expr -> Vars.t
(** Precise free variables of an expression, with the context item "."
    treated as a variable.  Unlike [Ast.free_vars] this respects
    binding structure (FLWOR clauses, quantifiers, predicates) and the
    BEA group-by scoping rule (pre-group bindings do not survive). *)

val scoping_hazard : bound:Vars.t -> Aqua_xquery.Ast.expr -> string option
(** [scoping_hazard ~bound e] is [Some v] when a [where] clause inside
    [e] references [$v] before the clause of the same FLWOR that binds
    it (the naive clause fold would silently filter every tuple out).
    [bound] seeds the statically-known outer bindings. *)
