(** Logical optimizer over the XQuery AST.

    Runs before evaluation ([Eval]) or compilation ([Compile]) and
    rewrites FLWOR blocks: conjunctive [where] clauses are split and
    pushed to the earliest position where their free variables are
    bound, and [for]+[where] equality patterns over independent clause
    variables are fused into the [Ast.Hash_join] physical operator
    (hash table on the build side keyed by [Atomic.hash_key], probed by
    the incoming tuple stream — O(n+m) instead of the O(n*m) nested
    loop).

    A final scan-sharing pass hoists parameterless data-service calls
    that occur more than once in the plan (self-joins, uncorrelated
    subqueries) into a single [let]-bound materialization at the top,
    so the service is invoked once per plan instead of once per
    occurrence.

    The pass is purely structural and never evaluates expressions. *)

module Vars : Set.S with type elt = string

type report = {
  pushed_predicates : int;  (** conjuncts moved earlier in a pipeline *)
  hash_joins : int;         (** [For]+[Where] pairs fused into [Hash_join] *)
  shared_scans : int;       (** repeated scans hoisted into a shared [let] *)
  notes : string list;      (** human-readable one-liners *)
}

val empty_report : report

val scan_var : string -> string
(** The hoisted binding name for a shared scan of the named function
    ('#'-prefixed, so it can never collide with parsed identifiers). *)

val expr :
  ?share_scans:bool ->
  ?vectorize:bool ->
  Aqua_xquery.Ast.expr ->
  Aqua_xquery.Ast.expr * report
(** Optimize an expression bottom-up.  [share_scans] (default [true])
    controls the scan-sharing hoist.  [vectorize] (default [true])
    does not change the plan — execution strategy is chosen at
    compile time — but records the batch-pipeline shape (current
    {!Batch.size}) in the report notes so EXPLAIN-style consumers
    describe how the plan will run. *)

val query :
  ?share_scans:bool ->
  ?vectorize:bool ->
  Aqua_xquery.Ast.query ->
  Aqua_xquery.Ast.query * report
(** Optimize a query body (prolog is untouched). *)

val free_vars : Aqua_xquery.Ast.expr -> Vars.t
(** Precise free variables of an expression, with the context item "."
    treated as a variable.  Unlike [Ast.free_vars] this respects
    binding structure (FLWOR clauses, quantifiers, predicates) and the
    BEA group-by scoping rule (pre-group bindings do not survive). *)

val scoping_hazard : bound:Vars.t -> Aqua_xquery.Ast.expr -> string option
(** [scoping_hazard ~bound e] is [Some v] when a [where] clause inside
    [e] references [$v] before the clause of the same FLWOR that binds
    it (the naive clause fold would silently filter every tuple out).
    [bound] seeds the statically-known outer bindings. *)
