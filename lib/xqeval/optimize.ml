(* Logical optimizer over the XQuery AST, run before evaluation or
   compilation.  Three rewrites, all scoped to FLWOR blocks:

   1. Predicate pushdown: conjunctive [where] clauses are split into
      their conjuncts and each conjunct is hoisted to the earliest
      clause position at which all of its free variables are bound.
      [group] clauses are barriers (filtering before grouping changes
      the groups); [order by] is not (filtering commutes with a stable
      sort).

   2. Hash equi-join recognition: a [for $b in SRC] whose source does
      not depend on earlier same-FLWOR bindings, followed by a
      [where P eq/= B] where one side depends exactly on [$b] and the
      other only on earlier bindings, becomes a [Hash_join] physical
      operator.  The build side hashes SRC once by [Atomic.hash_key];
      each incoming tuple probes instead of rescanning, turning the
      O(n*m) nested loop into O(n+m).

   3. A scoping check ([scoping_hazard]) used by both evaluators to
      reject [where] clauses that reference a variable bound only by a
      later clause of the same FLWOR — the naive clause fold would
      otherwise silently filter everything out.

   The pass is purely structural: it never evaluates expressions, so it
   is safe to run on queries with unresolved external functions. *)

module X = Aqua_xquery.Ast
module Vars = Set.Make (String)

type report = {
  pushed_predicates : int;  (** conjuncts moved earlier in a pipeline *)
  hash_joins : int;         (** [For]+[Where] pairs fused into [Hash_join] *)
  shared_scans : int;       (** repeated scans hoisted into a shared [let] *)
  notes : string list;      (** human-readable one-liners, newest first *)
}

let empty_report =
  { pushed_predicates = 0; hash_joins = 0; shared_scans = 0; notes = [] }

type acc = {
  mutable pushed : int;
  mutable joins : int;
  mutable shared : int;
  mutable notes : string list;
}

(* ------------------------------------------------------------------ *)
(* Precise free variables                                             *)

(* [ast.ml]'s [free_vars] is deliberately conservative (it includes
   bound variables); the optimizer needs the real thing, including the
   context item "." treated as a variable and the scoping quirk of the
   BEA group clause (pre-group bindings do not survive grouping). *)

let rec fv bound acc (e : X.expr) : Vars.t =
  match e with
  | X.Literal _ | X.Text _ -> acc
  | X.Var v -> if Vars.mem v bound then acc else Vars.add v acc
  | X.Context_item -> if Vars.mem "." bound then acc else Vars.add "." acc
  | X.Seq es -> List.fold_left (fv bound) acc es
  | X.Flwor f -> fv_flwor bound acc f
  | X.Path (base, steps) ->
    let acc = fv bound acc base in
    let bound_dot = Vars.add "." bound in
    List.fold_left
      (fun acc (s : X.step) -> List.fold_left (fv bound_dot) acc s.predicates)
      acc steps
  | X.Call (_, args) -> List.fold_left (fv bound) acc args
  | X.Elem { content; _ } -> List.fold_left (fv bound) acc content
  | X.If (c, t, e) -> fv bound (fv bound (fv bound acc c) t) e
  | X.Binop (_, a, b) -> fv bound (fv bound acc a) b
  | X.Neg e -> fv bound acc e
  | X.Quantified { bindings; satisfies; _ } ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) (v, src) -> (Vars.add v bound, fv bound acc src))
        (bound, acc) bindings
    in
    fv bound acc satisfies
  | X.Filter (base, pred) ->
    fv (Vars.add "." bound) (fv bound acc base) pred

and fv_flwor bound acc (f : X.flwor) : Vars.t =
  let entry_bound = bound in
  let bound, acc =
    List.fold_left
      (fun (bound, acc) clause ->
        match clause with
        | X.For { var; source } -> (Vars.add var bound, fv bound acc source)
        | X.Let { var; value } -> (Vars.add var bound, fv bound acc value)
        | X.Where cond -> (bound, fv bound acc cond)
        | X.Group { grouped; partition; keys } ->
          (* the clause *reads* the grouped variable (its values feed
             the partition) — counting that use is what lets the
             required-columns analysis keep the grouped column alive
             up to the barrier *)
          let acc =
            if Vars.mem grouped bound then acc else Vars.add grouped acc
          in
          let acc =
            List.fold_left (fun acc (k, _) -> fv bound acc k) acc keys
          in
          (* after grouping only the FLWOR's entry environment plus the
             key variables and the partition remain bound *)
          let bound' =
            List.fold_left
              (fun b (_, kv) -> Vars.add kv b)
              (Vars.add partition entry_bound)
              keys
          in
          (bound', acc)
        | X.Order_by specs ->
          (bound, List.fold_left (fun acc s -> fv bound acc s.X.key) acc specs)
        | X.Hash_join { var; source; build_key; probe_key; _ } ->
          let acc = fv bound acc source in
          let acc = fv bound acc probe_key in
          let acc = fv (Vars.add var bound) acc build_key in
          (Vars.add var bound, acc))
      (bound, acc) f.clauses
  in
  fv bound acc f.return

let free_vars e = fv Vars.empty Vars.empty e

(* ------------------------------------------------------------------ *)
(* Aggregation-kernel recognition (columnar GROUP BY)                 *)

(* The columnar engine can fold the translator's aggregate shapes
   incrementally per grouped tuple (see Kernels) instead of
   materializing the whole partition sequence per group.  A partition
   use is kernelizable when it is exactly one of the shapes the
   generator emits:

     fn:count($p)            fn:count($p/COL)
     fn:sum($p/COL)          if (fn:empty($p/COL)) then () else fn:sum($p/COL)
     fn:avg / fn:min / fn:max ($p/COL)
     fn:empty($p) / fn:exists($p)   (and the /COL variants)

   [group_kernels] rewrites every such use in the post-group remainder
   into a read of a synthetic '#agg:' variable and returns the kernel
   inventory; any other use of the partition (or a rebinding of its
   name) bails the whole group back to the materializing path, so the
   rewrite is all-or-nothing and the oracle semantics are preserved
   exactly. *)

type kernel_spec = {
  k_kind : Kernels.kind;
  k_step : string option;
      (** [None] = the whole partition; [Some name] = the child-step
          column [$p/name] *)
  k_var : string;  (** the synthetic variable the rewrite binds *)
}

let spec_label s =
  match s.k_step with
  | None -> Kernels.name s.k_kind
  | Some col -> Printf.sprintf "%s(%s)" (Kernels.name s.k_kind) col

exception Not_kernelizable

let group_kernels ~partition (clauses : X.clause list) (return_ : X.expr) :
    (kernel_spec list * X.clause list * X.expr) option =
  let specs = ref [] in
  let nspecs = ref 0 in
  let spec kind step =
    match
      List.find_opt (fun s -> s.k_kind = kind && s.k_step = step) !specs
    with
    | Some s -> s.k_var
    | None ->
      let v = Printf.sprintf "#agg:%s:%d" partition !nspecs in
      incr nspecs;
      specs := { k_kind = kind; k_step = step; k_var = v } :: !specs;
      v
  in
  let kind_of = function
    | "fn:count" -> Some Kernels.K_count
    | "fn:sum" -> Some Kernels.K_sum
    | "fn:avg" -> Some Kernels.K_avg
    | "fn:min" -> Some Kernels.K_min
    | "fn:max" -> Some Kernels.K_max
    | "fn:empty" -> Some Kernels.K_empty
    | "fn:exists" -> Some Kernels.K_exists
    | _ -> None
  in
  (* a kernelizable column read: the partition itself or one
     unpredicated child step over it *)
  let column = function
    | X.Var v when v = partition -> Some None
    | X.Path (X.Var v, [ { X.name; predicates = [] } ]) when v = partition ->
      Some (Some name)
    | _ -> None
  in
  let rebind v = if v = partition then raise Not_kernelizable in
  let rec rw (e : X.expr) : X.expr =
    match e with
    (* the translator's SQL NULL shape for SUM, fused into one kernel:
       SUM over the empty set is NULL, not 0 *)
    | X.If (X.Call ("fn:empty", [ g ]), X.Seq [], X.Call ("fn:sum", [ s ]))
      when g = s && column g <> None ->
      X.Var (spec Kernels.K_sum_null (Option.get (column g)))
    | X.Call (name, [ arg ]) when kind_of name <> None && column arg <> None ->
      X.Var (spec (Option.get (kind_of name)) (Option.get (column arg)))
    | X.Var v when v = partition -> raise Not_kernelizable
    | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> e
    | X.Seq es -> X.Seq (List.map rw es)
    | X.Flwor f ->
      X.Flwor { clauses = List.map rw_clause f.clauses; return = rw f.return }
    | X.Path (base, steps) ->
      X.Path
        ( rw base,
          List.map
            (fun (s : X.step) ->
              { s with X.predicates = List.map rw s.predicates })
            steps )
    | X.Call (name, args) -> X.Call (name, List.map rw args)
    | X.Elem { name; content } -> X.Elem { name; content = List.map rw content }
    | X.If (c, t, e) -> X.If (rw c, rw t, rw e)
    | X.Binop (op, a, b) -> X.Binop (op, rw a, rw b)
    | X.Neg e -> X.Neg (rw e)
    | X.Quantified { every; bindings; satisfies } ->
      List.iter (fun (v, _) -> rebind v) bindings;
      X.Quantified
        {
          every;
          bindings = List.map (fun (v, e) -> (v, rw e)) bindings;
          satisfies = rw satisfies;
        }
    | X.Filter (base, pred) -> X.Filter (rw base, rw pred)
  and rw_clause = function
    | X.For { var; source } ->
      rebind var;
      X.For { var; source = rw source }
    | X.Let { var; value } ->
      rebind var;
      X.Let { var; value = rw value }
    | X.Where cond -> X.Where (rw cond)
    | X.Group { grouped; partition = p2; keys } ->
      (* a nested group collecting or rebinding our partition is a
         non-kernel use *)
      rebind grouped;
      rebind p2;
      List.iter (fun (_, kv) -> rebind kv) keys;
      X.Group { grouped; partition = p2; keys = List.map (fun (k, v) -> (rw k, v)) keys }
    | X.Order_by specs ->
      X.Order_by
        (List.map (fun (s : X.order_spec) -> { s with X.key = rw s.X.key }) specs)
    | X.Hash_join { var; source; build_key; probe_key; value_cmp } ->
      rebind var;
      X.Hash_join
        {
          var;
          source = rw source;
          build_key = rw build_key;
          probe_key = rw probe_key;
          value_cmp;
        }
  in
  match (List.map rw_clause clauses, rw return_) with
  | clauses', return' -> Some (List.rev !specs, clauses', return')
  | exception Not_kernelizable -> None

(* ------------------------------------------------------------------ *)
(* Per-clause binding bookkeeping                                     *)

(* Variables a clause binds for the clauses after it. *)
let clause_binds = function
  | X.For { var; _ } | X.Let { var; _ } | X.Hash_join { var; _ } -> [ var ]
  | X.Where _ | X.Order_by _ -> []
  | X.Group { partition; keys; _ } ->
    partition :: List.map snd keys

let is_barrier = function X.Group _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Predicate pushdown                                                 *)

let rec split_conjuncts e =
  match e with
  | X.Binop (X.B_and, a, b) -> split_conjuncts a @ split_conjuncts b
  | _ -> [ e ]

(* Rebuild a clause list with every [where] conjunct placed directly
   after the latest of: the last clause (at or before its original
   position) binding one of its free variables, and the last barrier
   before its original position.  Conjuncts that reference a variable
   bound only *later* in the same FLWOR stay put — the scoping check
   turns those into a clear error at evaluation time. *)
let push_predicates acc clauses =
  let arr = Array.of_list clauses in
  let n = Array.length arr in
  (* buckets.(j) = wheres to emit right after clause j-1 (j=0: first) *)
  let buckets = Array.make (n + 1) [] in
  Array.iteri
    (fun i clause ->
      match clause with
      | X.Where cond ->
        List.iter
          (fun conjunct ->
            let fvs = fv Vars.empty Vars.empty conjunct in
            let later =
              (* vars first bound after position i *)
              let rec collect j s =
                if j >= n then s
                else
                  collect (j + 1)
                    (List.fold_left
                       (fun s v -> Vars.add v s)
                       s
                       (clause_binds arr.(j)))
              in
              collect (i + 1) Vars.empty
            in
            let target = ref 0 in
            let hazard = ref false in
            for j = 0 to i - 1 do
              if is_barrier arr.(j) then target := max !target (j + 1);
              List.iter
                (fun v -> if Vars.mem v fvs then target := max !target (j + 1))
                (clause_binds arr.(j))
            done;
            (* a free var not bound by any clause up to i but bound by a
               later clause: leave the conjunct in place *)
            Vars.iter
              (fun v ->
                let bound_before =
                  let rec any j =
                    j < i
                    && (List.mem v (clause_binds arr.(j)) || any (j + 1))
                  in
                  any 0
                in
                if (not bound_before) && Vars.mem v later then hazard := true)
              fvs;
            let place = if !hazard then i else !target in
            if place < i then acc.pushed <- acc.pushed + 1;
            buckets.(place) <- X.Where conjunct :: buckets.(place))
          (split_conjuncts cond)
      | _ -> ())
    arr;
  let out = ref [] in
  for j = n downto 0 do
    (* non-where clause at position j (none for j = n) *)
    (match if j < n then Some arr.(j) else None with
    | Some (X.Where _) | None -> ()
    | Some c -> out := c :: !out);
    (* buckets hold wheres in reverse insertion order; rev_append
       restores original relative order *)
    out := List.rev_append buckets.(j) !out
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Hash equi-join recognition                                         *)

(* Pipeline-relative free variables: the subset of [e]'s free vars that
   are bound by this FLWOR's earlier clauses (given in [pipeline]). *)
let pipeline_fv pipeline e = Vars.inter (free_vars e) pipeline

let recognize_joins acc clauses =
  let rec scan bound_before = function
    | [] -> []
    | (X.For { var; source } as forc) :: rest
      when Vars.is_empty (pipeline_fv bound_before source)
           && not (Vars.is_empty bound_before) -> (
      (* look through the run of consecutive wheres following the for *)
      let rec find_eq seen = function
        | X.Where (X.Binop (((X.B_general X.Eq | X.B_value X.Eq) as op), l, r))
          :: tail -> (
          let value_cmp = match op with X.B_value _ -> true | _ -> false in
          let lfv = pipeline_fv (Vars.add var bound_before) l in
          let rfv = pipeline_fv (Vars.add var bound_before) r in
          let solo s = Vars.equal s (Vars.singleton var) in
          let probe_ok s =
            (not (Vars.mem var s)) && not (Vars.is_empty s)
          in
          if solo lfv && probe_ok rfv then
            Some (l, r, value_cmp, List.rev seen, tail)
          else if solo rfv && probe_ok lfv then
            Some (r, l, value_cmp, List.rev seen, tail)
          else
            find_eq
              (X.Where (X.Binop (op, l, r)) :: seen)
              tail)
        | (X.Where _ as w) :: tail -> find_eq (w :: seen) tail
        | _ -> None
      in
      match find_eq [] rest with
      | Some (build_key, probe_key, value_cmp, kept_wheres, tail) ->
        acc.joins <- acc.joins + 1;
        acc.notes <-
          Printf.sprintf "hash equi-join on $%s (%s comparison)" var
            (if value_cmp then "value" else "general")
          :: acc.notes;
        let hj =
          X.Hash_join { var; source; build_key; probe_key; value_cmp }
        in
        hj :: kept_wheres @ scan (Vars.add var bound_before) tail
      | None ->
        forc :: scan (Vars.add var bound_before) rest)
    | clause :: rest ->
      let bound_before =
        match clause with
        | X.Group { partition; keys; _ } ->
          (* pre-group bindings do not survive the group clause *)
          List.fold_left
            (fun b (_, kv) -> Vars.add kv b)
            (Vars.singleton partition)
            keys
        | _ ->
          List.fold_left
            (fun b v -> Vars.add v b)
            bound_before (clause_binds clause)
      in
      clause :: scan bound_before rest
  in
  scan Vars.empty clauses

(* ------------------------------------------------------------------ *)
(* Bottom-up rewrite                                                  *)

let rec rewrite acc (e : X.expr) : X.expr =
  match e with
  | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> e
  | X.Seq es -> X.Seq (List.map (rewrite acc) es)
  | X.Flwor f ->
    let clauses = List.map (rewrite_clause acc) f.clauses in
    let return = rewrite acc f.return in
    let clauses = push_predicates acc clauses in
    let clauses = recognize_joins acc clauses in
    X.Flwor { clauses; return }
  | X.Path (base, steps) ->
    X.Path
      ( rewrite acc base,
        List.map
          (fun (s : X.step) ->
            { s with X.predicates = List.map (rewrite acc) s.predicates })
          steps )
  | X.Call (name, args) -> X.Call (name, List.map (rewrite acc) args)
  | X.Elem { name; content } ->
    X.Elem { name; content = List.map (rewrite acc) content }
  | X.If (c, t, e) -> X.If (rewrite acc c, rewrite acc t, rewrite acc e)
  | X.Binop (op, a, b) -> X.Binop (op, rewrite acc a, rewrite acc b)
  | X.Neg e -> X.Neg (rewrite acc e)
  | X.Quantified { every; bindings; satisfies } ->
    X.Quantified
      {
        every;
        bindings = List.map (fun (v, e) -> (v, rewrite acc e)) bindings;
        satisfies = rewrite acc satisfies;
      }
  | X.Filter (base, pred) -> X.Filter (rewrite acc base, rewrite acc pred)

and rewrite_clause acc = function
  | X.For { var; source } -> X.For { var; source = rewrite acc source }
  | X.Let { var; value } -> X.Let { var; value = rewrite acc value }
  | X.Where cond -> X.Where (rewrite acc cond)
  | X.Group { grouped; partition; keys } ->
    X.Group
      {
        grouped;
        partition;
        keys = List.map (fun (k, v) -> (rewrite acc k, v)) keys;
      }
  | X.Order_by specs ->
    X.Order_by
      (List.map (fun (s : X.order_spec) -> { s with X.key = rewrite acc s.X.key }) specs)
  | X.Hash_join { var; source; build_key; probe_key; value_cmp } ->
    X.Hash_join
      {
        var;
        source = rewrite acc source;
        build_key = rewrite acc build_key;
        probe_key = rewrite acc probe_key;
        value_cmp;
      }

(* ------------------------------------------------------------------ *)
(* Per-plan scan sharing                                               *)

(* A "scan" is a parameterless prefixed call that is not a built-in
   function — i.e. a data-service function invocation that returns the
   same sequence every time within one plan.  When the same scan
   appears more than once (a self-join, an uncorrelated subquery, two
   branches of a union), every invocation re-fetches through the DSP
   server; hoisting them into one [let]-bound materialization at the
   top of the plan fetches once and shares the sequence.

   The hoisted call has no free variables, so lifting it to the top is
   always scope-safe.  Eager hoisting does trade laziness for sharing,
   so a scan is hoisted only when at least one of its occurrences sits
   in an always-evaluated position (an "anchor"): then the unshared
   plan would have invoked the service at least once anyway, and the
   hoist can only ever *reduce* the number of invocations.  A scan
   whose every occurrence is conditional — never-taken [if] branches,
   short-circuited [and]/[or] operands, tuple-driven FLWOR positions,
   lazily-built hash-join sides — stays in place: hoisting it could
   invoke a breaker-open or failpoint-armed service that the plan
   would never have touched. *)

let is_scan_call name args =
  args = [] && String.contains name ':' && Functions.lookup name = None

(* Variable names carry a '#' so they can never collide with anything
   the parser produces (identifiers only). *)
let scan_var name = "#scan:" ^ name

let share_scans_pass acc (e : X.expr) : X.expr =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  (* scans with at least one anchor occurrence (a position evaluated
     whenever the whole plan is) — the precondition for eager hoisting *)
  let anchored : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let first_seen = ref [] in
  let note ~cond name =
    (match Hashtbl.find_opt counts name with
    | Some n -> Hashtbl.replace counts name (n + 1)
    | None ->
      Hashtbl.add counts name 1;
      first_seen := name :: !first_seen);
    if not cond then Hashtbl.replace anchored name ()
  in
  (* [cond] marks positions the evaluators may skip: if-branches, the
     short-circuited right operand of and/or, everything driven by a
     FLWOR's tuple stream (all clauses after the first, the return),
     predicates, non-leading quantifier bindings and satisfies
     clauses, and the lazily-built sides of a hash join. *)
  let rec count cond (e : X.expr) =
    match e with
    | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> ()
    | X.Seq es -> List.iter (count cond) es
    | X.Flwor f ->
      (match f.clauses with
      | first :: rest ->
        count_clause cond first;
        List.iter (count_clause true) rest
      | [] -> ());
      count true f.return
    | X.Path (base, steps) ->
      count cond base;
      List.iter (fun (s : X.step) -> List.iter (count true) s.predicates) steps
    | X.Call (name, args) ->
      if is_scan_call name args then note ~cond name;
      List.iter (count cond) args
    | X.Elem { content; _ } -> List.iter (count cond) content
    | X.If (c, t, e) ->
      count cond c;
      count true t;
      count true e
    | X.Binop ((X.B_and | X.B_or), a, b) ->
      count cond a;
      count true b
    | X.Binop (_, a, b) -> count cond a; count cond b
    | X.Neg e -> count cond e
    | X.Quantified { bindings; satisfies; _ } ->
      (match bindings with
      | (_, src) :: rest ->
        count cond src;
        List.iter (fun (_, src) -> count true src) rest
      | [] -> ());
      count true satisfies
    | X.Filter (base, pred) ->
      count cond base;
      count true pred
  and count_clause cond = function
    (* a leading for/let source (and a leading where, probed by the
       single initial tuple) runs whenever the FLWOR does; grouping and
       ordering keys and hash-join sides are tuple- or demand-driven *)
    | X.For { source = e; _ } | X.Let { value = e; _ } | X.Where e ->
      count cond e
    | X.Group { keys; _ } -> List.iter (fun (k, _) -> count true k) keys
    | X.Order_by specs ->
      List.iter (fun (s : X.order_spec) -> count true s.X.key) specs
    | X.Hash_join { source; build_key; probe_key; _ } ->
      count true source;
      count true build_key;
      count true probe_key
  in
  count false e;
  let shared =
    List.filter
      (fun n -> Hashtbl.find counts n >= 2 && Hashtbl.mem anchored n)
      (List.rev !first_seen)
  in
  if shared = [] then e
  else begin
    let rec sub (e : X.expr) : X.expr =
      match e with
      | X.Call (name, args) when is_scan_call name args && List.mem name shared
        ->
        X.Var (scan_var name)
      | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> e
      | X.Seq es -> X.Seq (List.map sub es)
      | X.Flwor f ->
        X.Flwor
          { clauses = List.map sub_clause f.clauses; return = sub f.return }
      | X.Path (base, steps) ->
        X.Path
          ( sub base,
            List.map
              (fun (s : X.step) ->
                { s with X.predicates = List.map sub s.predicates })
              steps )
      | X.Call (name, args) -> X.Call (name, List.map sub args)
      | X.Elem { name; content } ->
        X.Elem { name; content = List.map sub content }
      | X.If (c, t, e) -> X.If (sub c, sub t, sub e)
      | X.Binop (op, a, b) -> X.Binop (op, sub a, sub b)
      | X.Neg e -> X.Neg (sub e)
      | X.Quantified { every; bindings; satisfies } ->
        X.Quantified
          {
            every;
            bindings = List.map (fun (v, src) -> (v, sub src)) bindings;
            satisfies = sub satisfies;
          }
      | X.Filter (base, pred) -> X.Filter (sub base, sub pred)
    and sub_clause = function
      | X.For { var; source } -> X.For { var; source = sub source }
      | X.Let { var; value } -> X.Let { var; value = sub value }
      | X.Where cond -> X.Where (sub cond)
      | X.Group { grouped; partition; keys } ->
        X.Group
          { grouped; partition; keys = List.map (fun (k, v) -> (sub k, v)) keys }
      | X.Order_by specs ->
        X.Order_by
          (List.map
             (fun (s : X.order_spec) -> { s with X.key = sub s.X.key })
             specs)
      | X.Hash_join { var; source; build_key; probe_key; value_cmp } ->
        X.Hash_join
          {
            var;
            source = sub source;
            build_key = sub build_key;
            probe_key = sub probe_key;
            value_cmp;
          }
    in
    acc.shared <- acc.shared + List.length shared;
    List.iter
      (fun n ->
        acc.notes <-
          Printf.sprintf "shared scan %s (%d occurrences)" n
            (Hashtbl.find counts n)
          :: acc.notes)
      shared;
    X.Flwor
      {
        clauses =
          List.map
            (fun n -> X.Let { var = scan_var n; value = X.Call (n, []) })
            shared;
        return = sub e;
      }
  end

(* ------------------------------------------------------------------ *)
(* Columnar pipeline shape (EXPLAIN-style notes)                      *)

(* Mirrors, in name-set form, the decisions the columnar compiler
   makes: per expander/barrier, how many of the visible columns the
   required-columns analysis actually carries downstream, and for each
   group clause which aggregation kernels were selected.  Purely
   descriptive — the compiler recomputes the same analysis over real
   slots. *)
let columnar_shape (e : X.expr) : string list =
  let out = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let clause_label = function
    | X.For { var; _ } -> Printf.sprintf "for $%s" var
    | X.Let { var; _ } -> Printf.sprintf "let $%s" var
    | X.Where _ -> "where"
    | X.Order_by _ -> "order by"
    | X.Group { partition; _ } -> Printf.sprintf "group by -> $%s" partition
    | X.Hash_join { var; _ } -> Printf.sprintf "hash-join $%s" var
  in
  let rec walk (e : X.expr) =
    match e with
    | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> ()
    | X.Seq es -> List.iter walk es
    | X.Flwor f -> walk_flwor f
    | X.Path (base, steps) ->
      walk base;
      List.iter (fun (s : X.step) -> List.iter walk s.predicates) steps
    | X.Call (_, args) -> List.iter walk args
    | X.Elem { content; _ } -> List.iter walk content
    | X.If (c, t, e) -> walk c; walk t; walk e
    | X.Binop (_, a, b) -> walk a; walk b
    | X.Neg e -> walk e
    | X.Quantified { bindings; satisfies; _ } ->
      List.iter (fun (_, src) -> walk src) bindings;
      walk satisfies
    | X.Filter (base, pred) -> walk base; walk pred
  and walk_flwor (f : X.flwor) =
    let entry_used = fv Vars.empty Vars.empty (X.Flwor f) in
    let arr = Array.of_list f.clauses in
    let n = Array.length arr in
    let remainder i =
      (* live columns after clause i: free vars of the rest of the
         pipeline plus the return *)
      let rest = Array.to_list (Array.sub arr (i + 1) (n - i - 1)) in
      fv Vars.empty Vars.empty (X.Flwor { clauses = rest; return = f.return })
    in
    let visible = ref entry_used in
    Array.iteri
      (fun i clause ->
        (match clause with
        | X.Where _ | X.Let _ -> () (* operate in place: nothing copied *)
        | X.Group { grouped = _; partition; keys } ->
          let post =
            List.fold_left
              (fun s (_, kv) -> Vars.add kv s)
              (Vars.add partition entry_used)
              keys
          in
          let live = Vars.inter (remainder i) post in
          (match
             group_kernels ~partition
               (Array.to_list (Array.sub arr (i + 1) (n - i - 1)))
               f.return
           with
          | Some (specs, _, _) ->
            emit
              "columnar: %s kernels [%s]; partition not materialized, %d \
               live column(s) carried"
              (clause_label clause)
              (if specs = [] then "none"
               else String.concat "; " (List.map spec_label specs))
              (Vars.cardinal (Vars.remove partition live))
          | None ->
            emit
              "columnar: %s materializes the partition (aggregates not \
               kernelizable); %d live column(s) carried"
              (clause_label clause) (Vars.cardinal live));
          visible := post
        | X.For { var; _ } | X.Hash_join { var; _ } ->
          let vis = Vars.add var !visible in
          let live = Vars.inter (remainder i) vis in
          emit "columnar: %s carries %d of %d column(s) (pruned %d)"
            (clause_label clause) (Vars.cardinal live) (Vars.cardinal vis)
            (Vars.cardinal (Vars.diff vis live));
          visible := vis
        | X.Order_by _ ->
          let live = Vars.inter (remainder i) !visible in
          emit "columnar: %s retains %d of %d column(s) (pruned %d)"
            (clause_label clause) (Vars.cardinal live)
            (Vars.cardinal !visible)
            (Vars.cardinal (Vars.diff !visible live)));
        (* recurse into the clause's subexpressions for nested FLWORs *)
        match clause with
        | X.For { source; _ } -> walk source
        | X.Let { value; _ } -> walk value
        | X.Where cond -> walk cond
        | X.Group { keys; _ } -> List.iter (fun (k, _) -> walk k) keys
        | X.Order_by specs ->
          List.iter (fun (s : X.order_spec) -> walk s.X.key) specs
        | X.Hash_join { source; build_key; probe_key; _ } ->
          walk source; walk build_key; walk probe_key)
      arr;
    walk f.return
  in
  walk e;
  List.rev !out

let expr ?(share_scans = true) ?(vectorize = true) ?(columnar = true) e =
  let acc = { pushed = 0; joins = 0; shared = 0; notes = [] } in
  let e = rewrite acc e in
  let e = if share_scans then share_scans_pass acc e else e in
  if vectorize then
    acc.notes <-
      Printf.sprintf
        "flwor pipelines execute as %d-row batches (selection-vector \
         filtering)"
        (Batch.size ())
      :: acc.notes;
  if vectorize && columnar then begin
    acc.notes <-
      "columnar layout: one value vector per bound variable \
       (required-column pruning active)"
      :: acc.notes;
    List.iter (fun n -> acc.notes <- n :: acc.notes) (columnar_shape e)
  end;
  let module T = Aqua_core.Telemetry in
  T.add T.c_pushdown_rewrites acc.pushed;
  T.add T.c_hash_join_rewrites acc.joins;
  T.add T.c_shared_scan_rewrites acc.shared;
  ( e,
    {
      pushed_predicates = acc.pushed;
      hash_joins = acc.joins;
      shared_scans = acc.shared;
      notes = List.rev acc.notes;
    } )

let query ?share_scans ?vectorize ?columnar (q : X.query) =
  let body, report = expr ?share_scans ?vectorize ?columnar q.X.body in
  ({ q with X.body }, report)

(* ------------------------------------------------------------------ *)
(* Scoping hazard check                                               *)

(* Returns [Some v] when some [where] clause references [$v] before the
   clause of the same FLWOR that binds it — the naive clause fold would
   silently filter every tuple out (or worse, resolve an outer
   shadowed binding).  [bound] seeds the statically-known outer
   bindings.  Purely syntactic; never evaluates anything. *)
let scoping_hazard ~bound e =
  let hazard = ref None in
  let note v = if !hazard = None then hazard := Some v in
  let rec walk bound (e : X.expr) =
    match e with
    | X.Literal _ | X.Var _ | X.Context_item | X.Text _ -> ()
    | X.Seq es -> List.iter (walk bound) es
    | X.Flwor f -> walk_flwor bound f
    | X.Path (base, steps) ->
      walk bound base;
      let bound = Vars.add "." bound in
      List.iter
        (fun (s : X.step) -> List.iter (walk bound) s.X.predicates)
        steps
    | X.Call (_, args) -> List.iter (walk bound) args
    | X.Elem { content; _ } -> List.iter (walk bound) content
    | X.If (c, t, e) ->
      walk bound c;
      walk bound t;
      walk bound e
    | X.Binop (_, a, b) ->
      walk bound a;
      walk bound b
    | X.Neg e -> walk bound e
    | X.Quantified { bindings; satisfies; _ } ->
      let bound =
        List.fold_left
          (fun bound (v, src) ->
            walk bound src;
            Vars.add v bound)
          bound bindings
      in
      walk bound satisfies
    | X.Filter (base, pred) ->
      walk bound base;
      walk (Vars.add "." bound) pred
  and walk_flwor bound (f : X.flwor) =
    let arr = Array.of_list f.X.clauses in
    let n = Array.length arr in
    let binds_at j = clause_binds arr.(j) in
    (* wheres: flag free vars bound only by later clauses *)
    Array.iteri
      (fun i clause ->
        match clause with
        | X.Where cond ->
          let bound_now =
            let rec go j b =
              if j >= i then b
              else
                go (j + 1)
                  (List.fold_left (fun b v -> Vars.add v b) b (binds_at j))
            in
            go 0 bound
          in
          Vars.iter
            (fun v ->
              if not (Vars.mem v bound_now) then
                let rec bound_later j =
                  j < n && (List.mem v (binds_at j) || bound_later (j + 1))
                in
                if bound_later (i + 1) then note v)
            (free_vars cond)
        | _ -> ())
      arr;
    (* recurse into subexpressions with a conservative bound set (every
       variable the FLWOR binds anywhere) — only the where check above
       is position-sensitive *)
    let all_bound =
      Array.fold_left
        (fun b c -> List.fold_left (fun b v -> Vars.add v b) b (clause_binds c))
        bound arr
    in
    Array.iter
      (fun clause ->
        match clause with
        | X.For { source; _ } -> walk all_bound source
        | X.Let { value; _ } -> walk all_bound value
        | X.Where cond -> walk all_bound cond
        | X.Group { keys; _ } -> List.iter (fun (k, _) -> walk all_bound k) keys
        | X.Order_by specs ->
          List.iter (fun (s : X.order_spec) -> walk all_bound s.X.key) specs
        | X.Hash_join { source; build_key; probe_key; _ } ->
          walk all_bound source;
          walk all_bound build_key;
          walk all_bound probe_key)
      arr;
    walk all_bound f.X.return
  in
  walk bound e;
  !hazard
