(** Vectorized aggregation kernels for the columnar GROUP BY path.

    A kernel folds one aggregate incrementally over a grouped column,
    one tuple's slice at a time, with exactly the semantics of the
    one-shot {!Functions} implementations over the concatenated
    partition: same numeric promotion, same fold order, and the same
    dynamic errors (deferred and re-raised at {!finish} iff the
    one-shot fold would have reached them). *)

type kind =
  | K_count  (** [fn:count] — counts items, no atomization *)
  | K_sum  (** [fn:sum] — empty input yields [0] *)
  | K_sum_null
      (** the translated-SQL shape
          [if (fn:empty(c)) then () else fn:sum(c)]: SUM over an empty
          set is NULL *)
  | K_avg  (** [fn:avg] — empty input yields the empty sequence *)
  | K_min  (** [fn:min] *)
  | K_max  (** [fn:max] *)
  | K_empty  (** [fn:empty] *)
  | K_exists  (** [fn:exists] *)

val name : kind -> string
(** Short label for plans and [analyze] output. *)

type state
(** Per-group accumulator. *)

val create : kind -> state

val update : state -> Aqua_xml.Item.sequence -> unit
(** Fold one tuple's column slice into the accumulator. *)

val finish : state -> Aqua_xml.Item.sequence
(** The aggregate's result; re-raises any deferred dynamic error. *)
