(** Hash-join build/probe machinery shared by {!Eval} and {!Compile}.

    Builds a hash table over the build side's items keyed by
    [Atomic.hash_key], with secondary keys covering the cross-type
    equalities of [Atomic.compare_values] (untyped-vs-typed, date vs
    midnight dateTime) that a single key cannot express. *)

type t = {
  items : Aqua_xml.Item.t array;  (** build side, in source order *)
  tbl : (string, int * bool) Hashtbl.t;
  poison : bool;
  any_nonempty : bool;
  seen_stamp : int array;
      (** probe dedup scratch (one cell per build row), reused across
          probes instead of allocating a seen table per call *)
  mutable stamp : int;
}

val build :
  Aqua_xml.Item.sequence ->
  key_of:(Aqua_xml.Item.t -> Aqua_xml.Item.sequence) ->
  value_cmp:bool ->
  t
(** [build source ~key_of ~value_cmp] hashes every item of [source] by
    the atomized [key_of] result.  With [value_cmp] the cardinality
    flags of XQuery value comparison are recorded instead of indexing
    multi-atom keys. *)

val probe : t -> value_cmp:bool -> Aqua_xml.Atomic.t list -> int list
(** Matching build rows for one probe key, sorted ascending (build
    order), deduplicated.  @raise Error.Dynamic_error on the value
    comparison cardinality violation, exactly where the nested loop's
    [value_compare] would. *)

val probe_batch :
  t ->
  value_cmp:bool ->
  rows:int ->
  atoms_of:(int -> Aqua_xml.Atomic.t list) ->
  emit:(int -> int -> unit) ->
  unit
(** Probe a whole selection vector in one call: for probe rows
    [0 .. rows-1], [emit i row] fires per match in (probe row,
    ascending build row) order.  Identical matches, errors and counter
    movement to [rows] sequential {!probe} calls, without the per-row
    closure allocation on the probe side. *)
