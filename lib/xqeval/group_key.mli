(** Injective composite-key encoding for group-by partitioning.

    Every atom's [Atomic.hash_key] is length-prefixed and every key
    expression's component is terminated, so two distinct key-value
    tuples can never encode to the same string — even when key atoms
    contain arbitrary bytes (the flat separator-joined encoding this
    replaces collided on keys containing the separator). *)

val composite : Aqua_xml.Item.sequence list -> string
(** One string per group: the encoded tuple of atomized key values, in
    key order.  Empty key sequences are marked distinctly from every
    non-empty one. *)

val composite_into : Buffer.t -> Aqua_xml.Item.sequence list -> string
(** Same encoding through a caller-supplied scratch buffer (cleared on
    entry), so a grouping loop pays one buffer allocation total instead
    of one per tuple. *)
