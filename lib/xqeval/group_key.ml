(* Injective composite-key encoding for group-by partitioning, shared
   by the tree-walking evaluator and the slot compiler.

   The old encoding joined [Atomic.hash_key] strings with "\x01"
   (between key expressions) and "\x02" (between atoms of one key),
   which collides as soon as a key atom contains a separator byte:
   ("a\x01b", "c") and ("a", "b\x01c") both encoded to
   "sa\x01b\x01sc"-style strings.  This encoding length-prefixes every
   atom key instead, so it decodes unambiguously:

     component := "e;"                        (empty key sequence)
                | (<decimal length> ":" <hash_key bytes>)+ ";"

   A decoder reads digits up to ':' then exactly that many bytes, so no
   byte of a hash key can be mistaken for structure; 'e' is not a
   digit, so the empty marker cannot be confused with a length. *)

module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item

let composite_into buf (key_values : Item.sequence list) : string =
  Buffer.clear buf;
  List.iter
    (fun seq ->
      (match Item.atomize seq with
      | [] -> Buffer.add_char buf 'e'
      | atoms ->
        List.iter
          (fun a ->
            let k = Atomic.hash_key a in
            Buffer.add_string buf (string_of_int (String.length k));
            Buffer.add_char buf ':';
            Buffer.add_string buf k)
          atoms);
      Buffer.add_char buf ';')
    key_values;
  Buffer.contents buf

let composite key_values = composite_into (Buffer.create 64) key_values
