(* Dynamic errors raised during XQuery evaluation, kept in their own
   module so both the function library and the evaluator can raise
   them without a dependency cycle. *)

exception Dynamic_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Dynamic_error s)) fmt
