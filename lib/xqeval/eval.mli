(** The XQuery evaluator.

    Implements the dynamic semantics of the fragment emitted by the
    translator: FLWOR tuple streams (with the BEA group-by extension),
    path navigation with positional and boolean predicates, element
    construction with sequence-content normalization, general and
    value comparisons, quantifiers, and the function library of
    {!Functions} extended with caller-supplied external functions
    (the data-service functions of the platform). *)

type external_fn = Aqua_xml.Item.sequence list -> Aqua_xml.Item.sequence

type context
(** Dynamic evaluation context: variable bindings plus the resolver
    for non-built-in function names. *)

val context :
  ?resolve:(string -> external_fn option) -> unit -> context
(** A fresh context. [resolve] is consulted for any function name not
    found in the built-in library (e.g. ["ns0:CUSTOMERS"]). *)

val bind : context -> string -> Aqua_xml.Item.sequence -> context
(** Binds a variable (name without the ['$']). *)

val eval :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  context ->
  Aqua_xquery.Ast.expr ->
  Aqua_xml.Item.sequence
(** Evaluates an expression.  With [optimize] (the default) the
    {!Optimize} pass runs first, enabling predicate pushdown, hash
    equi-joins and the streaming clause pipeline; [~optimize:false]
    keeps the naive nested-loop semantics as a differential-testing
    oracle.  [scan_cache] (default [true]) additionally enables the
    optimizer's scan-sharing hoist, which materializes repeated
    data-service calls once per plan; [~scan_cache:false] keeps every
    call in place (the no-materialization oracle).  [vectorize]
    (default [true]) executes the optimized plan through the compiled
    batch engine ({!Compile} with {!Batch.size}-row batches);
    [~vectorize:false] keeps the tuple-at-a-time interpreter — the
    row-at-a-time oracle the batch engine is differentially tested
    against.  [columnar] (default {!Batch.columnar}, meaningful only
    with [vectorize]) selects the struct-of-arrays batch layout with
    required-column pruning and aggregation kernels;
    [~columnar:false] keeps the row-snapshot batch layout, the
    columnar engine's differential oracle.  Either way a [where]
    clause referencing a variable bound
    only by a later clause of the same FLWOR raises a clear error
    naming the variable.
    @raise Error.Dynamic_error on dynamic errors (unknown variable or
    function, type mismatches, cast failures). *)

val eval_query :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  context ->
  Aqua_xquery.Ast.query ->
  Aqua_xml.Item.sequence
(** Evaluates a full query; the prolog's schema imports carry no
    dynamic semantics in this engine (function resolution is by
    prefixed name). *)
