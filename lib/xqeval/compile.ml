module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Node = Aqua_xml.Node
module X = Aqua_xquery.Ast
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint

exception Compile_error of string

let cfail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let dfail = Error.fail

(* Runtime environment: one mutable slot per statically-resolved
   variable.  Sequential evaluation makes slot mutation safe; clauses
   that reorder tuples (order by, group by) snapshot the array. *)
type rt = Item.sequence array

type comp = rt -> Item.sequence

(* Compile-time environment: name -> slot. *)
type cenv = {
  slots : (string * int) list;
  next : int ref;
  resolve : string -> Eval.external_fn option;
}

let bind_slot cenv name =
  let slot = !(cenv.next) in
  incr cenv.next;
  ({ cenv with slots = (name, slot) :: cenv.slots }, slot)

let lookup_slot cenv name =
  match List.assoc_opt name cenv.slots with
  | Some slot -> slot
  | None -> cfail "undefined variable $%s" name

(* ------------------------------------------------------------------ *)
(* Shared dynamic helpers (same semantics as Eval)                     *)

let cmp_holds (op : X.cmp) c =
  match op with
  | X.Eq -> c = 0
  | X.Ne -> c <> 0
  | X.Lt -> c < 0
  | X.Le -> c <= 0
  | X.Gt -> c > 0
  | X.Ge -> c >= 0

let general_compare op left right =
  let latoms = Item.atomize left and ratoms = Item.atomize right in
  List.exists
    (fun a ->
      List.exists (fun b -> cmp_holds op (Atomic.compare_values a b)) ratoms)
    latoms

let value_compare op left right =
  match (Item.atomize left, Item.atomize right) with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> Item.of_bool (cmp_holds op (Atomic.compare_values a b))
  | _ -> dfail "value comparison requires singleton operands"

let arith_atomic (op : X.arith) a b =
  let untype = function
    | Atomic.Untyped s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Atomic.Double f
      | None -> dfail "cannot use %S in arithmetic" s)
    | v -> v
  in
  let a = untype a and b = untype b in
  match (a, b, op) with
  | Atomic.Integer x, Atomic.Integer y, X.Add -> Atomic.Integer (x + y)
  | Atomic.Integer x, Atomic.Integer y, X.Sub -> Atomic.Integer (x - y)
  | Atomic.Integer x, Atomic.Integer y, X.Mul -> Atomic.Integer (x * y)
  | Atomic.Integer x, Atomic.Integer y, X.Idiv ->
    if y = 0 then dfail "integer division by zero" else Atomic.Integer (x / y)
  | Atomic.Integer x, Atomic.Integer y, X.Mod ->
    if y = 0 then dfail "modulus by zero" else Atomic.Integer (x mod y)
  | Atomic.Integer x, Atomic.Integer y, X.Div ->
    if y = 0 then dfail "division by zero"
    else Atomic.Decimal (float_of_int x /. float_of_int y)
  | _ ->
    let x = Atomic.cast_double a and y = Atomic.cast_double b in
    let promote v =
      match (a, b) with
      | (Atomic.Double _, _ | _, Atomic.Double _) -> Atomic.Double v
      | _ -> Atomic.Decimal v
    in
    (match op with
    | X.Add -> promote (x +. y)
    | X.Sub -> promote (x -. y)
    | X.Mul -> promote (x *. y)
    | X.Div -> if y = 0.0 then dfail "division by zero" else promote (x /. y)
    | X.Idiv ->
      if y = 0.0 then dfail "integer division by zero"
      else Atomic.Integer (int_of_float (Float.trunc (x /. y)))
    | X.Mod ->
      if y = 0.0 then dfail "modulus by zero" else promote (Float.rem x y))

let normalize_content (seq : Item.sequence) : Node.t list =
  let rec go acc pending = function
    | [] ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      List.rev acc
    | Item.Atomic a :: rest -> go acc (Atomic.to_lexical a :: pending) rest
    | Item.Node n :: rest ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      go (n :: acc) [] rest
  in
  go [] [] seq

let step_matches step_name el_name =
  step_name = "*"
  || el_name = step_name
  || Node.local_name el_name = Node.local_name step_name

let children_matching name (item : Item.t) : Item.sequence =
  match item with
  | Item.Atomic _ -> dfail "path step applied to an atomic value"
  | Item.Node (Node.Text _) -> []
  | Item.Node (Node.Element e) ->
    List.filter_map
      (function
        | Node.Element c when step_matches name c.name ->
          Some (Item.Node (Node.Element c))
        | Node.Element _ | Node.Text _ -> None)
      e.Node.children

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)

(* the context-item pseudo-variable used by predicates *)
let dot = "."

let rec compile_expr_c (cenv : cenv) (e : X.expr) : comp =
  match e with
  | X.Literal a ->
    let item = [ Item.Atomic a ] in
    fun _ -> item
  | X.Var v ->
    let slot = lookup_slot cenv v in
    fun rt -> rt.(slot)
  | X.Context_item ->
    let slot = lookup_slot cenv dot in
    fun rt -> rt.(slot)
  | X.Seq es ->
    let parts = List.map (compile_expr_c cenv) es in
    fun rt -> List.concat_map (fun c -> c rt) parts
  | X.Flwor f -> compile_flwor cenv f
  | X.Path (base, steps) ->
    let cbase = compile_expr_c cenv base in
    let csteps =
      List.map
        (fun (s : X.step) ->
          (s.X.name, List.map (compile_predicate cenv) s.X.predicates))
        steps
    in
    fun rt ->
      List.fold_left
        (fun seq (name, preds) ->
          let widened = List.concat_map (children_matching name) seq in
          List.fold_left (fun items p -> p rt items) widened preds)
        (cbase rt) csteps
  | X.Call (name, args) -> (
    let cargs = List.map (compile_expr_c cenv) args in
    let apply impl = fun rt -> impl (List.map (fun c -> c rt) cargs) in
    match Functions.lookup name with
    | Some impl -> apply impl
    | None -> (
      match cenv.resolve name with
      | Some impl -> apply impl
      | None -> cfail "unknown function %s" name))
  | X.Elem { name; content } ->
    let parts =
      List.map
        (fun part ->
          match part with
          | X.Text s ->
            let nodes = if s = "" then [] else [ Item.Node (Node.Text s) ] in
            fun _ -> nodes
          | _ -> compile_expr_c cenv part)
        content
    in
    fun rt ->
      let body = List.concat_map (fun c -> c rt) parts in
      [ Item.Node
          (Node.Element
             { Node.name; attrs = []; children = normalize_content body }) ]
  | X.Text s ->
    let v = Item.of_string s in
    fun _ -> v
  | X.If (c, t, e) ->
    let cc = compile_expr_c cenv c in
    let ct = compile_expr_c cenv t in
    let ce = compile_expr_c cenv e in
    fun rt ->
      if Item.effective_boolean_value (cc rt) then ct rt else ce rt
  | X.Binop (op, a, b) -> (
    let ca = compile_expr_c cenv a and cb = compile_expr_c cenv b in
    match op with
    | X.B_and ->
      fun rt ->
        Item.of_bool
          (Item.effective_boolean_value (ca rt)
          && Item.effective_boolean_value (cb rt))
    | X.B_or ->
      fun rt ->
        Item.of_bool
          (Item.effective_boolean_value (ca rt)
          || Item.effective_boolean_value (cb rt))
    | X.B_general cmp ->
      fun rt -> Item.of_bool (general_compare cmp (ca rt) (cb rt))
    | X.B_value cmp -> fun rt -> value_compare cmp (ca rt) (cb rt)
    | X.B_arith op -> (
      fun rt ->
        match (Item.atomize (ca rt), Item.atomize (cb rt)) with
        | [], _ | _, [] -> []
        | [ x ], [ y ] -> [ Item.Atomic (arith_atomic op x y) ]
        | _ -> dfail "arithmetic requires singleton operands"))
  | X.Neg a -> (
    let ca = compile_expr_c cenv a in
    fun rt ->
      match Item.atomize (ca rt) with
      | [] -> []
      | [ Atomic.Integer i ] -> Item.of_int (-i)
      | [ v ] -> [ Item.Atomic (Atomic.Double (-.Atomic.cast_double v)) ]
      | _ -> dfail "unary minus requires a singleton operand")
  | X.Quantified { every; bindings; satisfies } ->
    let rec build cenv = function
      | [] ->
        let cs = compile_expr_c cenv satisfies in
        fun rt -> Item.effective_boolean_value (cs rt)
      | (var, src) :: rest ->
        let csrc = compile_expr_c cenv src in
        let cenv', slot = bind_slot cenv var in
        let inner = build cenv' rest in
        fun rt ->
          let items = csrc rt in
          let test item =
            rt.(slot) <- [ item ];
            inner rt
          in
          if every then List.for_all test items else List.exists test items
    in
    let body = build cenv bindings in
    fun rt -> Item.of_bool (body rt)
  | X.Filter (base, pred) ->
    let cbase = compile_expr_c cenv base in
    let cpred = compile_predicate cenv pred in
    fun rt -> cpred rt (cbase rt)

(* Predicates rebind the context item per candidate and handle the
   positional case. *)
and compile_predicate cenv (pred : X.expr) : rt -> Item.sequence -> Item.sequence =
  let cenv', slot = bind_slot cenv dot in
  let cpred = compile_expr_c cenv' pred in
  fun rt items ->
    List.filteri
      (fun i item ->
        rt.(slot) <- [ item ];
        match cpred rt with
        | [ Item.Atomic a ] when Atomic.is_numeric a ->
          Atomic.cast_double a = float_of_int (i + 1)
        | result -> Item.effective_boolean_value result)
      items

(* FLWOR compilation.  Chains of for/let/where ("segments") run as
   per-tuple nested loops; order-by and group-by are barriers that
   must see the whole tuple stream.  A compiled pipeline is therefore
   a transformer over snapshot lists:

     lift(segment0) ; barrier1 ; lift(segment1) ; ... ; return

   where a snapshot is a copy of the slot array and [lift] maps a
   per-tuple segment over every incoming snapshot. *)
and compile_flwor cenv (f : X.flwor) : comp =
  (* a segment enumerates the tuples reachable from the current slots *)
  let rec segment cenv clauses : (rt -> rt list) * cenv =
    match clauses with
    | [] ->
      ( (fun rt ->
          (* one budget step per tuple completing a segment: the
             compiled pipeline stays cancelable between tuples *)
          Budget.step ();
          [ Array.copy rt ]),
        cenv )
    | X.For { var; source } :: rest ->
      let csrc = compile_expr_c cenv source in
      let cenv', slot = bind_slot cenv var in
      let inner, cenv_out = segment cenv' rest in
      ( (fun rt ->
          List.concat_map
            (fun item ->
              Budget.step ();
              rt.(slot) <- [ item ];
              inner rt)
            (csrc rt)),
        cenv_out )
    | X.Let { var; value } :: rest ->
      let cval = compile_expr_c cenv value in
      let cenv', slot = bind_slot cenv var in
      let inner, cenv_out = segment cenv' rest in
      ( (fun rt ->
          rt.(slot) <- cval rt;
          inner rt),
        cenv_out )
    | X.Where cond :: rest ->
      let ccond = compile_expr_c cenv cond in
      let inner, cenv_out = segment cenv rest in
      ( (fun rt ->
          if Item.effective_boolean_value (ccond rt) then inner rt else []),
        cenv_out )
    | (X.Order_by _ | X.Group _ | X.Hash_join _) :: _ ->
      assert false  (* split below *)
  in
  (* Hash joins are handled at the stage level (not inside a segment):
     the build table must be created per invocation of the compiled
     code — a compile-time closure would leak the table across
     re-evaluations of the FLWOR under different outer bindings. *)
  let split_barrier clauses =
    let rec go acc = function
      | [] -> (List.rev acc, None, [])
      | ((X.Order_by _ | X.Group _ | X.Hash_join _) as b) :: rest ->
        (List.rev acc, Some b, rest)
      | c :: rest -> go (c :: acc) rest
    in
    go [] clauses
  in
  (* stages : rt -> snapshot list -> snapshot list *)
  let rec stages cenv clauses : (rt -> rt list -> rt list) * cenv =
    let before, barrier, rest = split_barrier clauses in
    let cseg, cenv1 = segment cenv before in
    let lifted rt snaps =
      List.concat_map
        (fun snap ->
          Array.blit snap 0 rt 0 (Array.length snap);
          cseg rt)
        snaps
    in
    match barrier with
    | None -> (lifted, cenv1)
    | Some (X.Order_by specs) ->
      let ckeys =
        List.map
          (fun (s : X.order_spec) ->
            (compile_expr_c cenv1 s.X.key, s.X.descending, s.X.empty))
          specs
      in
      let crest, cenv_out = stages cenv1 rest in
      ( (fun rt snaps ->
          let keyed =
            List.map
              (fun snap ->
                ( List.map (fun (ck, _, _) -> Item.atomize (ck snap)) ckeys,
                  snap ))
              (lifted rt snaps)
          in
          let compare_keyed (ka, _) (kb, _) =
            let rec go ks =
              match ks with
              | [] -> 0
              | ((a, b), (_, desc, empty)) :: more ->
                let c =
                  match (a, b) with
                  | [], [] -> 0
                  | [], _ -> (
                    match empty with
                    | X.Empty_least -> -1
                    | X.Empty_greatest -> 1)
                  | _, [] -> (
                    match empty with
                    | X.Empty_least -> 1
                    | X.Empty_greatest -> -1)
                  | x :: _, y :: _ -> Atomic.compare_values x y
                in
                let c = if desc then -c else c in
                if c <> 0 then c else go more
            in
            go (List.combine (List.combine ka kb) ckeys)
          in
          crest rt
            (List.map snd (List.stable_sort compare_keyed keyed))),
        cenv_out )
    | Some (X.Group { grouped; partition; keys }) ->
      let grouped_slot = lookup_slot cenv1 grouped in
      let ckeys = List.map (fun (k, _) -> compile_expr_c cenv1 k) keys in
      (* post-group scope: outer bindings + key vars + partition — the
         segment's own bindings are dropped, matching Eval *)
      let cenv_post = { cenv1 with slots = cenv.slots } in
      let cenv_post, key_slots =
        List.fold_left
          (fun (ce, acc) (_, var) ->
            let ce', slot = bind_slot ce var in
            (ce', slot :: acc))
          (cenv_post, []) keys
      in
      let key_slots = List.rev key_slots in
      let cenv_post, partition_slot = bind_slot cenv_post partition in
      let crest, cenv_out = stages cenv_post rest in
      ( (fun rt snaps ->
          let table = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun snap ->
              let key_values = List.map (fun ck -> ck snap) ckeys in
              let key_string = Group_key.composite key_values in
              match Hashtbl.find_opt table key_string with
              | Some (acc, _, _) -> acc := snap.(grouped_slot) :: !acc
              | None ->
                Hashtbl.add table key_string
                  (ref [ snap.(grouped_slot) ], key_values, snap);
                order := key_string :: !order)
            (lifted rt snaps);
          let grouped_snaps =
            List.map
              (fun key_string ->
                let acc, key_values, first_snap =
                  Hashtbl.find table key_string
                in
                let out = Array.copy first_snap in
                List.iter2
                  (fun slot v -> out.(slot) <- v)
                  key_slots key_values;
                out.(partition_slot) <- List.concat (List.rev !acc);
                out)
              (List.rev !order)
          in
          crest rt grouped_snaps),
        cenv_out )
    | Some (X.Hash_join { var; source; build_key; probe_key; value_cmp }) ->
      let csrc = compile_expr_c cenv1 source in
      let cprobe = compile_expr_c cenv1 probe_key in
      let cenv2, var_slot = bind_slot cenv1 var in
      let cbuild = compile_expr_c cenv2 build_key in
      let crest, cenv_out = stages cenv2 rest in
      ( (fun rt snaps ->
          Failpoint.hit "xqeval.hashjoin";
          match lifted rt snaps with
          | [] -> crest rt []  (* empty probe stream: never build *)
          | first :: _ as snaps ->
            (* [source] and [build_key] only read outer slots (plus the
               join variable), which hold the same values in every
               snapshot — evaluating against the first is safe. *)
            Array.blit first 0 rt 0 (Array.length first);
            let table =
              Join_table.build (csrc rt)
                ~key_of:(fun item ->
                  rt.(var_slot) <- [ item ];
                  cbuild rt)
                ~value_cmp
            in
            let joined =
              List.concat_map
                (fun snap ->
                  Array.blit snap 0 rt 0 (Array.length snap);
                  let probe_atoms = Item.atomize (cprobe rt) in
                  List.map
                    (fun k ->
                      rt.(var_slot) <- [ table.Join_table.items.(k) ];
                      Array.copy rt)
                    (Join_table.probe table ~value_cmp probe_atoms))
                snaps
            in
            crest rt joined),
        cenv_out )
    | Some (X.For _ | X.Let _ | X.Where _) -> assert false
  in
  let cstages, cenv_ret = stages cenv f.X.clauses in
  let cret = compile_expr_c cenv_ret f.X.return in
  fun rt ->
    let finals = cstages rt [ Array.copy rt ] in
    List.concat_map
      (fun snap ->
        Array.blit snap 0 rt 0 (Array.length snap);
        cret rt)
      finals

(* ------------------------------------------------------------------ *)

type compiled = {
  code : comp;
  size : int;
  externals : (string * int) list;  (* runtime bindings -> slots *)
}

let no_resolve _ = None

let compile_expr ?(optimize = true) ?(scan_cache = true)
    ?(resolve = no_resolve) ?(vars = []) (e : X.expr) =
  (* scoping is checked on the un-optimized AST: pushdown deliberately
     leaves hazardous predicates in place, and the error should point
     at what the caller wrote *)
  (let bound =
     List.fold_left
       (fun s v -> Optimize.Vars.add v s)
       Optimize.Vars.empty vars
   in
   match Optimize.scoping_hazard ~bound e with
   | Some v -> cfail "where clause references $%s before it is bound" v
   | None -> ());
  let e =
    if optimize then fst (Optimize.expr ~share_scans:scan_cache e) else e
  in
  let cenv = { slots = []; next = ref 0; resolve } in
  let cenv, externals =
    List.fold_left
      (fun (ce, acc) v ->
        let ce', slot = bind_slot ce v in
        (ce', (v, slot) :: acc))
      (cenv, []) vars
  in
  let code = compile_expr_c cenv e in
  { code; size = !(cenv.next); externals = List.rev externals }

let compile ?optimize ?scan_cache ?resolve ?vars (q : X.query) =
  compile_expr ?optimize ?scan_cache ?resolve ?vars q.X.body

let run ?(bindings = []) t =
  let rt = Array.make (max t.size 1) [] in
  List.iter
    (fun (name, slot) ->
      match List.assoc_opt name bindings with
      | Some seq -> rt.(slot) <- seq
      | None -> dfail "external variable $%s is not bound" name)
    t.externals;
  t.code rt
