module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Node = Aqua_xml.Node
module X = Aqua_xquery.Ast
module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint

exception Compile_error of string

let cfail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let dfail = Error.fail

(* Runtime environment: one mutable slot per statically-resolved
   variable.  Sequential evaluation makes slot mutation safe; clauses
   that reorder tuples (order by, group by) snapshot the array. *)
type rt = Item.sequence array

type comp = rt -> Item.sequence

(* The structural type of an external function resolver ([Eval]'s
   [external_fn] is an alias of the same type; naming it structurally
   here keeps this module independent of [Eval], which now depends on
   the compiler for its vectorized path). *)
type resolver = string -> (Item.sequence list -> Item.sequence) option

(* Compile-time environment: name -> slot. *)
type cenv = {
  slots : (string * int) list;
  next : int ref;
  resolve : resolver;
  vectorize : bool;
  columnar : bool;
}

let bind_slot cenv name =
  let slot = !(cenv.next) in
  incr cenv.next;
  ({ cenv with slots = (name, slot) :: cenv.slots }, slot)

let lookup_slot cenv name =
  match List.assoc_opt name cenv.slots with
  | Some slot -> slot
  | None -> cfail "undefined variable $%s" name

(* ------------------------------------------------------------------ *)
(* Shared dynamic helpers (same semantics as Eval)                     *)

let cmp_holds (op : X.cmp) c =
  match op with
  | X.Eq -> c = 0
  | X.Ne -> c <> 0
  | X.Lt -> c < 0
  | X.Le -> c <= 0
  | X.Gt -> c > 0
  | X.Ge -> c >= 0

let general_compare op left right =
  let latoms = Item.atomize left and ratoms = Item.atomize right in
  List.exists
    (fun a ->
      List.exists (fun b -> cmp_holds op (Atomic.compare_values a b)) ratoms)
    latoms

let value_compare op left right =
  match (Item.atomize left, Item.atomize right) with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> Item.of_bool (cmp_holds op (Atomic.compare_values a b))
  | _ -> dfail "value comparison requires singleton operands"

let arith_atomic (op : X.arith) a b =
  let untype = function
    | Atomic.Untyped s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Atomic.Double f
      | None -> dfail "cannot use %S in arithmetic" s)
    | v -> v
  in
  let a = untype a and b = untype b in
  match (a, b, op) with
  | Atomic.Integer x, Atomic.Integer y, X.Add -> Atomic.Integer (x + y)
  | Atomic.Integer x, Atomic.Integer y, X.Sub -> Atomic.Integer (x - y)
  | Atomic.Integer x, Atomic.Integer y, X.Mul -> Atomic.Integer (x * y)
  | Atomic.Integer x, Atomic.Integer y, X.Idiv ->
    if y = 0 then dfail "integer division by zero" else Atomic.Integer (x / y)
  | Atomic.Integer x, Atomic.Integer y, X.Mod ->
    if y = 0 then dfail "modulus by zero" else Atomic.Integer (x mod y)
  | Atomic.Integer x, Atomic.Integer y, X.Div ->
    if y = 0 then dfail "division by zero"
    else Atomic.Decimal (float_of_int x /. float_of_int y)
  | _ ->
    let x = Atomic.cast_double a and y = Atomic.cast_double b in
    let promote v =
      match (a, b) with
      | (Atomic.Double _, _ | _, Atomic.Double _) -> Atomic.Double v
      | _ -> Atomic.Decimal v
    in
    (match op with
    | X.Add -> promote (x +. y)
    | X.Sub -> promote (x -. y)
    | X.Mul -> promote (x *. y)
    | X.Div -> if y = 0.0 then dfail "division by zero" else promote (x /. y)
    | X.Idiv ->
      if y = 0.0 then dfail "integer division by zero"
      else Atomic.Integer (int_of_float (Float.trunc (x /. y)))
    | X.Mod ->
      if y = 0.0 then dfail "modulus by zero" else promote (Float.rem x y))

let normalize_content (seq : Item.sequence) : Node.t list =
  let rec go acc pending = function
    | [] ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      List.rev acc
    | Item.Atomic a :: rest -> go acc (Atomic.to_lexical a :: pending) rest
    | Item.Node n :: rest ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      go (n :: acc) [] rest
  in
  go [] [] seq

(* Step-name matching is compiled once per path step: the common case
   (unprefixed column access over unprefixed row children) costs one
   string equality per child, and the cross-prefix fallback compares
   local names in place instead of allocating the substrings
   [Node.local_name] would build for every candidate child. *)
let matches_local local el_name =
  let k = String.length local and n = String.length el_name in
  let start =
    match String.index_opt el_name ':' with None -> 0 | Some i -> i + 1
  in
  n - start = k
  &&
  let rec go j =
    j = k
    || String.unsafe_get el_name (start + j) = String.unsafe_get local j
       && go (j + 1)
  in
  go 0

let compile_step_matcher step_name : string -> bool =
  if step_name = "*" then fun _ -> true
  else
    let local = Node.local_name step_name in
    fun el_name -> el_name = step_name || matches_local local el_name

let children_matching matches (item : Item.t) : Item.sequence =
  match item with
  | Item.Atomic _ -> dfail "path step applied to an atomic value"
  | Item.Node (Node.Text _) -> []
  | Item.Node (Node.Element e) ->
    List.filter_map
      (function
        | Node.Element c when matches c.name -> Some (Item.Node (Node.Element c))
        | Node.Element _ | Node.Text _ -> None)
      e.Node.children

(* Lexicographic comparison over pre-atomized order-by keys; [ckeys]
   pairs each key position with its (compiled key, descending, empty)
   spec, of which only the modifiers are read here. *)
let compare_order_keys ckeys ka kb =
  let rec go ks =
    match ks with
    | [] -> 0
    | ((a, b), (_, desc, empty)) :: more ->
      let c =
        match (a, b) with
        | [], [] -> 0
        | [], _ -> (
          match empty with X.Empty_least -> -1 | X.Empty_greatest -> 1)
        | _, [] -> (
          match empty with X.Empty_least -> 1 | X.Empty_greatest -> -1)
        | x :: _, y :: _ -> Atomic.compare_values x y
      in
      let c = if desc then -c else c in
      if c <> 0 then c else go more
  in
  go (List.combine (List.combine ka kb) ckeys)

(* ------------------------------------------------------------------ *)
(* Vectorized pipeline plumbing                                       *)

(* A batch carries up to [cap] tuple snapshots (each a full slot
   array) plus a selection vector: [vsel.(0 .. vn-1)] lists the live
   row indices.  Freshly produced batches have an identity selection
   (producers write [vsel] as they append); a where clause compacts
   [vsel] in place without moving rows. *)
type vbatch = {
  vrows : rt array;
  vsel : int array;
  mutable vn : int;
}

(* Push-based operator chain: one [vsink] per clause, pushing into the
   next.  [vflush] drains barrier state (sort/group buffers, partial
   output batches) at end of stream. *)
type vsink = {
  vpush : vbatch -> unit;
  vflush : unit -> unit;
}

(* Per-invocation context threaded to every operator: the batch
   capacity, the pooled batch allocator, and whether telemetry was
   enabled when the pipeline was entered. *)
type vctx = {
  vcap : int;
  valloc : unit -> vbatch;
  vinstr : bool;
}

(* Batch emission bookkeeping: a failpoint site per batch boundary plus
   the xqeval.batch.* counters (bumped only where a batch is created —
   the initial feed and expander/barrier emissions — so a disabled
   vectorizer produces zero batch traffic). *)
let vnote_batch n =
  Failpoint.hit "xqeval.batch";
  Telemetry.incr Telemetry.c_batch_batches;
  Telemetry.add Telemetry.c_batch_rows n

(* Batch buffers are pooled at module level: [Server.execute]
   recompiles its plan on every call, so a per-closure pool would never
   see a second invocation — and at large batch sizes the O(capacity)
   buffer allocation per call is the dominant driver cost.  Acquire
   removes a buffer from the pool (re-entrant pipelines therefore just
   take distinct buffers); a normal completion returns them, a failed
   invocation drops them to the GC.  Only buffers of the current batch
   capacity are kept, and the pool is bounded — pooled buffers retain
   the last invocation's row references until overwritten, so the bound
   also caps that residue. *)
(* Domain-local: pooled buffers are written in place by whichever
   pipeline holds them, so two domains must never draw from one pool.
   Per-domain pools need no locking and no cross-core cache traffic;
   the cost is one pool's worth of buffers per serving domain. *)
let vbatch_pools : (int * vbatch list ref) list ref Mcore.Dls.key =
  Mcore.Dls.new_key (fun () -> ref [])

let vbatch_pool_caps = 8  (* distinct batch capacities kept alive *)
let vbatch_pool_cap = 16  (* buffers kept per capacity *)

let vbatch_pool_for cap =
  let vbatch_pools = Mcore.Dls.get vbatch_pools in
  match List.assoc_opt cap !vbatch_pools with
  | Some p -> p
  | None ->
    let p = ref [] in
    let rec keep n = function
      | [] -> []
      | _ when n = 0 -> []
      | e :: rest -> e :: keep (n - 1) rest
    in
    vbatch_pools := (cap, p) :: keep (vbatch_pool_caps - 1) !vbatch_pools;
    p

let vbatch_release pool acquired =
  let rec keep n bs =
    if n = 0 then []
    else match bs with [] -> [] | b :: rest -> b :: keep (n - 1) rest
  in
  pool := keep vbatch_pool_cap (List.rev_append acquired !pool)

(* Copy row [src] into the batch-owned row storage at index [j] and
   return it.  Batches own their row arrays: an expander refilling a
   batch overwrites the same arrays every time, so a full-capacity
   batch touches the same cache-resident storage on every refill
   instead of sweeping fresh minor-heap lines.  The flip side is the
   usual vectorized-execution ownership contract: a row is valid only
   until the operator that pushed it refills its batch, so anything
   retaining a row past its vpush (the sort/group barriers) must copy
   it out. *)
let vrow_into b j (src : rt) : rt =
  let n = Array.length src in
  let dst = b.vrows.(j) in
  if Array.length dst = n then begin
    Array.blit src 0 dst 0 n;
    dst
  end
  else begin
    let dst = Array.copy src in
    b.vrows.(j) <- dst;
    dst
  end

(* Per-clause row accounting under the same labels the interpreter
   uses, resolved once per invocation and bulk-added per batch. *)
let vcounter vctx label =
  if not vctx.vinstr then fun _ -> ()
  else begin
    let c = Telemetry.clause_counter label in
    fun n ->
      if n > 0 then begin
        Telemetry.add c n;
        Telemetry.add Telemetry.c_rows_emitted n
      end
  end

(* Cross-invocation reuse of hash-join build tables.

   [Server.execute] recompiles its plan on every call, so a memo inside
   the compiled closure would never survive long enough to hit.  When
   the build side is a closed expression (no free variables) and the
   build key reads nothing but the join variable, the finished table is
   a pure function of the source *sequence* and the key expression —
   and the dsp scan cache hands back the physically same sequence until
   the underlying data's revision bumps.  Keying on physical identity
   of the source therefore gets revision tracking for free: a fresh
   materialization is a fresh list, which simply misses.

   The cache is a short move-to-front list; workloads hash-join against
   a handful of hot scans and the [==] probe costs nothing.  Stale
   entries age out by eviction. *)
type jt_entry = {
  je_src : Item.sequence;
  je_key : X.expr;  (* build-key AST, compared structurally *)
  je_cmp : bool;  (* value_cmp flag — changes probe/poison semantics *)
  je_table : Join_table.t;
}

(* Domain-local for the same reason as the batch pools: the cache is a
   mutable MRU list probed on every hash-join build, and sharding it
   per domain keeps the probe lock-free.  The build tables themselves
   are immutable once built, and the scan cache already shares the
   expensive part (the materialized source) across domains. *)
let jt_cache : jt_entry list ref Mcore.Dls.key =
  Mcore.Dls.new_key (fun () -> ref [])

let jt_cache_cap = 8

let jt_find src key value_cmp =
  let jt_cache = Mcore.Dls.get jt_cache in
  let rec go acc = function
    | [] -> None
    | e :: rest ->
      if e.je_src == src && e.je_cmp = value_cmp && e.je_key = key then begin
        jt_cache := e :: List.rev_append acc rest;
        Some e.je_table
      end
      else go (e :: acc) rest
  in
  go [] !jt_cache

let jt_store src key value_cmp table =
  let jt_cache = Mcore.Dls.get jt_cache in
  let e =
    { je_src = src; je_key = key; je_cmp = value_cmp; je_table = table }
  in
  let kept = List.filteri (fun i _ -> i < jt_cache_cap - 1) !jt_cache in
  jt_cache := e :: kept

(* ------------------------------------------------------------------ *)
(* Columnar (struct-of-arrays) pipeline plumbing

   The columnar engine replaces the row-snapshot batches above with one
   value vector per bound variable ([Batch.columns]): operators read
   and write whole columns under a selection vector, and expanders and
   barriers copy only the columns the remainder of the pipeline can
   still read (required-column pruning, computed from
   [Optimize.free_vars] at compile time).  Per-row expression
   evaluation reuses the row compiler's closures: each operator gathers
   just its own free-variable columns into a per-invocation scratch
   slot array and runs the ordinary [comp] on it. *)

(* Push-based columnar operator chain, mirroring [vsink]. *)
type csink = {
  cpush : Batch.columns -> unit;
  cflush : unit -> unit;
}

(* Per-invocation context: capacity, pooled allocator, telemetry flag,
   total slot count and the shared scratch row.  The scratch is safe to
   share across the chain because every operator (re)gathers its
   columns per selected row before evaluating, and nothing reads it
   across a downstream emission. *)
type cctx = {
  ccap : int;
  calloc : unit -> Batch.columns;
  cinstr : bool;
  cnslots : int;
  cscratch : rt;
}

(* Columnar batch emission: the same failpoint site and batch counters
   as the row-batch engine (so batch-boundary failpoint and toggle
   tests hold on both layouts), plus the columnar-specific traffic
   counters layered on top. *)
let cnote_batch n =
  vnote_batch n;
  Telemetry.incr Telemetry.c_col_batches;
  Telemetry.add Telemetry.c_col_rows n

(* Columnar buffers are pooled per domain exactly like [vbatch_pools];
   a pooled buffer is re-shaped to the current plan's slot count and
   capacity by [Batch.ensure_columns] on acquire. *)
let cbatch_pools : (int * Batch.columns list ref) list ref Mcore.Dls.key =
  Mcore.Dls.new_key (fun () -> ref [])

let cbatch_pool_for cap =
  let cbatch_pools = Mcore.Dls.get cbatch_pools in
  match List.assoc_opt cap !cbatch_pools with
  | Some p -> p
  | None ->
    let p = ref [] in
    let rec keep n = function
      | [] -> []
      | _ when n = 0 -> []
      | e :: rest -> e :: keep (n - 1) rest
    in
    cbatch_pools := (cap, p) :: keep (vbatch_pool_caps - 1) !cbatch_pools;
    p

let cbatch_release (pool : Batch.columns list ref) acquired =
  let rec keep n bs =
    if n = 0 then []
    else match bs with [] -> [] | b :: rest -> b :: keep (n - 1) rest
  in
  pool := keep vbatch_pool_cap (List.rev_append acquired !pool)

let ccounter cctx label =
  if not cctx.cinstr then fun _ -> ()
  else begin
    let c = Telemetry.clause_counter label in
    fun n ->
      if n > 0 then begin
        Telemetry.add c n;
        Telemetry.add Telemetry.c_rows_emitted n
      end
  end

(* Columnar clause plan: plain clauses, plus group-by clauses whose
   post-group aggregate reads were fused into vectorized kernels (the
   partition is then never materialized). *)
type cclause =
  | C_plain of X.clause
  | C_kernel of {
      ck_grouped : string;
      ck_partition : string;
      ck_keys : (X.expr * string) list;
      ck_specs : Optimize.kernel_spec list;
      ck_orig : X.clause;  (* the original [Group], for liveness views *)
    }

let cclause_view = function C_plain c -> c | C_kernel k -> k.ck_orig

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)

(* the context-item pseudo-variable used by predicates *)
let dot = "."

let rec compile_expr_c (cenv : cenv) (e : X.expr) : comp =
  match e with
  | X.Literal a ->
    let item = [ Item.Atomic a ] in
    fun _ -> item
  | X.Var v ->
    let slot = lookup_slot cenv v in
    fun rt -> rt.(slot)
  | X.Context_item ->
    let slot = lookup_slot cenv dot in
    fun rt -> rt.(slot)
  | X.Seq es ->
    let parts = List.map (compile_expr_c cenv) es in
    fun rt -> List.concat_map (fun c -> c rt) parts
  | X.Flwor f -> compile_flwor cenv f
  | X.Path (base, steps) -> (
    let cbase = compile_expr_c cenv base in
    let csteps =
      List.map
        (fun (s : X.step) ->
          ( compile_step_matcher s.X.name,
            List.map (compile_predicate cenv) s.X.predicates ))
        steps
    in
    match csteps with
    | [ (m, []) ] ->
      (* single unpredicated child step — the shape of every translated
         column access, worth keeping free of fold/closure overhead *)
      fun rt -> (
        match cbase rt with
        | [ item ] -> children_matching m item
        | seq -> List.concat_map (children_matching m) seq)
    | _ ->
      fun rt ->
        List.fold_left
          (fun seq (m, preds) ->
            let widened = List.concat_map (children_matching m) seq in
            List.fold_left (fun items p -> p rt items) widened preds)
          (cbase rt) csteps)
  | X.Call (name, args) -> (
    let cargs = List.map (compile_expr_c cenv) args in
    (* arity-specialized application: no per-call List.map closure for
       the ubiquitous nullary scans and unary fn:data wrappers *)
    let apply impl =
      match cargs with
      | [] -> fun _ -> impl []
      | [ c ] -> fun rt -> impl [ c rt ]
      | [ c1; c2 ] -> fun rt -> impl [ c1 rt; c2 rt ]
      | _ -> fun rt -> impl (List.map (fun c -> c rt) cargs)
    in
    match Functions.lookup name with
    | Some impl -> apply impl
    | None -> (
      match cenv.resolve name with
      | Some impl -> apply impl
      | None -> cfail "unknown function %s" name))
  | X.Elem { name; content } ->
    let parts =
      List.map
        (fun part ->
          match part with
          | X.Text s ->
            let nodes = if s = "" then [] else [ Item.Node (Node.Text s) ] in
            fun _ -> nodes
          | _ -> compile_expr_c cenv part)
        content
    in
    fun rt ->
      let body =
        match parts with
        | [ p ] -> p rt
        | _ -> List.concat_map (fun c -> c rt) parts
      in
      (* fast paths for the dominant constructed shapes (a single
         atomized column value or a single node) — same results as
         [normalize_content], without its accumulator passes *)
      let children =
        match body with
        | [] -> []
        | [ Item.Atomic a ] -> [ Node.Text (Atomic.to_lexical a) ]
        | [ Item.Node n ] -> [ n ]
        | body -> normalize_content body
      in
      [ Item.Node (Node.Element { Node.name; attrs = []; children }) ]
  | X.Text s ->
    let v = Item.of_string s in
    fun _ -> v
  | X.If (c, t, e) ->
    let cc = compile_expr_c cenv c in
    let ct = compile_expr_c cenv t in
    let ce = compile_expr_c cenv e in
    fun rt ->
      if Item.effective_boolean_value (cc rt) then ct rt else ce rt
  | X.Binop (op, a, b) -> (
    let ca = compile_expr_c cenv a and cb = compile_expr_c cenv b in
    match op with
    | X.B_and ->
      fun rt ->
        Item.of_bool
          (Item.effective_boolean_value (ca rt)
          && Item.effective_boolean_value (cb rt))
    | X.B_or ->
      fun rt ->
        Item.of_bool
          (Item.effective_boolean_value (ca rt)
          || Item.effective_boolean_value (cb rt))
    | X.B_general cmp ->
      fun rt -> Item.of_bool (general_compare cmp (ca rt) (cb rt))
    | X.B_value cmp -> fun rt -> value_compare cmp (ca rt) (cb rt)
    | X.B_arith op -> (
      fun rt ->
        match (Item.atomize (ca rt), Item.atomize (cb rt)) with
        | [], _ | _, [] -> []
        | [ x ], [ y ] -> [ Item.Atomic (arith_atomic op x y) ]
        | _ -> dfail "arithmetic requires singleton operands"))
  | X.Neg a -> (
    let ca = compile_expr_c cenv a in
    fun rt ->
      match Item.atomize (ca rt) with
      | [] -> []
      | [ Atomic.Integer i ] -> Item.of_int (-i)
      | [ v ] -> [ Item.Atomic (Atomic.Double (-.Atomic.cast_double v)) ]
      | _ -> dfail "unary minus requires a singleton operand")
  | X.Quantified { every; bindings; satisfies } ->
    let rec build cenv = function
      | [] ->
        let cs = compile_expr_c cenv satisfies in
        fun rt -> Item.effective_boolean_value (cs rt)
      | (var, src) :: rest ->
        let csrc = compile_expr_c cenv src in
        let cenv', slot = bind_slot cenv var in
        let inner = build cenv' rest in
        fun rt ->
          let items = csrc rt in
          let test item =
            rt.(slot) <- [ item ];
            inner rt
          in
          if every then List.for_all test items else List.exists test items
    in
    let body = build cenv bindings in
    fun rt -> Item.of_bool (body rt)
  | X.Filter (base, pred) ->
    let cbase = compile_expr_c cenv base in
    let cpred = compile_predicate cenv pred in
    fun rt -> cpred rt (cbase rt)

(* Predicates rebind the context item per candidate and handle the
   positional case. *)
(* Boolean-context compilation: a condition consumed only for its
   effective boolean value skips the intermediate boolean item, and a
   general comparison against a literal hoists the constant atom out of
   the per-row path — the shape of every translated residual filter. *)
and compile_cond cenv (e : X.expr) : rt -> bool =
  match e with
  | X.Binop (X.B_and, a, b) ->
    let ca = compile_cond cenv a and cb = compile_cond cenv b in
    fun rt -> ca rt && cb rt
  | X.Binop (X.B_or, a, b) ->
    let ca = compile_cond cenv a and cb = compile_cond cenv b in
    fun rt -> ca rt || cb rt
  | X.Binop (X.B_general cmp, a, X.Literal atom) ->
    let ca = compile_expr_c cenv a in
    fun rt ->
      List.exists
        (fun l -> cmp_holds cmp (Atomic.compare_values l atom))
        (Item.atomize (ca rt))
  | X.Binop (X.B_general cmp, X.Literal atom, b) ->
    let cb = compile_expr_c cenv b in
    fun rt ->
      List.exists
        (fun r -> cmp_holds cmp (Atomic.compare_values atom r))
        (Item.atomize (cb rt))
  | X.Binop (X.B_general cmp, a, b) ->
    let ca = compile_expr_c cenv a and cb = compile_expr_c cenv b in
    fun rt -> general_compare cmp (ca rt) (cb rt)
  | _ ->
    let c = compile_expr_c cenv e in
    fun rt -> Item.effective_boolean_value (c rt)

and compile_predicate cenv (pred : X.expr) : rt -> Item.sequence -> Item.sequence =
  let cenv', slot = bind_slot cenv dot in
  let cpred = compile_expr_c cenv' pred in
  fun rt items ->
    List.filteri
      (fun i item ->
        rt.(slot) <- [ item ];
        match cpred rt with
        | [ Item.Atomic a ] when Atomic.is_numeric a ->
          Atomic.cast_double a = float_of_int (i + 1)
        | result -> Item.effective_boolean_value result)
      items

(* FLWOR compilation dispatch: the columnar struct-of-arrays pipeline
   by default, the row-snapshot batch pipeline with [~columnar:false]
   (the differential oracle for the columnar layout), and the
   tuple-at-a-time snapshot pipeline with [~vectorize:false] (the
   oracle both batch engines are differentially tested against). *)
and compile_flwor cenv (f : X.flwor) : comp =
  if cenv.vectorize then
    if cenv.columnar then compile_flwor_col cenv f
    else compile_flwor_vec cenv f
  else compile_flwor_row cenv f

(* Tuple-at-a-time FLWOR compilation.  Chains of for/let/where
   ("segments") run as per-tuple nested loops; order-by and group-by
   are barriers that must see the whole tuple stream.  A compiled
   pipeline is therefore a transformer over snapshot lists:

     lift(segment0) ; barrier1 ; lift(segment1) ; ... ; return

   where a snapshot is a copy of the slot array and [lift] maps a
   per-tuple segment over every incoming snapshot. *)
and compile_flwor_row cenv (f : X.flwor) : comp =
  (* a segment enumerates the tuples reachable from the current slots *)
  let rec segment cenv clauses : (rt -> rt list) * cenv =
    match clauses with
    | [] ->
      ( (fun rt ->
          (* one budget step per tuple completing a segment: the
             compiled pipeline stays cancelable between tuples *)
          Budget.step ();
          [ Array.copy rt ]),
        cenv )
    | X.For { var; source } :: rest ->
      let csrc = compile_expr_c cenv source in
      let cenv', slot = bind_slot cenv var in
      let inner, cenv_out = segment cenv' rest in
      ( (fun rt ->
          List.concat_map
            (fun item ->
              Budget.step ();
              rt.(slot) <- [ item ];
              inner rt)
            (csrc rt)),
        cenv_out )
    | X.Let { var; value } :: rest ->
      let cval = compile_expr_c cenv value in
      let cenv', slot = bind_slot cenv var in
      let inner, cenv_out = segment cenv' rest in
      ( (fun rt ->
          rt.(slot) <- cval rt;
          inner rt),
        cenv_out )
    | X.Where cond :: rest ->
      let ccond = compile_expr_c cenv cond in
      let inner, cenv_out = segment cenv rest in
      ( (fun rt ->
          if Item.effective_boolean_value (ccond rt) then inner rt else []),
        cenv_out )
    | (X.Order_by _ | X.Group _ | X.Hash_join _) :: _ ->
      assert false  (* split below *)
  in
  (* Hash joins are handled at the stage level (not inside a segment):
     the build table must be created per invocation of the compiled
     code — a compile-time closure would leak the table across
     re-evaluations of the FLWOR under different outer bindings. *)
  let split_barrier clauses =
    let rec go acc = function
      | [] -> (List.rev acc, None, [])
      | ((X.Order_by _ | X.Group _ | X.Hash_join _) as b) :: rest ->
        (List.rev acc, Some b, rest)
      | c :: rest -> go (c :: acc) rest
    in
    go [] clauses
  in
  (* stages : rt -> snapshot list -> snapshot list *)
  let rec stages cenv clauses : (rt -> rt list -> rt list) * cenv =
    let before, barrier, rest = split_barrier clauses in
    let cseg, cenv1 = segment cenv before in
    let lifted rt snaps =
      List.concat_map
        (fun snap ->
          Array.blit snap 0 rt 0 (Array.length snap);
          cseg rt)
        snaps
    in
    match barrier with
    | None -> (lifted, cenv1)
    | Some (X.Order_by specs) ->
      let ckeys =
        List.map
          (fun (s : X.order_spec) ->
            (compile_expr_c cenv1 s.X.key, s.X.descending, s.X.empty))
          specs
      in
      let crest, cenv_out = stages cenv1 rest in
      ( (fun rt snaps ->
          let keyed =
            List.map
              (fun snap ->
                ( List.map (fun (ck, _, _) -> Item.atomize (ck snap)) ckeys,
                  snap ))
              (lifted rt snaps)
          in
          let compare_keyed (ka, _) (kb, _) = compare_order_keys ckeys ka kb in
          crest rt
            (List.map snd (List.stable_sort compare_keyed keyed))),
        cenv_out )
    | Some (X.Group { grouped; partition; keys }) ->
      let grouped_slot = lookup_slot cenv1 grouped in
      let ckeys = List.map (fun (k, _) -> compile_expr_c cenv1 k) keys in
      (* post-group scope: outer bindings + key vars + partition — the
         segment's own bindings are dropped, matching Eval *)
      let cenv_post = { cenv1 with slots = cenv.slots } in
      let cenv_post, key_slots =
        List.fold_left
          (fun (ce, acc) (_, var) ->
            let ce', slot = bind_slot ce var in
            (ce', slot :: acc))
          (cenv_post, []) keys
      in
      let key_slots = List.rev key_slots in
      let cenv_post, partition_slot = bind_slot cenv_post partition in
      let crest, cenv_out = stages cenv_post rest in
      ( (fun rt snaps ->
          let table = Hashtbl.create 16 in
          let order = ref [] in
          (* per-invocation key scratch: [composite_into] reuses one
             buffer across every tuple of this group operator instead
             of allocating a fresh one per key (invocation-local, so
             shared plans stay safe across domains) *)
          let keybuf = Buffer.create 64 in
          List.iter
            (fun snap ->
              let key_values = List.map (fun ck -> ck snap) ckeys in
              let key_string = Group_key.composite_into keybuf key_values in
              match Hashtbl.find_opt table key_string with
              | Some (acc, _, _) -> acc := snap.(grouped_slot) :: !acc
              | None ->
                Hashtbl.add table key_string
                  (ref [ snap.(grouped_slot) ], key_values, snap);
                order := key_string :: !order)
            (lifted rt snaps);
          let grouped_snaps =
            List.map
              (fun key_string ->
                let acc, key_values, first_snap =
                  Hashtbl.find table key_string
                in
                let out = Array.copy first_snap in
                List.iter2
                  (fun slot v -> out.(slot) <- v)
                  key_slots key_values;
                out.(partition_slot) <- List.concat (List.rev !acc);
                out)
              (List.rev !order)
          in
          crest rt grouped_snaps),
        cenv_out )
    | Some (X.Hash_join { var; source; build_key; probe_key; value_cmp }) ->
      let csrc = compile_expr_c cenv1 source in
      let cprobe = compile_expr_c cenv1 probe_key in
      let cenv2, var_slot = bind_slot cenv1 var in
      let cbuild = compile_expr_c cenv2 build_key in
      let crest, cenv_out = stages cenv2 rest in
      ( (fun rt snaps ->
          Failpoint.hit "xqeval.hashjoin";
          match lifted rt snaps with
          | [] -> crest rt []  (* empty probe stream: never build *)
          | first :: _ as snaps ->
            (* [source] and [build_key] only read outer slots (plus the
               join variable), which hold the same values in every
               snapshot — evaluating against the first is safe. *)
            Array.blit first 0 rt 0 (Array.length first);
            let table =
              Join_table.build (csrc rt)
                ~key_of:(fun item ->
                  rt.(var_slot) <- [ item ];
                  cbuild rt)
                ~value_cmp
            in
            let joined =
              List.concat_map
                (fun snap ->
                  Array.blit snap 0 rt 0 (Array.length snap);
                  let probe_atoms = Item.atomize (cprobe rt) in
                  List.map
                    (fun k ->
                      rt.(var_slot) <- [ table.Join_table.items.(k) ];
                      Array.copy rt)
                    (Join_table.probe table ~value_cmp probe_atoms))
                snaps
            in
            crest rt joined),
        cenv_out )
    | Some (X.For _ | X.Let _ | X.Where _) -> assert false
  in
  let cstages, cenv_ret = stages cenv f.X.clauses in
  let cret = compile_expr_c cenv_ret f.X.return in
  fun rt ->
    let finals = cstages rt [ Array.copy rt ] in
    List.concat_map
      (fun snap ->
        Array.blit snap 0 rt 0 (Array.length snap);
        cret rt)
      finals

(* Vectorized FLWOR compilation.  Each clause becomes a push-based
   operator over batches of tuple snapshots; per-clause setup (slot
   resolution, key compilation, group-key buffers, clause counters) is
   hoisted out of the inner loop, where filters compact the selection
   vector in place, and expanders (for, hash-join) append into a
   pooled output batch flushed downstream at capacity.

   Ownership: batches own their row storage ([vrow_into]).  A row is
   valid only while its producing operator is between refills — the
   pipeline is synchronous, so that covers the whole downstream chain
   for the duration of one vpush.  A let clause may therefore write its
   slot into the row in place, but the sort/group barriers, which keep
   rows across batch boundaries, copy each retained row out of the
   batch first.

   Resilience: [Budget.steps] is charged per batch receipt at every
   operator plus per produced row at expanders, so fuel accounting
   stays within a constant factor of the tuple-at-a-time pipeline and
   deadlines cancel between batches; the "xqeval.batch" failpoint
   fires at every batch emission, and the per-clause "xqeval.clause" /
   "xqeval.hashjoin" sites fire once per clause per invocation,
   matching the interpreter's eager pipeline construction. *)
and compile_flwor_vec cenv (f : X.flwor) : comp =
  (* [build] compiles each clause to an operator maker, threading the
     slot environment exactly as the row path does.  [stage_base] is
     the environment at the start of the current stage (i.e. after the
     previous barrier): the group-by clause drops the current stage's
     segment bindings back to it, mirroring [compile_flwor_row]. *)
  let rec build cenv stage_base i clauses :
      (string * (vctx -> vsink -> vsink)) list * cenv =
    match clauses with
    | [] -> ([], cenv)
    | clause :: rest ->
      let labeled_mk, cenv', base' =
        match clause with
        | X.For { var; source } ->
          let csrc = compile_expr_c cenv source in
          let cenv', slot = bind_slot cenv var in
          let label = "for $" ^ var in
          let mk vctx down =
            let count = vcounter vctx label in
            let out = vctx.valloc () in
            let emit () =
              if out.vn > 0 then begin
                vnote_batch out.vn;
                down.vpush out;
                out.vn <- 0
              end
            in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  for k = 0 to b.vn - 1 do
                    let r = b.vrows.(b.vsel.(k)) in
                    match csrc r with
                    | [] -> ()
                    | items ->
                      Budget.steps (List.length items);
                      count (List.length items);
                      List.iter
                        (fun item ->
                          let o = vrow_into out out.vn r in
                          o.(slot) <- [ item ];
                          out.vsel.(out.vn) <- out.vn;
                          out.vn <- out.vn + 1;
                          if out.vn = vctx.vcap then emit ())
                        items
                  done);
              vflush =
                (fun () ->
                  emit ();
                  down.vflush ());
            }
          in
          ((label, mk), cenv', stage_base)
        | X.Let { var; value } ->
          let cval = compile_expr_c cenv value in
          let cenv', slot = bind_slot cenv var in
          let label = "let $" ^ var in
          let mk vctx down =
            let count = vcounter vctx label in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  for k = 0 to b.vn - 1 do
                    let r = b.vrows.(b.vsel.(k)) in
                    r.(slot) <- cval r
                  done;
                  count b.vn;
                  if b.vn > 0 then down.vpush b);
              vflush = (fun () -> down.vflush ());
            }
          in
          ((label, mk), cenv', stage_base)
        | X.Where cond ->
          let ccond = compile_cond cenv cond in
          let label = Printf.sprintf "where@%d" i in
          let mk vctx down =
            let count = vcounter vctx label in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  let n = b.vn in
                  let j = ref 0 in
                  for k = 0 to n - 1 do
                    let idx = b.vsel.(k) in
                    if ccond b.vrows.(idx)
                    then begin
                      b.vsel.(!j) <- idx;
                      incr j
                    end
                  done;
                  b.vn <- !j;
                  Telemetry.add Telemetry.c_batch_filtered (n - !j);
                  count !j;
                  if b.vn > 0 then down.vpush b);
              vflush = (fun () -> down.vflush ());
            }
          in
          ((label, mk), cenv, stage_base)
        | X.Order_by specs ->
          let ckeys =
            List.map
              (fun (s : X.order_spec) ->
                (compile_expr_c cenv s.X.key, s.X.descending, s.X.empty))
              specs
          in
          let label = Printf.sprintf "order-by@%d" i in
          let mk vctx down =
            let count = vcounter vctx label in
            let acc = ref [] in
            let out = vctx.valloc () in
            let emit () =
              if out.vn > 0 then begin
                vnote_batch out.vn;
                down.vpush out;
                out.vn <- 0
              end
            in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  for k = 0 to b.vn - 1 do
                    let r = b.vrows.(b.vsel.(k)) in
                    let keys =
                      List.map (fun (ck, _, _) -> Item.atomize (ck r)) ckeys
                    in
                    (* retained past this vpush: copy out of the batch *)
                    acc := (keys, Array.copy r) :: !acc
                  done);
              vflush =
                (fun () ->
                  let keyed = List.rev !acc in
                  acc := [];
                  let sorted =
                    List.stable_sort
                      (fun (ka, _) (kb, _) -> compare_order_keys ckeys ka kb)
                      keyed
                  in
                  count (List.length sorted);
                  List.iter
                    (fun (_, r) ->
                      out.vrows.(out.vn) <- r;
                      out.vsel.(out.vn) <- out.vn;
                      out.vn <- out.vn + 1;
                      if out.vn = vctx.vcap then emit ())
                    sorted;
                  emit ();
                  down.vflush ());
            }
          in
          ((label, mk), cenv, cenv)
        | X.Group { grouped; partition; keys } ->
          let grouped_slot = lookup_slot cenv grouped in
          let ckeys = List.map (fun (k, _) -> compile_expr_c cenv k) keys in
          (* post-group scope: stage-entry bindings + key vars +
             partition — the segment's own bindings are dropped *)
          let cenv_post = { cenv with slots = stage_base.slots } in
          let cenv_post, key_slots =
            List.fold_left
              (fun (ce, acc) (_, var) ->
                let ce', slot = bind_slot ce var in
                (ce', slot :: acc))
              (cenv_post, []) keys
          in
          let key_slots = List.rev key_slots in
          let cenv_post, partition_slot = bind_slot cenv_post partition in
          let label = "group by -> $" ^ partition in
          let mk vctx down =
            let count = vcounter vctx label in
            let table = Hashtbl.create 16 in
            let order = ref [] in
            let keybuf = Buffer.create 64 in
            let out = vctx.valloc () in
            let emit () =
              if out.vn > 0 then begin
                vnote_batch out.vn;
                down.vpush out;
                out.vn <- 0
              end
            in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  for k = 0 to b.vn - 1 do
                    let r = b.vrows.(b.vsel.(k)) in
                    let key_values = List.map (fun ck -> ck r) ckeys in
                    let key_string =
                      Group_key.composite_into keybuf key_values
                    in
                    match Hashtbl.find_opt table key_string with
                    | Some (acc, _, _) -> acc := r.(grouped_slot) :: !acc
                    | None ->
                      (* retained past this vpush: copy out of the batch *)
                      Hashtbl.add table key_string
                        (ref [ r.(grouped_slot) ], key_values, Array.copy r);
                      order := key_string :: !order
                  done);
              vflush =
                (fun () ->
                  let groups = List.rev !order in
                  count (List.length groups);
                  List.iter
                    (fun key_string ->
                      let acc, key_values, first =
                        Hashtbl.find table key_string
                      in
                      let o = Array.copy first in
                      List.iter2
                        (fun slot v -> o.(slot) <- v)
                        key_slots key_values;
                      o.(partition_slot) <- List.concat (List.rev !acc);
                      out.vrows.(out.vn) <- o;
                      out.vsel.(out.vn) <- out.vn;
                      out.vn <- out.vn + 1;
                      if out.vn = vctx.vcap then emit ())
                    groups;
                  emit ();
                  down.vflush ());
            }
          in
          ((label, mk), cenv_post, cenv_post)
        | X.Hash_join { var; source; build_key; probe_key; value_cmp } ->
          let csrc = compile_expr_c cenv source in
          let cprobe = compile_expr_c cenv probe_key in
          let cenv2, var_slot = bind_slot cenv var in
          let cbuild = compile_expr_c cenv2 build_key in
          (* reuse eligibility is static: a closed source whose build
             key touches only the join variable always yields the same
             table for the same materialized source sequence *)
          let cacheable =
            Optimize.Vars.is_empty (Optimize.free_vars source)
            && Optimize.Vars.subset
                 (Optimize.free_vars build_key)
                 (Optimize.Vars.singleton var)
          in
          let label = "hash-join $" ^ var in
          let mk vctx down =
            let count = vcounter vctx label in
            (* the build table is created on the first probe-side row
               (an empty probe stream never builds), per invocation *)
            let table = ref None in
            let out = vctx.valloc () in
            let emit () =
              if out.vn > 0 then begin
                vnote_batch out.vn;
                down.vpush out;
                out.vn <- 0
              end
            in
            { vpush =
                (fun b ->
                  Budget.steps b.vn;
                  for k = 0 to b.vn - 1 do
                    let r = b.vrows.(b.vsel.(k)) in
                    let t =
                      match !table with
                      | Some t -> t
                      | None ->
                        (* [source] and [build_key] only read outer
                           slots (plus the join variable), which hold
                           the same values in every row *)
                        let src = csrc r in
                        let build () =
                          Join_table.build src
                            ~key_of:(fun item ->
                              r.(var_slot) <- [ item ];
                              cbuild r)
                            ~value_cmp
                        in
                        let t =
                          if not cacheable then build ()
                          else
                            match jt_find src build_key value_cmp with
                            | Some t ->
                              (* budget parity with a real build: the
                                 materialized build side still counts
                                 against the item governor *)
                              Budget.tick_items
                                (Array.length t.Join_table.items);
                              Telemetry.incr Telemetry.c_hash_join_reused;
                              t
                            | None ->
                              let t = build () in
                              jt_store src build_key value_cmp t;
                              t
                        in
                        table := Some t;
                        t
                    in
                    let probe_atoms = Item.atomize (cprobe r) in
                    match Join_table.probe t ~value_cmp probe_atoms with
                    | [] -> ()
                    | matches ->
                      Budget.steps (List.length matches);
                      count (List.length matches);
                      List.iter
                        (fun m ->
                          let o = vrow_into out out.vn r in
                          o.(var_slot) <- [ t.Join_table.items.(m) ];
                          out.vsel.(out.vn) <- out.vn;
                          out.vn <- out.vn + 1;
                          if out.vn = vctx.vcap then emit ())
                        matches
                  done);
              vflush =
                (fun () ->
                  emit ();
                  down.vflush ());
            }
          in
          ((label, mk), cenv2, cenv2)
      in
      let mks, cenv_out = build cenv' base' (i + 1) rest in
      (labeled_mk :: mks, cenv_out)
  in
  let mks, cenv_ret = build cenv cenv 0 f.X.clauses in
  let cret = compile_expr_c cenv_ret f.X.return in
  fun rt ->
    (* clause failpoints fire once per clause per invocation, like the
       interpreter's eager pipeline fold *)
    List.iter
      (fun clause ->
        Failpoint.hit "xqeval.clause";
        match clause with
        | X.Hash_join _ -> Failpoint.hit "xqeval.hashjoin"
        | _ -> ())
      f.X.clauses;
    let cap = Batch.size () in
    let pool = vbatch_pool_for cap in
    let acquired = ref [] in
    let valloc () =
      let b =
        match !pool with
        | b :: rest ->
          pool := rest;
          b.vn <- 0;
          b
        | [] ->
          { vrows = Array.make cap [||]; vsel = Array.make cap 0; vn = 0 }
      in
      acquired := b :: !acquired;
      b
    in
    let vctx = { vcap = cap; valloc; vinstr = Telemetry.enabled () } in
    (* The operator chain is built downstream-first, so counters would
       otherwise register last-clause-first; touch them in pipeline
       order so clause_rows reads like the plan (as the interpreter's
       clause fold produces naturally). *)
    if vctx.vinstr then
      List.iter
        (fun (label, _) -> ignore (Telemetry.clause_counter label))
        mks;
    let results = ref [] in
    let sink =
      { vpush =
          (fun b ->
            Budget.steps b.vn;
            for k = 0 to b.vn - 1 do
              results := cret b.vrows.(b.vsel.(k)) :: !results
            done);
        vflush = (fun () -> ());
      }
    in
    let chain =
      List.fold_left (fun down (_, mk) -> mk vctx down) sink (List.rev mks)
    in
    let feed = valloc () in
    ignore (vrow_into feed 0 rt);
    feed.vsel.(0) <- 0;
    feed.vn <- 1;
    vnote_batch 1;
    chain.vpush feed;
    chain.vflush ();
    vbatch_release pool !acquired;
    List.concat (List.rev !results)

(* Columnar FLWOR compilation.  Same push-based operator chain as the
   row-batch engine, over [Batch.columns] (one value vector per bound
   slot plus a selection vector) instead of row-snapshot arrays.  Two
   things change materially:

   - Required-column pruning.  Each expander/barrier computes at
     compile time which slots the *remainder* of the pipeline (later
     clauses plus the return) can still read — [Optimize.free_vars] of
     that remainder intersected with the slots bound so far — and
     copies only those columns into its output.  A batch arriving at an
     operator therefore has valid data exactly in the columns live at
     that point; everything else is stale storage no reader touches.

   - Kernel-fused aggregation.  When every post-group read of the
     partition variable is one of the translator's aggregate shapes,
     [Optimize.group_kernels] rewrites them into reads of synthetic
     kernel variables and the group operator keeps one [Kernels.state]
     per (group, kernel) instead of materializing the partition: a
     tight per-tuple update loop during cpush, finished into output
     columns at flush.

   Per-row expression evaluation reuses the scalar [comp] closures:
   each operator gathers its own free-variable columns into the shared
   per-invocation scratch row before evaluating.  The scratch is
   private to the invocation (never the caller's [rt]), so outer slots
   are never clobbered, and nested FLWORs / quantifiers write their own
   fresh slots before reading them.

   Resilience parity with the row-batch engine: [Budget.steps] per
   batch receipt per operator plus per produced row at expanders,
   "xqeval.batch" (via [cnote_batch]) at every batch creation,
   "xqeval.clause"/"xqeval.hashjoin" once per clause per invocation. *)
and compile_flwor_col cenv (f : X.flwor) : comp =
  (* Fuse kernelizable group clauses with their post-group aggregate
     reads before compiling.  The rewrite happens here — in the
     columnar lowering only — so the row and row-batch oracles keep
     evaluating the original AST. *)
  let rec transform clauses return_ =
    match clauses with
    | [] -> ([], return_)
    | (X.Group { grouped; partition; keys } as orig) :: rest -> (
      match Optimize.group_kernels ~partition rest return_ with
      | Some (specs, rest', return') ->
        let rest'', return'' = transform rest' return' in
        ( C_kernel
            { ck_grouped = grouped; ck_partition = partition;
              ck_keys = keys; ck_specs = specs; ck_orig = orig }
          :: rest'',
          return'' )
      | None ->
        let rest', return' = transform rest return_ in
        (C_plain orig :: rest', return'))
    | c :: rest ->
      let rest', return' = transform rest return_ in
      (C_plain c :: rest', return')
  in
  let tclauses, treturn = transform f.X.clauses f.X.return in
  (* Liveness: the variables the rest of the pipeline can still read.
     A fused group is viewed as its original [Group] clause — its
     synthetic kernel variables read nothing upstream, and the slot-set
     intersection drops them from any copy set computed before the
     group binds them. *)
  let live_after rest =
    Optimize.free_vars
      (X.Flwor { clauses = List.map cclause_view rest; return = treturn })
  in
  (* Slots of [vars] bound in [cenv] (innermost binding per name),
     deduplicated ascending. *)
  let bound_slots cenv vars =
    let slots =
      Optimize.Vars.fold
        (fun v acc ->
          match List.assoc_opt v cenv.slots with
          | Some s -> s :: acc
          | None -> acc)
        vars []
    in
    Array.of_list (List.sort_uniq compare slots)
  in
  let gather_of_vars cenv fv = bound_slots cenv fv in
  let gather_slots cenv exprs =
    gather_of_vars cenv
      (List.fold_left
         (fun s e -> Optimize.Vars.union s (Optimize.free_vars e))
         Optimize.Vars.empty exprs)
  in
  (* Load one selected row's gathered columns into the scratch row. *)
  let gather gslots (scratch : rt) (b : Batch.columns) idx =
    for t = 0 to Array.length gslots - 1 do
      let s = Array.unsafe_get gslots t in
      scratch.(s) <- b.Batch.cols.(s).(idx)
    done
  in
  let rec build cenv stage_base i clauses :
      (string * (cctx -> csink -> csink)) list * cenv =
    match clauses with
    | [] -> ([], cenv)
    | clause :: rest ->
      let live = live_after rest in
      let labeled_mk, cenv', base' =
        match clause with
        | C_plain (X.For { var; source }) ->
          let gslots = gather_slots cenv [ source ] in
          let csrc = compile_expr_c cenv source in
          let copy = bound_slots cenv live in
          let copy_n = Array.length copy in
          let cenv', slot = bind_slot cenv var in
          let label = "for $" ^ var in
          let mk cctx down =
            let count = ccounter cctx label in
            let pruned = max 0 (cctx.cnslots - copy_n) in
            let scratch = cctx.cscratch in
            let out = cctx.calloc () in
            let out_cols = Array.map (Batch.column out) copy in
            let var_col = Batch.column out slot in
            let emit () =
              if out.Batch.n > 0 then begin
                cnote_batch out.Batch.n;
                Telemetry.add Telemetry.c_col_pruned_columns
                  (pruned * out.Batch.n);
                down.cpush out;
                out.Batch.n <- 0
              end
            in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  let in_cols =
                    Array.map (fun s -> b.Batch.cols.(s)) copy
                  in
                  for k = 0 to b.Batch.n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    match csrc scratch with
                    | [] -> ()
                    | items ->
                      let nitems = List.length items in
                      Budget.steps nitems;
                      count nitems;
                      List.iter
                        (fun item ->
                          let j = out.Batch.n in
                          for t = 0 to copy_n - 1 do
                            out_cols.(t).(j) <- in_cols.(t).(idx)
                          done;
                          var_col.(j) <- [ item ];
                          out.Batch.sel.(j) <- j;
                          out.Batch.n <- j + 1;
                          if out.Batch.n = cctx.ccap then emit ())
                        items
                  done);
              cflush = (fun () -> emit (); down.cflush ());
            }
          in
          ((label, mk), cenv', stage_base)
        | C_plain (X.Let { var; value }) ->
          let gslots = gather_slots cenv [ value ] in
          let cval = compile_expr_c cenv value in
          let cenv', slot = bind_slot cenv var in
          let label = "let $" ^ var in
          let mk cctx down =
            let count = ccounter cctx label in
            let scratch = cctx.cscratch in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  (* in place: write the new column into the incoming
                     batch at the selected indices *)
                  let col = Batch.column b slot in
                  for k = 0 to b.Batch.n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    col.(idx) <- cval scratch
                  done;
                  count b.Batch.n;
                  if b.Batch.n > 0 then down.cpush b);
              cflush = (fun () -> down.cflush ());
            }
          in
          ((label, mk), cenv', stage_base)
        | C_plain (X.Where cond) ->
          let gslots = gather_slots cenv [ cond ] in
          let ccond = compile_cond cenv cond in
          let label = Printf.sprintf "where@%d" i in
          let mk cctx down =
            let count = ccounter cctx label in
            let scratch = cctx.cscratch in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  let n = b.Batch.n in
                  let j = ref 0 in
                  for k = 0 to n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    if ccond scratch then begin
                      b.Batch.sel.(!j) <- idx;
                      incr j
                    end
                  done;
                  b.Batch.n <- !j;
                  Telemetry.add Telemetry.c_batch_filtered (n - !j);
                  count !j;
                  if b.Batch.n > 0 then down.cpush b);
              cflush = (fun () -> down.cflush ());
            }
          in
          ((label, mk), cenv, stage_base)
        | C_plain (X.Order_by specs) ->
          let gslots =
            gather_slots cenv (List.map (fun (s : X.order_spec) -> s.X.key) specs)
          in
          let ckeys =
            List.map
              (fun (s : X.order_spec) ->
                (compile_expr_c cenv s.X.key, s.X.descending, s.X.empty))
              specs
          in
          let retain = bound_slots cenv live in
          let retain_n = Array.length retain in
          let label = Printf.sprintf "order-by@%d" i in
          let mk cctx down =
            let count = ccounter cctx label in
            let pruned = max 0 (cctx.cnslots - retain_n) in
            let scratch = cctx.cscratch in
            let acc = ref [] in
            let out = cctx.calloc () in
            let out_cols = Array.map (Batch.column out) retain in
            let emit () =
              if out.Batch.n > 0 then begin
                cnote_batch out.Batch.n;
                down.cpush out;
                out.Batch.n <- 0
              end
            in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  Telemetry.add Telemetry.c_col_pruned_columns
                    (pruned * b.Batch.n);
                  let in_cols =
                    Array.map (fun s -> b.Batch.cols.(s)) retain
                  in
                  for k = 0 to b.Batch.n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    let keys =
                      List.map
                        (fun (ck, _, _) -> Item.atomize (ck scratch))
                        ckeys
                    in
                    (* retained past this cpush: copy the live column
                       cells out of the batch *)
                    let saved = Array.map (fun c -> c.(idx)) in_cols in
                    acc := (keys, saved) :: !acc
                  done);
              cflush =
                (fun () ->
                  let keyed = List.rev !acc in
                  acc := [];
                  let sorted =
                    List.stable_sort
                      (fun (ka, _) (kb, _) -> compare_order_keys ckeys ka kb)
                      keyed
                  in
                  count (List.length sorted);
                  List.iter
                    (fun (_, saved) ->
                      let j = out.Batch.n in
                      for t = 0 to retain_n - 1 do
                        out_cols.(t).(j) <- saved.(t)
                      done;
                      out.Batch.sel.(j) <- j;
                      out.Batch.n <- j + 1;
                      if out.Batch.n = cctx.ccap then emit ())
                    sorted;
                  emit ();
                  down.cflush ());
            }
          in
          ((label, mk), cenv, cenv)
        | C_plain (X.Group { grouped; partition; keys }) ->
          (* materializing group: the partition column is built as the
             concatenation of each group's grouped cells *)
          let grouped_slot = lookup_slot cenv grouped in
          let gslots = gather_slots cenv (List.map fst keys) in
          let ckeys = List.map (fun (k, _) -> compile_expr_c cenv k) keys in
          (* BEA scoping: only the stage-base (pre-segment) bindings
             survive the group *)
          let entry_env = { cenv with slots = stage_base.slots } in
          let entry_copy = bound_slots entry_env live in
          let entry_n = Array.length entry_copy in
          let cenv_post, key_slots =
            List.fold_left
              (fun (ce, acc) (_, var) ->
                let ce', slot = bind_slot ce var in
                (ce', slot :: acc))
              (entry_env, []) keys
          in
          let key_slots = List.rev key_slots in
          let cenv_post, partition_slot = bind_slot cenv_post partition in
          let label = "group by -> $" ^ partition in
          let mk cctx down =
            let count = ccounter cctx label in
            let pruned = max 0 (cctx.cnslots - entry_n) in
            let scratch = cctx.cscratch in
            let table = Hashtbl.create 16 in
            let order = ref [] in
            let keybuf = Buffer.create 64 in
            let out = cctx.calloc () in
            let out_entry = Array.map (Batch.column out) entry_copy in
            let out_keys = List.map (Batch.column out) key_slots in
            let part_col = Batch.column out partition_slot in
            let emit () =
              if out.Batch.n > 0 then begin
                cnote_batch out.Batch.n;
                down.cpush out;
                out.Batch.n <- 0
              end
            in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  let grouped_col = b.Batch.cols.(grouped_slot) in
                  let in_entry =
                    Array.map (fun s -> b.Batch.cols.(s)) entry_copy
                  in
                  for k = 0 to b.Batch.n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    let key_values = List.map (fun ck -> ck scratch) ckeys in
                    let key_string =
                      Group_key.composite_into keybuf key_values
                    in
                    match Hashtbl.find_opt table key_string with
                    | Some (acc, _, _) -> acc := grouped_col.(idx) :: !acc
                    | None ->
                      let saved = Array.map (fun c -> c.(idx)) in_entry in
                      Hashtbl.add table key_string
                        (ref [ grouped_col.(idx) ], key_values, saved);
                      order := key_string :: !order
                  done);
              cflush =
                (fun () ->
                  let groups = List.rev !order in
                  count (List.length groups);
                  Telemetry.add Telemetry.c_col_pruned_columns
                    (pruned * List.length groups);
                  List.iter
                    (fun key_string ->
                      let acc, key_values, saved =
                        Hashtbl.find table key_string
                      in
                      let j = out.Batch.n in
                      for t = 0 to entry_n - 1 do
                        out_entry.(t).(j) <- saved.(t)
                      done;
                      List.iter2 (fun c v -> c.(j) <- v) out_keys key_values;
                      part_col.(j) <- List.concat (List.rev !acc);
                      out.Batch.sel.(j) <- j;
                      out.Batch.n <- j + 1;
                      if out.Batch.n = cctx.ccap then emit ())
                    groups;
                  emit ();
                  down.cflush ());
            }
          in
          ((label, mk), cenv_post, cenv_post)
        | C_kernel { ck_grouped; ck_partition; ck_keys; ck_specs; ck_orig = _ }
          ->
          (* kernel group: the partition is never materialized — one
             aggregation-kernel state per (group, spec), updated in a
             tight loop per batch, finished into output columns at
             flush *)
          let grouped_slot = lookup_slot cenv ck_grouped in
          let gslots = gather_slots cenv (List.map fst ck_keys) in
          let ckeys =
            List.map (fun (k, _) -> compile_expr_c cenv k) ck_keys
          in
          let entry_env = { cenv with slots = stage_base.slots } in
          let entry_copy = bound_slots entry_env live in
          let entry_n = Array.length entry_copy in
          let cenv_post, key_slots =
            List.fold_left
              (fun (ce, acc) (_, var) ->
                let ce', slot = bind_slot ce var in
                (ce', slot :: acc))
              (entry_env, []) ck_keys
          in
          let key_slots = List.rev key_slots in
          let cenv_post, spec_slots =
            List.fold_left
              (fun (ce, acc) (s : Optimize.kernel_spec) ->
                let ce', slot = bind_slot ce s.Optimize.k_var in
                (ce', slot :: acc))
              (cenv_post, []) ck_specs
          in
          let spec_slots = Array.of_list (List.rev spec_slots) in
          let spec_info =
            Array.of_list
              (List.map
                 (fun (s : Optimize.kernel_spec) ->
                   ( s.Optimize.k_kind,
                     Option.map compile_step_matcher s.Optimize.k_step ))
                 ck_specs)
          in
          let nspecs = Array.length spec_info in
          let label = "group by -> $" ^ ck_partition in
          let mk cctx down =
            let count = ccounter cctx label in
            let pruned = max 0 (cctx.cnslots - entry_n) in
            let scratch = cctx.cscratch in
            let table = Hashtbl.create 16 in
            let order = ref [] in
            let keybuf = Buffer.create 64 in
            let out = cctx.calloc () in
            let out_entry = Array.map (Batch.column out) entry_copy in
            let out_keys = List.map (Batch.column out) key_slots in
            let out_specs = Array.map (Batch.column out) spec_slots in
            let emit () =
              if out.Batch.n > 0 then begin
                cnote_batch out.Batch.n;
                down.cpush out;
                out.Batch.n <- 0
              end
            in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  Telemetry.with_span "xqeval.columnar.kernel" @@ fun () ->
                  Telemetry.add Telemetry.c_col_kernel_updates
                    (nspecs * b.Batch.n);
                  let grouped_col = b.Batch.cols.(grouped_slot) in
                  let in_entry =
                    Array.map (fun s -> b.Batch.cols.(s)) entry_copy
                  in
                  for k = 0 to b.Batch.n - 1 do
                    let idx = b.Batch.sel.(k) in
                    gather gslots scratch b idx;
                    let key_values = List.map (fun ck -> ck scratch) ckeys in
                    let key_string =
                      Group_key.composite_into keybuf key_values
                    in
                    let states =
                      match Hashtbl.find_opt table key_string with
                      | Some (states, _, _) -> states
                      | None ->
                        let states =
                          Array.map
                            (fun (kind, _) -> Kernels.create kind)
                            spec_info
                        in
                        let saved =
                          Array.map (fun c -> c.(idx)) in_entry
                        in
                        Hashtbl.add table key_string
                          (states, key_values, saved);
                        order := key_string :: !order;
                        states
                    in
                    let slice = grouped_col.(idx) in
                    for t = 0 to nspecs - 1 do
                      let input =
                        match snd spec_info.(t) with
                        | None -> slice
                        | Some matches ->
                          List.concat_map (children_matching matches) slice
                      in
                      Kernels.update states.(t) input
                    done
                  done);
              cflush =
                (fun () ->
                  Telemetry.with_span "xqeval.columnar.kernel" @@ fun () ->
                  let groups = List.rev !order in
                  count (List.length groups);
                  Telemetry.add Telemetry.c_col_pruned_columns
                    (pruned * List.length groups);
                  List.iter
                    (fun key_string ->
                      let states, key_values, saved =
                        Hashtbl.find table key_string
                      in
                      let j = out.Batch.n in
                      for t = 0 to entry_n - 1 do
                        out_entry.(t).(j) <- saved.(t)
                      done;
                      List.iter2 (fun c v -> c.(j) <- v) out_keys key_values;
                      for t = 0 to nspecs - 1 do
                        out_specs.(t).(j) <- Kernels.finish states.(t)
                      done;
                      out.Batch.sel.(j) <- j;
                      out.Batch.n <- j + 1;
                      if out.Batch.n = cctx.ccap then emit ())
                    groups;
                  emit ();
                  down.cflush ());
            }
          in
          ((label, mk), cenv_post, cenv_post)
        | C_plain (X.Hash_join { var; source; build_key; probe_key; value_cmp })
          ->
          (* gather set: [build_key]'s free vars minus the join
             variable — the variable resolves to the fresh slot (bound
             below), never to a same-named outer column, which may be
             pruned at this point *)
          let gslots =
            gather_of_vars cenv
              (Optimize.Vars.union
                 (Optimize.free_vars source)
                 (Optimize.Vars.union
                    (Optimize.free_vars probe_key)
                    (Optimize.Vars.remove var (Optimize.free_vars build_key))))
          in
          let csrc = compile_expr_c cenv source in
          let cprobe = compile_expr_c cenv probe_key in
          let copy = bound_slots cenv live in
          let copy_n = Array.length copy in
          let cenv2, var_slot = bind_slot cenv var in
          let cbuild = compile_expr_c cenv2 build_key in
          let cacheable =
            Optimize.Vars.is_empty (Optimize.free_vars source)
            && Optimize.Vars.subset
                 (Optimize.free_vars build_key)
                 (Optimize.Vars.singleton var)
          in
          let label = "hash-join $" ^ var in
          let mk cctx down =
            let count = ccounter cctx label in
            let pruned = max 0 (cctx.cnslots - copy_n) in
            let scratch = cctx.cscratch in
            let table = ref None in
            let out = cctx.calloc () in
            let out_cols = Array.map (Batch.column out) copy in
            let var_col = Batch.column out var_slot in
            let emit () =
              if out.Batch.n > 0 then begin
                cnote_batch out.Batch.n;
                Telemetry.add Telemetry.c_col_pruned_columns
                  (pruned * out.Batch.n);
                down.cpush out;
                out.Batch.n <- 0
              end
            in
            { cpush =
                (fun b ->
                  Budget.steps b.Batch.n;
                  if b.Batch.n > 0 then begin
                    let in_cols =
                      Array.map (fun s -> b.Batch.cols.(s)) copy
                    in
                    let t =
                      match !table with
                      | Some t -> t
                      | None ->
                        (* [source]/[build_key] only read outer slots,
                           identical in every row: load from the first
                           selected row *)
                        gather gslots scratch b b.Batch.sel.(0);
                        let src = csrc scratch in
                        let build () =
                          Join_table.build src
                            ~key_of:(fun item ->
                              scratch.(var_slot) <- [ item ];
                              cbuild scratch)
                            ~value_cmp
                        in
                        let t =
                          if not cacheable then build ()
                          else
                            match jt_find src build_key value_cmp with
                            | Some t ->
                              Budget.tick_items
                                (Array.length t.Join_table.items);
                              Telemetry.incr Telemetry.c_hash_join_reused;
                              t
                            | None ->
                              let t = build () in
                              jt_store src build_key value_cmp t;
                              t
                        in
                        table := Some t;
                        t
                    in
                    Join_table.probe_batch t ~value_cmp ~rows:b.Batch.n
                      ~atoms_of:(fun k ->
                        let idx = b.Batch.sel.(k) in
                        gather gslots scratch b idx;
                        Item.atomize (cprobe scratch))
                      ~emit:(fun k m ->
                        Budget.step ();
                        count 1;
                        let idx = b.Batch.sel.(k) in
                        let j = out.Batch.n in
                        for c = 0 to copy_n - 1 do
                          out_cols.(c).(j) <- in_cols.(c).(idx)
                        done;
                        var_col.(j) <- [ t.Join_table.items.(m) ];
                        out.Batch.sel.(j) <- j;
                        out.Batch.n <- j + 1;
                        if out.Batch.n = cctx.ccap then emit ())
                  end);
              cflush = (fun () -> emit (); down.cflush ());
            }
          in
          ((label, mk), cenv2, cenv2)
      in
      let mks, cenv_out = build cenv' base' (i + 1) rest in
      (labeled_mk :: mks, cenv_out)
  in
  let mks, cenv_ret = build cenv cenv 0 tclauses in
  let ret_gslots = gather_slots cenv_ret [ treturn ] in
  let cret = compile_expr_c cenv_ret treturn in
  let entry_copy = bound_slots cenv (live_after tclauses) in
  let xclauses = List.map cclause_view tclauses in
  let next_ref = cenv.next in
  fun rt ->
    (* clause failpoints fire once per clause per invocation, like the
       interpreter's eager pipeline fold *)
    List.iter
      (fun clause ->
        Failpoint.hit "xqeval.clause";
        match clause with
        | X.Hash_join _ -> Failpoint.hit "xqeval.hashjoin"
        | _ -> ())
      xclauses;
    let cap = Batch.size () in
    let nslots = max 1 !next_ref in
    let pool = cbatch_pool_for cap in
    let acquired = ref [] in
    let calloc () =
      let b =
        match !pool with
        | b :: rest ->
          pool := rest;
          Batch.ensure_columns b ~slots:nslots ~cap;
          b
        | [] -> Batch.make_columns ~slots:nslots ~cap
      in
      acquired := b :: !acquired;
      b
    in
    let scratch = Array.make nslots [] in
    let cctx =
      { ccap = cap; calloc; cinstr = Telemetry.enabled ();
        cnslots = nslots; cscratch = scratch }
    in
    (* counters register in pipeline order (the chain below is built
       downstream-first) *)
    if cctx.cinstr then
      List.iter
        (fun (label, _) -> ignore (Telemetry.clause_counter label))
        mks;
    let results = ref [] in
    let sink =
      { cpush =
          (fun b ->
            Budget.steps b.Batch.n;
            for k = 0 to b.Batch.n - 1 do
              let idx = b.Batch.sel.(k) in
              gather ret_gslots scratch b idx;
              results := cret scratch :: !results
            done);
        cflush = (fun () -> ());
      }
    in
    let chain =
      List.fold_left (fun down (_, mk) -> mk cctx down) sink (List.rev mks)
    in
    let feed = calloc () in
    Array.iter
      (fun s -> (Batch.column feed s).(0) <- rt.(s))
      entry_copy;
    feed.Batch.sel.(0) <- 0;
    feed.Batch.n <- 1;
    cnote_batch 1;
    chain.cpush feed;
    chain.cflush ();
    cbatch_release pool !acquired;
    List.concat (List.rev !results)

(* ------------------------------------------------------------------ *)

type compiled = {
  code : comp;
  size : int;
  externals : (string * int) list;  (* runtime bindings -> slots *)
}

let no_resolve _ = None

let compile_expr ?(optimize = true) ?(scan_cache = true) ?(vectorize = true)
    ?(columnar = Batch.columnar ()) ?(resolve = no_resolve) ?(vars = [])
    (e : X.expr) =
  (* scoping is checked on the un-optimized AST: pushdown deliberately
     leaves hazardous predicates in place, and the error should point
     at what the caller wrote *)
  (let bound =
     List.fold_left
       (fun s v -> Optimize.Vars.add v s)
       Optimize.Vars.empty vars
   in
   match Optimize.scoping_hazard ~bound e with
   | Some v -> cfail "where clause references $%s before it is bound" v
   | None -> ());
  let e =
    if optimize then
      fst (Optimize.expr ~share_scans:scan_cache ~vectorize ~columnar e)
    else e
  in
  let cenv = { slots = []; next = ref 0; resolve; vectorize; columnar } in
  let cenv, externals =
    List.fold_left
      (fun (ce, acc) v ->
        let ce', slot = bind_slot ce v in
        (ce', (v, slot) :: acc))
      (cenv, []) vars
  in
  let code = compile_expr_c cenv e in
  { code; size = !(cenv.next); externals = List.rev externals }

let compile ?optimize ?scan_cache ?vectorize ?columnar ?resolve ?vars
    (q : X.query) =
  compile_expr ?optimize ?scan_cache ?vectorize ?columnar ?resolve ?vars
    q.X.body

let run ?(bindings = []) t =
  let rt = Array.make (max t.size 1) [] in
  List.iter
    (fun (name, slot) ->
      match List.assoc_opt name bindings with
      | Some seq -> rt.(slot) <- seq
      | None -> dfail "external variable $%s is not bound" name)
    t.externals;
  t.code rt
