module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Node = Aqua_xml.Node
module X = Aqua_xquery.Ast
module Telemetry = Aqua_core.Telemetry
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint

module Env = Map.Make (String)

type external_fn = Item.sequence list -> Item.sequence

type context = {
  vars : Item.sequence Env.t;
  resolve : string -> external_fn option;
}

let context ?(resolve = fun _ -> None) () = { vars = Env.empty; resolve }
let bind ctx name seq = { ctx with vars = Env.add name seq ctx.vars }

let fail = Error.fail

let lookup_var ctx name =
  match Env.find_opt name ctx.vars with
  | Some seq -> seq
  | None -> fail "undefined variable $%s" name

(* ------------------------------------------------------------------ *)
(* Comparison helpers                                                 *)

let cmp_holds (op : X.cmp) c =
  match op with
  | X.Eq -> c = 0
  | X.Ne -> c <> 0
  | X.Lt -> c < 0
  | X.Le -> c <= 0
  | X.Gt -> c > 0
  | X.Ge -> c >= 0

let general_compare op left right =
  (* existential semantics over atomized operands *)
  let latoms = Item.atomize left and ratoms = Item.atomize right in
  List.exists
    (fun a ->
      List.exists (fun b -> cmp_holds op (Atomic.compare_values a b)) ratoms)
    latoms

let value_compare op left right =
  match (Item.atomize left, Item.atomize right) with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> Item.of_bool (cmp_holds op (Atomic.compare_values a b))
  | _ -> fail "value comparison requires singleton operands"

let arith_atomic (op : X.arith) a b =
  let untype = function
    | Atomic.Untyped s -> (
      (* untyped operands are cast to xs:double in arithmetic *)
      match float_of_string_opt (String.trim s) with
      | Some f -> Atomic.Double f
      | None -> fail "cannot use %S in arithmetic" s)
    | v -> v
  in
  let a = untype a and b = untype b in
  match (a, b, op) with
  | Atomic.Integer x, Atomic.Integer y, X.Add -> Atomic.Integer (x + y)
  | Atomic.Integer x, Atomic.Integer y, X.Sub -> Atomic.Integer (x - y)
  | Atomic.Integer x, Atomic.Integer y, X.Mul -> Atomic.Integer (x * y)
  | Atomic.Integer x, Atomic.Integer y, X.Idiv ->
    if y = 0 then fail "integer division by zero" else Atomic.Integer (x / y)
  | Atomic.Integer x, Atomic.Integer y, X.Mod ->
    if y = 0 then fail "modulus by zero" else Atomic.Integer (x mod y)
  | Atomic.Integer x, Atomic.Integer y, X.Div ->
    if y = 0 then fail "division by zero"
    else Atomic.Decimal (float_of_int x /. float_of_int y)
  | _ ->
    let x = Atomic.cast_double a and y = Atomic.cast_double b in
    let promote v =
      (* decimal arithmetic stays decimal; anything double is double *)
      match (a, b) with
      | (Atomic.Double _, _ | _, Atomic.Double _) -> Atomic.Double v
      | _ -> Atomic.Decimal v
    in
    (match op with
    | X.Add -> promote (x +. y)
    | X.Sub -> promote (x -. y)
    | X.Mul -> promote (x *. y)
    | X.Div ->
      if y = 0.0 then fail "division by zero" else promote (x /. y)
    | X.Idiv ->
      if y = 0.0 then fail "integer division by zero"
      else Atomic.Integer (int_of_float (Float.trunc (x /. y)))
    | X.Mod ->
      if y = 0.0 then fail "modulus by zero" else promote (Float.rem x y))

(* ------------------------------------------------------------------ *)
(* Element construction                                               *)

(* XQuery content normalization: adjacent atomic values are joined
   with a single space into one text node; nodes are deep-copied
   (structural sharing is fine for an immutable tree). *)
let normalize_content (seq : Item.sequence) : Node.t list =
  let rec go acc pending = function
    | [] ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      List.rev acc
    | Item.Atomic a :: rest -> go acc (Atomic.to_lexical a :: pending) rest
    | Item.Node n :: rest ->
      let acc =
        match pending with
        | [] -> acc
        | parts -> Node.Text (String.concat " " (List.rev parts)) :: acc
      in
      go (n :: acc) [] rest
  in
  go [] [] seq

(* ------------------------------------------------------------------ *)
(* Path navigation                                                    *)

let step_matches step_name el_name =
  step_name = "*"
  || el_name = step_name
  || Node.local_name el_name = Node.local_name step_name

let children_matching name (item : Item.t) : Item.sequence =
  match item with
  | Item.Atomic _ -> fail "path step applied to an atomic value"
  | Item.Node (Node.Text _) -> []
  | Item.Node (Node.Element e) ->
    List.filter_map
      (function
        | Node.Element c when step_matches name c.name ->
          Some (Item.Node (Node.Element c))
        | Node.Element _ | Node.Text _ -> None)
      e.children

(* ------------------------------------------------------------------ *)
(* The evaluator                                                      *)

let rec eval ctx (e : X.expr) : Item.sequence =
  (* cooperative budget probe: one fuel step per AST node evaluated,
     with an amortized deadline check — a runaway query cannot evaluate
     anything without passing through here *)
  Budget.step ();
  match e with
  | X.Literal a -> [ Item.Atomic a ]
  | X.Var v -> lookup_var ctx v
  | X.Context_item -> lookup_var ctx "."
  | X.Seq es -> List.concat_map (eval ctx) es
  | X.Flwor f -> eval_flwor ctx f
  | X.Path (base, steps) ->
    List.fold_left
      (fun seq (step : X.step) ->
        let widened = List.concat_map (children_matching step.name) seq in
        List.fold_left (apply_predicate ctx) widened step.predicates)
      (eval ctx base) steps
  | X.Call (name, args) -> (
    let argv = List.map (eval ctx) args in
    match Functions.lookup name with
    | Some impl -> impl argv
    | None -> (
      match ctx.resolve name with
      | Some impl -> impl argv
      | None -> fail "unknown function %s" name))
  | X.Elem { name; content } ->
    let body = List.concat_map (eval_content ctx) content in
    [ Item.Node (Node.Element { name; attrs = []; children = normalize_content body }) ]
  | X.Text s -> Item.of_string s
  | X.If (c, t, e) ->
    if Item.effective_boolean_value (eval ctx c) then eval ctx t
    else eval ctx e
  | X.Binop (op, a, b) -> (
    match op with
    | X.B_and ->
      Item.of_bool
        (Item.effective_boolean_value (eval ctx a)
        && Item.effective_boolean_value (eval ctx b))
    | X.B_or ->
      Item.of_bool
        (Item.effective_boolean_value (eval ctx a)
        || Item.effective_boolean_value (eval ctx b))
    | X.B_general cmp ->
      Item.of_bool (general_compare cmp (eval ctx a) (eval ctx b))
    | X.B_value cmp -> value_compare cmp (eval ctx a) (eval ctx b)
    | X.B_arith op -> (
      match (Item.atomize (eval ctx a), Item.atomize (eval ctx b)) with
      | [], _ | _, [] -> []
      | [ x ], [ y ] -> [ Item.Atomic (arith_atomic op x y) ]
      | _ -> fail "arithmetic requires singleton operands"))
  | X.Neg a -> (
    match Item.atomize (eval ctx a) with
    | [] -> []
    | [ Atomic.Integer i ] -> Item.of_int (-i)
    | [ v ] -> [ Item.Atomic (Atomic.Double (-.Atomic.cast_double v)) ]
    | _ -> fail "unary minus requires a singleton operand")
  | X.Quantified { every; bindings; satisfies } ->
    Item.of_bool (eval_quantified ctx every bindings satisfies)
  | X.Filter (base, pred) -> apply_predicate ctx (eval ctx base) pred

and eval_content ctx (e : X.expr) : Item.sequence =
  (* Inside a constructor, literal [Text] stays text even if it looks
     numeric; everything else evaluates normally. *)
  match e with
  | X.Text s -> if s = "" then [] else [ Item.Node (Node.Text s) ]
  | _ -> eval ctx e

and apply_predicate ctx (items : Item.sequence) (pred : X.expr) =
  let n = List.length items in
  List.filteri
    (fun i item ->
      let ctx = bind ctx "." [ item ] in
      ignore n;
      let result = eval ctx pred in
      match result with
      | [ Item.Atomic a ] when Atomic.is_numeric a ->
        (* positional predicate *)
        Atomic.cast_double a = float_of_int (i + 1)
      | _ -> Item.effective_boolean_value result)
    items

and eval_quantified ctx every bindings satisfies =
  let rec go ctx = function
    | [] -> Item.effective_boolean_value (eval ctx satisfies)
    | (var, src) :: rest ->
      let items = eval ctx src in
      let test item = go (bind ctx var [ item ]) rest in
      if every then List.for_all test items else List.exists test items
  in
  go ctx bindings

(* FLWOR: clauses transform a stream of variable environments.  The
   stream is a lazy [Seq.t], so a chain of for/let/where clauses (and
   hash joins) runs tuple-at-a-time without materializing intermediate
   cross products; only the [group by] and [order by] barriers snapshot
   the stream to a list, mirroring the compile-time slot model. *)
and eval_flwor ctx (f : X.flwor) : Item.sequence =
  (* Telemetry: when enabled, each clause's output stream is wrapped
     with a per-clause row counter (resolved once per FLWOR evaluation,
     not per tuple).  Labels read like plan nodes; positional suffixes
     keep same-kind clauses of one pipeline distinct. *)
  let instrument = Telemetry.enabled () in
  let count_rows i clause envs =
    if not instrument then envs
    else begin
      let label =
        match clause with
        | X.For { var; _ } -> "for $" ^ var
        | X.Let { var; _ } -> "let $" ^ var
        | X.Where _ -> Printf.sprintf "where@%d" i
        | X.Group { partition; _ } -> "group by -> $" ^ partition
        | X.Order_by _ -> Printf.sprintf "order-by@%d" i
        | X.Hash_join { var; _ } -> "hash-join $" ^ var
      in
      let c = Telemetry.clause_counter label in
      Seq.map
        (fun env ->
          Telemetry.incr c;
          Telemetry.incr Telemetry.c_rows_emitted;
          env)
        envs
    end
  in
  (* Resilience: each clause is a failpoint site, and when a budget is
     installed every tuple leaving a clause costs one budget step — so
     a deadline cancels the pipeline between tuples, never mid-clause. *)
  let governed = Budget.active () in
  let govern envs =
    if not governed then envs
    else
      Seq.map
        (fun env ->
          Budget.step ();
          env)
        envs
  in
  let apply envs clause =
    Failpoint.hit "xqeval.clause";
    (match clause with X.Hash_join _ -> Failpoint.hit "xqeval.hashjoin" | _ -> ());
    govern @@
    match clause with
        | X.For { var; source } ->
          Seq.concat_map
            (fun env ->
              List.to_seq (eval { ctx with vars = env } source)
              |> Seq.map (fun item -> Env.add var [ item ] env))
            envs
        | X.Let { var; value } ->
          Seq.map
            (fun env -> Env.add var (eval { ctx with vars = env } value) env)
            envs
        | X.Where cond ->
          Seq.filter
            (fun env ->
              Item.effective_boolean_value (eval { ctx with vars = env } cond))
            envs
        | X.Group { grouped; partition; keys } ->
          List.to_seq (eval_group ctx (List.of_seq envs) grouped partition keys)
        | X.Order_by specs -> List.to_seq (eval_order ctx (List.of_seq envs) specs)
        | X.Hash_join { var; source; build_key; probe_key; value_cmp } ->
          (* Build side hashed once, on first demand (if the incoming
             stream is empty the source is never evaluated, matching
             the nested loop).  Recognition guarantees [source] does
             not depend on pipeline bindings, so the FLWOR's entry
             context is the right evaluation environment. *)
          let table =
            lazy
              (Join_table.build (eval ctx source)
                 ~key_of:(fun item ->
                   eval { ctx with vars = Env.add var [ item ] ctx.vars }
                     build_key)
                 ~value_cmp)
          in
          Seq.concat_map
            (fun env ->
              let t = Lazy.force table in
              let probe_atoms =
                Item.atomize (eval { ctx with vars = env } probe_key)
              in
              Join_table.probe t ~value_cmp probe_atoms
              |> List.to_seq
              |> Seq.map (fun k -> Env.add var [ t.Join_table.items.(k) ] env))
            envs
  in
  let _, stream =
    List.fold_left
      (fun (i, envs) clause -> (i + 1, count_rows i clause (apply envs clause)))
      (0, Seq.return ctx.vars) f.clauses
  in
  List.of_seq
    (Seq.concat_map
       (fun env -> List.to_seq (eval { ctx with vars = env } f.return))
       stream)

and eval_group ctx envs grouped partition keys =
  (* Partition the tuple stream by the grouping keys.  The output
     stream binds only the key variables and the partition variable,
     which accumulates the grouped variable's items across the group
     (BEA group-by extension semantics, paper section 3.5). *)
  let table : (string, Item.sequence list ref * Item.sequence list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun env ->
      let ctx = { ctx with vars = env } in
      let key_values = List.map (fun (k, _) -> eval ctx k) keys in
      let key_string = Group_key.composite key_values in
      let grouped_items =
        match Env.find_opt grouped env with
        | Some seq -> seq
        | None -> fail "group clause: undefined variable $%s" grouped
      in
      match Hashtbl.find_opt table key_string with
      | Some (acc, _) -> acc := grouped_items :: !acc
      | None ->
        Hashtbl.add table key_string (ref [ grouped_items ], key_values);
        order := key_string :: !order)
    envs;
  (* Output tuples keep the FLWOR's enclosing environment (so outer
     lets and correlated variables stay visible) and bind only the key
     variables plus the partition on top of it — same-FLWOR bindings
     from before the group clause do not survive. *)
  List.rev_map
    (fun key_string ->
      let acc, key_values = Hashtbl.find table key_string in
      let env =
        List.fold_left2
          (fun env (_, var) value -> Env.add var value env)
          ctx.vars keys key_values
      in
      Env.add partition (List.concat (List.rev !acc)) env)
    !order

and eval_order ctx envs specs =
  let keyed =
    List.map
      (fun env ->
        let keys =
          List.map
            (fun (s : X.order_spec) ->
              (Item.atomize (eval { ctx with vars = env } s.key), s))
            specs
        in
        (keys, env))
      envs
  in
  let compare_key (a, (s : X.order_spec)) (b, _) =
    let c =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> ( match s.empty with X.Empty_least -> -1 | X.Empty_greatest -> 1)
      | _, [] -> ( match s.empty with X.Empty_least -> 1 | X.Empty_greatest -> -1)
      | x :: _, y :: _ -> Atomic.compare_values x y
    in
    if s.descending then -c else c
  in
  let compare_env (ka, _) (kb, _) =
    let rec go = function
      | [] -> 0
      | (a, b) :: rest ->
        let c = compare_key a b in
        if c <> 0 then c else go rest
    in
    go (List.combine ka kb)
  in
  List.map snd (List.stable_sort compare_env keyed)

(* ------------------------------------------------------------------ *)
(* Public entry points                                                *)

(* The scoping check and the optimizer each walk the AST once per
   [eval] entry (never per tuple): the recursive evaluator above is
   reached only through these wrappers from the outside. *)

let check_scoping ctx e =
  let bound =
    Env.fold (fun v _ s -> Optimize.Vars.add v s) ctx.vars Optimize.Vars.empty
  in
  match Optimize.scoping_hazard ~bound e with
  | Some v -> fail "where clause references $%s before it is bound" v
  | None -> ()

let eval ?(optimize = true) ?(scan_cache = true) ?(vectorize = true)
    ?(columnar = Batch.columnar ()) ctx (e : X.expr) =
  check_scoping ctx e;
  let interpret () =
    let e =
      if optimize then
        fst (Optimize.expr ~share_scans:scan_cache ~vectorize:false e)
      else e
    in
    eval ctx e
  in
  (* The optimized path executes through the compiled batch engine;
     the tuple-at-a-time interpreter above remains the differential
     oracle ([~vectorize:false]) and the fallback for any expression
     the compiler rejects.  Only compile-time rejection falls back:
     dynamic errors from the compiled code propagate, as they carry
     the same SQLSTATE mapping either way. *)
  if optimize && vectorize then begin
    let bindings = Env.bindings ctx.vars in
    match
      Compile.compile_expr ~optimize ~scan_cache ~vectorize:true ~columnar
        ~resolve:ctx.resolve
        ~vars:(List.map fst bindings)
        e
    with
    | compiled -> Compile.run ~bindings compiled
    | exception Compile.Compile_error _ -> interpret ()
  end
  else interpret ()

let eval_query ?optimize ?scan_cache ?vectorize ?columnar ctx (q : X.query) =
  eval ?optimize ?scan_cache ?vectorize ?columnar ctx q.body
