(* Batch-size configuration for the vectorized FLWOR pipeline.

   One global knob: the number of tuples a vectorized operator pushes
   downstream at a time.  Read from AQUA_BATCH_SIZE at startup and
   overridable programmatically (the CLI's --batch-size flag and the
   differential tests both go through [set_size]).  The size is read at
   *invocation* time by the compiled pipelines, so changing it affects
   already-compiled plans. *)

let default_size = 1024

let initial =
  match Option.bind (Sys.getenv_opt "AQUA_BATCH_SIZE") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> default_size

let current = ref initial

let size () = !current

let set_size n = current := max 1 n
