(* Batch-size and layout configuration for the vectorized FLWOR
   pipeline.

   Two global knobs: the number of tuples a vectorized operator pushes
   downstream at a time, and whether the batches use the columnar
   (struct-of-arrays) layout or the PR 6 row-snapshot layout.  Both are
   read from the environment at startup (AQUA_BATCH_SIZE /
   AQUA_COLUMNAR) and overridable programmatically (the CLI's
   --batch-size / --no-columnar flags and the differential tests both
   go through [set_size] / [set_columnar]).  The size is read at
   *invocation* time by the compiled pipelines, so changing it affects
   already-compiled plans; the layout is read at *compile* time, so it
   selects which pipeline gets built. *)

let default_size = 1024

let initial =
  match Option.bind (Sys.getenv_opt "AQUA_BATCH_SIZE") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> default_size

let current = ref initial

let size () = !current

let set_size n = current := max 1 n

(* ------------------------------------------------------------------ *)
(* Columnar layout toggle                                             *)

let columnar_initial =
  match Sys.getenv_opt "AQUA_COLUMNAR" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let columnar_current = ref columnar_initial

let columnar () = !columnar_current

let set_columnar b = columnar_current := b

(* ------------------------------------------------------------------ *)
(* Struct-of-arrays batch                                             *)

(* One value vector per bound variable slot plus a selection vector.
   [cols.(slot)] is either the [no_column] sentinel (never written at
   this operator — pruned or not yet bound) or a [cap]-sized vector
   whose cells at the selected row indices hold that variable's value.
   Columns are allocated lazily on first write, so a pipeline that
   prunes a column never pays for it.  Buffers are pooled and reused
   across invocations (see compile.ml), so cells outside the current
   fill are stale garbage by design: readers must go through the
   selection vector. *)

type columns = {
  mutable cols : Aqua_xml.Item.sequence array array; (* [slot] -> [row] *)
  mutable sel : int array; (* selected row indices; length >= cap *)
  mutable n : int; (* live rows: sel.(0 .. n-1) are valid *)
  mutable cap : int; (* row capacity of each allocated column *)
}

let no_column : Aqua_xml.Item.sequence array = [||]

let make_columns ~slots ~cap =
  {
    cols = Array.make (max slots 1) no_column;
    sel = Array.init (max cap 1) (fun i -> i);
    n = 0;
    cap = max cap 1;
  }

(* Re-shape a pooled buffer for a plan with [slots] variable slots and
   [cap]-row batches.  Growing the outer array drops the old columns
   (they carry stale data anyway); growing the capacity drops every
   column so lazy allocation re-sizes them on first write. *)
let ensure_columns b ~slots ~cap =
  let cap = max cap 1 in
  if cap <> b.cap then begin
    b.cap <- cap;
    b.cols <- Array.make (max slots 1) no_column;
    b.sel <- Array.init cap (fun i -> i)
  end
  else if slots > Array.length b.cols then begin
    let grown = Array.make slots no_column in
    Array.blit b.cols 0 grown 0 (Array.length b.cols);
    b.cols <- grown
  end;
  b.n <- 0

(* The column for [slot], allocating it on first write. *)
let column b slot =
  let c = b.cols.(slot) in
  if c != no_column then c
  else begin
    let c = Array.make b.cap [] in
    b.cols.(slot) <- c;
    c
  end
