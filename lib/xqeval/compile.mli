(** A compiling evaluator: lowers an XQuery AST once into OCaml
    closures over slot-based environments, so repeated executions skip
    AST dispatch and name lookups — the counterpart of the DSP
    server's query compilation step (the interpreter {!Eval} is the
    reference semantics; the test suite checks both agree).

    Variable scoping is resolved at compile time; referencing an
    undefined variable (including bindings dropped by the group-by
    clause) is a {!Compile_error}. *)

type compiled
(** A compiled query, executable any number of times. *)

exception Compile_error of string

val compile :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?resolve:(string -> Eval.external_fn option) ->
  ?vars:string list ->
  Aqua_xquery.Ast.query ->
  compiled
(** Resolves function names (built-ins first, then [resolve]) and
    variable slots now; dynamic errors remain dynamic.  [vars] names
    external bindings (e.g. prepared-statement parameters) supplied at
    run time.  With [optimize] (the default) the {!Optimize} pass runs
    before lowering, enabling predicate pushdown and hash equi-joins;
    [scan_cache] (default [true]) additionally enables the optimizer's
    scan-sharing hoist for repeated data-service calls.
    @raise Compile_error on unknown functions or variables, and on a
    [where] clause referencing a variable bound only by a later clause
    of the same FLWOR. *)

val compile_expr :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?resolve:(string -> Eval.external_fn option) ->
  ?vars:string list ->
  Aqua_xquery.Ast.expr ->
  compiled
(** Compiles a bare expression; [vars] names external bindings that
    must be supplied at run time (in the same order). *)

val run :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  compiled ->
  Aqua_xml.Item.sequence
(** Executes. [bindings] supply the external variables declared via
    [vars] (prepared-statement parameters).
    @raise Error.Dynamic_error on dynamic errors (casts, arity,
    unbound externals). *)
