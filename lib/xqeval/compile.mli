(** A compiling evaluator: lowers an XQuery AST once into OCaml
    closures over slot-based environments, so repeated executions skip
    AST dispatch and name lookups — the counterpart of the DSP
    server's query compilation step (the interpreter {!Eval} is the
    reference semantics; the test suite checks both agree).

    With [vectorize] (the default) FLWOR pipelines are lowered to a
    push-based batch engine: clauses exchange fixed-capacity batches
    ({!Batch.size} rows, selection-vector filtering), hoisting
    per-clause setup out of the inner loop.  [~vectorize:false]
    selects the tuple-at-a-time lowering, which the differential test
    suite uses as the oracle.

    With [columnar] (the default, gated on [vectorize]) batches use a
    struct-of-arrays layout — one value vector per bound variable
    ({!Batch.columns}) — with required-column pruning (expanders and
    barriers copy only the columns the rest of the pipeline reads) and
    vectorized aggregation kernels (group-by clauses whose post-group
    reads are all translator aggregate shapes never materialize the
    partition; see {!Optimize.group_kernels} and {!Kernels}).
    [~columnar:false] selects the row-snapshot batch layout, the
    differential oracle for the columnar engine.

    Variable scoping is resolved at compile time; referencing an
    undefined variable (including bindings dropped by the group-by
    clause) is a {!Compile_error}. *)

type compiled
(** A compiled query, executable any number of times. *)

exception Compile_error of string

type resolver = string -> (Aqua_xml.Item.sequence list -> Aqua_xml.Item.sequence) option
(** External function resolver — structurally identical to
    {!Eval.external_fn} based resolvers (the DSP server passes the
    same closure to both engines). *)

val compile :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  ?resolve:resolver ->
  ?vars:string list ->
  Aqua_xquery.Ast.query ->
  compiled
(** Resolves function names (built-ins first, then [resolve]) and
    variable slots now; dynamic errors remain dynamic.  [vars] names
    external bindings (e.g. prepared-statement parameters) supplied at
    run time.  With [optimize] (the default) the {!Optimize} pass runs
    before lowering, enabling predicate pushdown and hash equi-joins;
    [scan_cache] (default [true]) additionally enables the optimizer's
    scan-sharing hoist for repeated data-service calls; [vectorize]
    (default [true]) lowers FLWOR pipelines to the batch engine;
    [columnar] (default {!Batch.columnar}, meaningful only with
    [vectorize]) selects the struct-of-arrays batch layout.
    @raise Compile_error on unknown functions or variables, and on a
    [where] clause referencing a variable bound only by a later clause
    of the same FLWOR. *)

val compile_expr :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  ?resolve:resolver ->
  ?vars:string list ->
  Aqua_xquery.Ast.expr ->
  compiled
(** Compiles a bare expression; [vars] names external bindings that
    must be supplied at run time (in the same order). *)

val run :
  ?bindings:(string * Aqua_xml.Item.sequence) list ->
  compiled ->
  Aqua_xml.Item.sequence
(** Executes. [bindings] supply the external variables declared via
    [vars] (prepared-statement parameters).
    @raise Error.Dynamic_error on dynamic errors (casts, arity,
    unbound externals). *)
