module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Node = Aqua_xml.Node

type impl = Item.sequence list -> Item.sequence

let fail = Error.fail

let arity name n args =
  if List.length args <> n then
    fail "%s expects %d argument(s), got %d" name n (List.length args)

let atomize = Item.atomize

let opt_atomic name seq =
  match atomize seq with
  | [] -> None
  | [ a ] -> Some a
  | _ -> fail "%s expects at most one atomic value" name

let string_arg name seq =
  match opt_atomic name seq with
  | None -> ""
  | Some a -> Atomic.to_lexical a

let numeric_of_atomic name a =
  match a with
  | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> Atomic.cast_double a
  | Atomic.Untyped s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> fail "%s: cannot treat %S as a number" name s)
  | _ -> fail "%s: %s is not numeric" name (Atomic.type_name a)

(* ---------------------------------------------------------------- *)
(* Accessors and cardinality                                        *)

let fn_data args =
  arity "fn:data" 1 args;
  List.map Item.atomic (atomize (List.hd args))

let fn_string args =
  arity "fn:string" 1 args;
  Item.of_string (Item.string_value (List.hd args))

let fn_empty args =
  arity "fn:empty" 1 args;
  Item.of_bool (List.hd args = [])

let fn_exists args =
  arity "fn:exists" 1 args;
  Item.of_bool (List.hd args <> [])

let fn_count args =
  arity "fn:count" 1 args;
  Item.of_int (List.length (List.hd args))

let fn_zero_or_one args =
  arity "fn:zero-or-one" 1 args;
  match List.hd args with
  | ([] | [ _ ]) as s -> s
  | _ -> fail "fn:zero-or-one: more than one item"

let fn_exactly_one args =
  arity "fn:exactly-one" 1 args;
  match List.hd args with
  | [ x ] -> [ x ]
  | s -> fail "fn:exactly-one: %d items" (List.length s)

(* ---------------------------------------------------------------- *)
(* Boolean                                                          *)

let fn_boolean args =
  arity "fn:boolean" 1 args;
  Item.of_bool (Item.effective_boolean_value (List.hd args))

let fn_not args =
  arity "fn:not" 1 args;
  Item.of_bool (not (Item.effective_boolean_value (List.hd args)))

let fn_true args =
  arity "fn:true" 0 args;
  Item.of_bool true

let fn_false args =
  arity "fn:false" 0 args;
  Item.of_bool false

(* ---------------------------------------------------------------- *)
(* Aggregates                                                       *)

let sum_atomics name atomics =
  (* integer-preserving when every operand is an integer *)
  let all_int =
    List.for_all (function Atomic.Integer _ -> true | _ -> false) atomics
  in
  if all_int then
    Atomic.Integer
      (List.fold_left
         (fun acc a -> match a with Atomic.Integer i -> acc + i | _ -> acc)
         0 atomics)
  else
    Atomic.Double
      (List.fold_left (fun acc a -> acc +. numeric_of_atomic name a) 0.0 atomics)

let fn_sum args =
  arity "fn:sum" 1 args;
  match atomize (List.hd args) with
  | [] -> Item.of_int 0
  | atomics -> [ Item.atomic (sum_atomics "fn:sum" atomics) ]

let fn_avg args =
  arity "fn:avg" 1 args;
  match atomize (List.hd args) with
  | [] -> []
  | atomics ->
    let n = List.length atomics in
    let total =
      List.fold_left (fun acc a -> acc +. numeric_of_atomic "fn:avg" a) 0.0
        atomics
    in
    Item.of_double (total /. float_of_int n)

let extremum name keep args =
  arity name 1 args;
  (* F&O: untypedAtomic values are cast to xs:double in fn:min/fn:max *)
  let untype = function
    | Atomic.Untyped s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Atomic.Double f
      | None -> Atomic.String s)
    | a -> a
  in
  match List.map untype (atomize (List.hd args)) with
  | [] -> []
  | first :: rest ->
    [ Item.atomic
        (List.fold_left
           (fun best a -> if keep (Atomic.compare_values a best) then a else best)
           first rest) ]

let fn_min = extremum "fn:min" (fun c -> c < 0)
let fn_max = extremum "fn:max" (fun c -> c > 0)

let fn_distinct_values args =
  arity "fn:distinct-values" 1 args;
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun a ->
      let k = Atomic.hash_key a in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some (Item.atomic a)
      end)
    (atomize (List.hd args))

(* ---------------------------------------------------------------- *)
(* Strings                                                          *)

let fn_concat args =
  if List.length args < 2 then fail "fn:concat expects at least 2 arguments";
  Item.of_string
    (String.concat "" (List.map (string_arg "fn:concat") args))

let fn_string_join args =
  arity "fn:string-join" 2 args;
  match args with
  | [ seq; sep ] ->
    let sep = string_arg "fn:string-join" sep in
    Item.of_string
      (String.concat sep (List.map Atomic.to_lexical (atomize seq)))
  | _ -> assert false

let fn_string_length args =
  arity "fn:string-length" 1 args;
  Item.of_int (String.length (string_arg "fn:string-length" (List.hd args)))

let fn_upper_case args =
  arity "fn:upper-case" 1 args;
  Item.of_string
    (String.uppercase_ascii (string_arg "fn:upper-case" (List.hd args)))

let fn_lower_case args =
  arity "fn:lower-case" 1 args;
  Item.of_string
    (String.lowercase_ascii (string_arg "fn:lower-case" (List.hd args)))

let fn_substring args =
  (* fn:substring(source, start[, length]) — 1-based, F&O rounding *)
  let source, start, len =
    match args with
    | [ s; st ] -> (s, st, None)
    | [ s; st; l ] -> (s, st, Some l)
    | _ -> fail "fn:substring expects 2 or 3 arguments"
  in
  let s = string_arg "fn:substring" source in
  let start_f =
    match opt_atomic "fn:substring" start with
    | None -> fail "fn:substring: empty start"
    | Some a -> Float.round (numeric_of_atomic "fn:substring" a)
  in
  let end_f =
    match len with
    | None -> Float.of_int (String.length s) +. 1.0
    | Some l -> (
      match opt_atomic "fn:substring" l with
      | None -> fail "fn:substring: empty length"
      | Some a -> start_f +. Float.round (numeric_of_atomic "fn:substring" a))
  in
  let n = String.length s in
  let from = max 1 (int_of_float start_f) in
  let until = min (n + 1) (int_of_float end_f) in
  if until <= from then Item.of_string ""
  else Item.of_string (String.sub s (from - 1) (until - from))

let fn_contains args =
  arity "fn:contains" 2 args;
  match args with
  | [ a; b ] ->
    let hay = string_arg "fn:contains" a and needle = string_arg "fn:contains" b in
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then false
      else if String.sub hay i n = needle then true
      else go (i + 1)
    in
    Item.of_bool (n = 0 || go 0)
  | _ -> assert false

let fn_starts_with args =
  arity "fn:starts-with" 2 args;
  match args with
  | [ a; b ] ->
    let hay = string_arg "fn:starts-with" a
    and pre = string_arg "fn:starts-with" b in
    Item.of_bool
      (String.length pre <= String.length hay
      && String.sub hay 0 (String.length pre) = pre)
  | _ -> assert false

let fn_ends_with args =
  arity "fn:ends-with" 2 args;
  match args with
  | [ a; b ] ->
    let hay = string_arg "fn:ends-with" a and suf = string_arg "fn:ends-with" b in
    let lh = String.length hay and ls = String.length suf in
    Item.of_bool (ls <= lh && String.sub hay (lh - ls) ls = suf)
  | _ -> assert false

let fn_position_of args =
  (* fn-bea:position-of, the 1-based LOCATE/POSITION helper *)
  arity "POSITION" 2 args;
  match args with
  | [ needle; hay ] ->
    let needle = string_arg "POSITION" needle
    and hay = string_arg "POSITION" hay in
    let n = String.length needle and h = String.length hay in
    if n = 0 then Item.of_int 1
    else begin
      let rec go i =
        if i + n > h then 0
        else if String.sub hay i n = needle then i + 1
        else go (i + 1)
      in
      Item.of_int (go 0)
    end
  | _ -> assert false

let trim_with name which args =
  arity name 1 args;
  let s = string_arg name (List.hd args) in
  let is_space c = c = ' ' in
  let n = String.length s in
  let start =
    if which = `Trailing then 0
    else begin
      let i = ref 0 in
      while !i < n && is_space s.[!i] do incr i done;
      !i
    end
  in
  let stop =
    if which = `Leading then n
    else begin
      let i = ref n in
      while !i > start && is_space s.[!i - 1] do decr i done;
      !i
    end
  in
  Item.of_string (String.sub s start (stop - start))

(* ---------------------------------------------------------------- *)
(* Numerics                                                         *)

let numeric_unary name f g args =
  arity name 1 args;
  match opt_atomic name (List.hd args) with
  | None -> []
  | Some (Atomic.Integer i) -> Item.of_int (f i)
  | Some a -> [ Item.atomic (Atomic.Double (g (numeric_of_atomic name a))) ]

let fn_abs = numeric_unary "fn:abs" abs Float.abs
let fn_floor = numeric_unary "fn:floor" Fun.id Float.floor
let fn_ceiling = numeric_unary "fn:ceiling" Fun.id Float.ceil

let fn_round =
  numeric_unary "fn:round" Fun.id (fun f ->
      (* round-half-up per F&O *)
      Float.floor (f +. 0.5))

let fn_number args =
  arity "fn:number" 1 args;
  match opt_atomic "fn:number" (List.hd args) with
  | None -> Item.of_double Float.nan
  | Some a -> (
    try Item.of_double (Atomic.cast_double a)
    with Atomic.Cast_error _ -> Item.of_double Float.nan)

(* ---------------------------------------------------------------- *)
(* Date/time component extraction (lenient: date or dateTime)       *)

let date_component name f args =
  arity name 1 args;
  match opt_atomic name (List.hd args) with
  | None -> []
  | Some a ->
    let d =
      match a with
      | Atomic.Date d -> d
      | Atomic.Timestamp ts -> ts.date
      | Atomic.Untyped s | Atomic.String s -> (
        try Atomic.date_of_string s
        with Atomic.Cast_error _ -> (Atomic.timestamp_of_string s).date)
      | _ -> fail "%s: expected a date, got %s" name (Atomic.type_name a)
    in
    Item.of_int (f d)

let time_component name f args =
  arity name 1 args;
  match opt_atomic name (List.hd args) with
  | None -> []
  | Some a ->
    let t =
      match a with
      | Atomic.Time t -> t
      | Atomic.Timestamp ts -> ts.time
      | Atomic.Untyped s | Atomic.String s -> (
        try Atomic.time_of_string s
        with Atomic.Cast_error _ -> (Atomic.timestamp_of_string s).time)
      | _ -> fail "%s: expected a time, got %s" name (Atomic.type_name a)
    in
    Item.of_int (f t)

let fn_subsequence args =
  (* fn:subsequence(seq, start[, length]) — 1-based *)
  let seq, start, len =
    match args with
    | [ s; st ] -> (s, st, None)
    | [ s; st; l ] -> (s, st, Some l)
    | _ -> fail "fn:subsequence expects 2 or 3 arguments"
  in
  let num name seq =
    match opt_atomic name seq with
    | None -> fail "%s: empty numeric argument" name
    | Some a -> Float.round (numeric_of_atomic name a)
  in
  let start_f = num "fn:subsequence" start in
  let end_f =
    match len with
    | None -> infinity
    | Some l -> start_f +. num "fn:subsequence" l
  in
  List.filteri
    (fun i _ ->
      let p = float_of_int (i + 1) in
      p >= start_f && p < end_f)
    seq

(* SQL LIKE matching ('%' = any run, '_' = any char, with an optional
   escape character), exposed to generated queries as fn-bea:like. *)
let like_match ?escape ~pattern s =
  let n = String.length pattern in
  let explode i =
    (* decode next pattern element: `Any | `One | `Lit c *)
    match pattern.[i] with
    | c when Some c = escape ->
      if i + 1 >= n then fail "LIKE pattern ends with escape character"
      else (`Lit pattern.[i + 1], i + 2)
    | '%' -> (`Any, i + 1)
    | '_' -> (`One, i + 1)
    | c -> (`Lit c, i + 1)
  in
  let sl = String.length s in
  (* memoized recursive matcher *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= n then si >= sl
        else begin
          let elem, pi' = explode pi in
          match elem with
          | `Any -> go pi' si || (si < sl && go pi (si + 1))
          | `One -> si < sl && go pi' (si + 1)
          | `Lit c -> si < sl && s.[si] = c && go pi' (si + 1)
        end
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let fn_bea_like args =
  let value, pattern, escape =
    match args with
    | [ v; p ] -> (v, p, None)
    | [ v; p; e ] -> (v, p, Some e)
    | _ -> fail "fn-bea:like expects 2 or 3 arguments"
  in
  match (value, opt_atomic "fn-bea:like" pattern) with
  | [], _ | _, None -> Item.of_bool false
  | v, Some pat_atom ->
    let s = string_arg "fn-bea:like" v in
    let pattern = Atomic.to_lexical pat_atom in
    let escape =
      match escape with
      | None -> None
      | Some e -> (
        match string_arg "fn-bea:like" e with
        | "" -> None
        | es when String.length es = 1 -> Some es.[0]
        | es -> fail "fn-bea:like: escape must be one character, got %S" es)
    in
    Item.of_bool (like_match ?escape ~pattern s)

(* ---------------------------------------------------------------- *)
(* fn-bea: extensions (paper section 4)                             *)

let fn_bea_if_empty args =
  arity "fn-bea:if-empty" 2 args;
  match args with
  | [ v; dflt ] -> if v = [] then dflt else v
  | _ -> assert false

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c when Char.code c < 0x20 && c <> '\t' && c <> '\n' && c <> '\r' ->
        Buffer.add_string buf (Printf.sprintf "&#%d;" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fn_bea_xml_escape args =
  arity "fn-bea:xml-escape" 1 args;
  match List.hd args with
  | [] -> []
  | seq -> Item.of_string (xml_escape (string_arg "fn-bea:xml-escape" seq))

let fn_bea_serialize_atomic args =
  arity "fn-bea:serialize-atomic" 1 args;
  match opt_atomic "fn-bea:serialize-atomic" (List.hd args) with
  | None -> []
  | Some a -> Item.of_string (Atomic.to_lexical a)

(* ---------------------------------------------------------------- *)
(* xs: constructor functions (casts)                                *)

let cast name conv args =
  arity name 1 args;
  match opt_atomic name (List.hd args) with
  | None -> []
  | Some a -> (
    try [ Item.atomic (conv a) ] with
    | Atomic.Cast_error m -> fail "%s: %s" name m)

let registry : (string, impl) Hashtbl.t = Hashtbl.create 97

let register name impl = Hashtbl.replace registry name impl

let () =
  register "fn:data" fn_data;
  register "fn:string" fn_string;
  register "fn:empty" fn_empty;
  register "fn:exists" fn_exists;
  register "fn:count" fn_count;
  register "fn:zero-or-one" fn_zero_or_one;
  register "fn:exactly-one" fn_exactly_one;
  register "fn:boolean" fn_boolean;
  register "fn:not" fn_not;
  register "fn:true" fn_true;
  register "fn:false" fn_false;
  register "fn:sum" fn_sum;
  register "fn:avg" fn_avg;
  register "fn:min" fn_min;
  register "fn:max" fn_max;
  register "fn:distinct-values" fn_distinct_values;
  register "fn:concat" fn_concat;
  register "fn:string-join" fn_string_join;
  register "fn:string-length" fn_string_length;
  register "fn:upper-case" fn_upper_case;
  register "fn:lower-case" fn_lower_case;
  register "fn:substring" fn_substring;
  register "fn:contains" fn_contains;
  register "fn:starts-with" fn_starts_with;
  register "fn:ends-with" fn_ends_with;
  register "fn:abs" fn_abs;
  register "fn:floor" fn_floor;
  register "fn:ceiling" fn_ceiling;
  register "fn:round" fn_round;
  register "fn:number" fn_number;
  register "fn:year-from-date" (date_component "fn:year-from-date" (fun d -> d.year));
  register "fn:month-from-date" (date_component "fn:month-from-date" (fun d -> d.month));
  register "fn:day-from-date" (date_component "fn:day-from-date" (fun d -> d.day));
  register "fn:hours-from-time" (time_component "fn:hours-from-time" (fun t -> t.hour));
  register "fn:minutes-from-time" (time_component "fn:minutes-from-time" (fun t -> t.minute));
  register "fn:seconds-from-time" (time_component "fn:seconds-from-time" (fun t -> t.second));
  register "fn:subsequence" fn_subsequence;
  register "fn-bea:like" fn_bea_like;
  register "fn-bea:if-empty" fn_bea_if_empty;
  register "fn-bea:xml-escape" fn_bea_xml_escape;
  register "fn-bea:serialize-atomic" fn_bea_serialize_atomic;
  register "fn-bea:position" fn_position_of;
  register "fn-bea:trim" (trim_with "fn-bea:trim" `Both);
  register "fn-bea:trim-left" (trim_with "fn-bea:trim-left" `Leading);
  register "fn-bea:trim-right" (trim_with "fn-bea:trim-right" `Trailing);
  register "xs:string" (cast "xs:string" (fun a -> Atomic.String (Atomic.cast_string a)));
  register "xs:integer" (cast "xs:integer" (fun a -> Atomic.Integer (Atomic.cast_integer a)));
  register "xs:int" (cast "xs:int" (fun a -> Atomic.Integer (Atomic.cast_integer a)));
  register "xs:long" (cast "xs:long" (fun a -> Atomic.Integer (Atomic.cast_integer a)));
  register "xs:short" (cast "xs:short" (fun a -> Atomic.Integer (Atomic.cast_integer a)));
  register "xs:decimal" (cast "xs:decimal" (fun a -> Atomic.Decimal (Atomic.cast_decimal a)));
  register "xs:double" (cast "xs:double" (fun a -> Atomic.Double (Atomic.cast_double a)));
  register "xs:float" (cast "xs:float" (fun a -> Atomic.Double (Atomic.cast_double a)));
  register "xs:boolean" (cast "xs:boolean" (fun a -> Atomic.Boolean (Atomic.cast_boolean a)));
  register "xs:date" (cast "xs:date" (fun a -> Atomic.Date (Atomic.cast_date a)));
  register "xs:time" (cast "xs:time" (fun a -> Atomic.Time (Atomic.cast_time a)));
  register "xs:dateTime" (cast "xs:dateTime" (fun a -> Atomic.Timestamp (Atomic.cast_timestamp a)))

let lookup name = Hashtbl.find_opt registry name

let names () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
