(* Hash-join build/probe machinery shared by the tree-walking
   evaluator ([Eval]) and the slot compiler ([Compile]).

   The table keys build-side atoms by [Atomic.hash_key].  That keying
   is not faithful to [Atomic.compare_values] in two places: untyped
   atomics compare against typed operands by casting (so
   [Untyped "5"] equals [Integer 5] though their keys differ), and a
   date equals the midnight dateTime on the same day.  Secondary keys
   cover those typed lookups.  They are marked non-primary so that an
   untyped probe never matches an untyped build atom through a typed
   key — untyped-vs-untyped comparison has string semantics, where
   "5.0" and "5" differ.  (No "s"-prefixed key is ever secondary, so
   the two key spaces cannot collide.)

   Divergence from the nested loop, by design: a probe/build pair
   whose types are not comparable (say a string against an integer)
   simply fails to match here, where [compare_values] in the nested
   loop raises [Cast_error].  The translator casts both sides of every
   SQL join predicate to the column type, so translated queries never
   hit the difference. *)

module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item

type t = {
  items : Item.t array;  (** build side, in source order *)
  tbl : (string, int * bool) Hashtbl.t;  (** key -> (row, is_primary) *)
  poison : bool;
      (** some build key had >= 2 atoms (value comparison only): every
          probe with a nonempty key must raise the cardinality error *)
  any_nonempty : bool;  (** some build key had >= 1 atoms *)
  seen_stamp : int array;
      (** probe-side dedup scratch, one cell per build row; a row is
          "seen by the current probe" when its cell equals [stamp] *)
  mutable stamp : int;  (** current probe generation, starts at 0 *)
}

let secondary_keys (a : Atomic.t) : string list =
  let try_cast f = try Some (f ()) with Atomic.Cast_error _ -> None in
  match a with
  | Atomic.Untyped s ->
    (* Shape-guarded casts: this runs once per build atom and once per
       probe, so the date/time casts (which raise on failure) are only
       attempted when the string's length and separators could match —
       a numeric key never pays an exception here.  The guards mirror
       the length/separator preconditions the parsers themselves
       check before reading any digits. *)
    let trimmed = String.trim s in
    let acc =
      if String.length s = 19 && (s.[10] = 'T' || s.[10] = ' ') then
        match try_cast (fun () -> Atomic.timestamp_of_string s) with
        | Some ts -> [ Atomic.hash_key (Atomic.Timestamp ts) ]
        | None -> []
      else []
    in
    let acc =
      if String.length s = 8 && s.[2] = ':' && s.[5] = ':' then
        match try_cast (fun () -> Atomic.time_of_string s) with
        | Some t -> Atomic.hash_key (Atomic.Time t) :: acc
        | None -> acc
      else acc
    in
    let acc =
      if String.length s = 10 && s.[4] = '-' && s.[7] = '-' then
        match try_cast (fun () -> Atomic.date_of_string s) with
        | Some d -> Atomic.hash_key (Atomic.Date d) :: acc
        | None -> acc
      else acc
    in
    let acc =
      match trimmed with
      | "true" | "1" -> Atomic.hash_key (Atomic.Boolean true) :: acc
      | "false" | "0" -> Atomic.hash_key (Atomic.Boolean false) :: acc
      | _ -> acc
    in
    (match float_of_string_opt trimmed with
    | Some f -> Atomic.hash_key (Atomic.Double f) :: acc
    | None -> acc)
  | Atomic.Date d ->
    [
      Atomic.hash_key
        (Atomic.Timestamp
           { date = d; time = { hour = 0; minute = 0; second = 0 } });
    ]
  | Atomic.Timestamp ts when ts.time = { hour = 0; minute = 0; second = 0 } ->
    [ Atomic.hash_key (Atomic.Date ts.date) ]
  | _ -> []

(* [key_of] evaluates the build-key expression with the join variable
   bound to the given item (each evaluator supplies its own closure). *)
let build (source : Item.sequence) ~(key_of : Item.t -> Item.sequence)
    ~(value_cmp : bool) : t =
  let module T = Aqua_core.Telemetry in
  T.with_span "xqeval.hashjoin.build" @@ fun () ->
  let items = Array.of_list source in
  T.incr T.c_hash_join_builds;
  T.add T.c_hash_join_build_rows (Array.length items);
  (* the build side is materialized wholesale: charge it to the
     budget's item governor before keying it *)
  Aqua_resilience.Budget.tick_items (Array.length items);
  let tbl = Hashtbl.create (max 16 (Array.length items)) in
  let poison = ref false in
  let any_nonempty = ref false in
  Array.iteri
    (fun i item ->
      match Item.atomize (key_of item) with
      | [] -> ()
      | _ :: _ :: _ when value_cmp ->
        any_nonempty := true;
        poison := true
      | atoms ->
        any_nonempty := true;
        List.iter
          (fun a ->
            let key = Atomic.hash_key a in
            if Hashtbl.mem tbl key then T.incr T.c_hash_join_collisions;
            Hashtbl.add tbl key (i, true);
            List.iter
              (fun k -> Hashtbl.add tbl k (i, false))
              (secondary_keys a))
          atoms)
    items;
  { items; tbl; poison = !poison; any_nonempty = !any_nonempty;
    seen_stamp = Array.make (Array.length items) 0; stamp = 0 }

let rows_for_atom t a =
  let rows_at key ~primary_only =
    List.filter_map
      (fun (row, primary) ->
        if primary || not primary_only then Some row else None)
      (Hashtbl.find_all t.tbl key)
  in
  rows_at (Atomic.hash_key a) ~primary_only:false
  @ List.concat_map
      (fun k -> rows_at k ~primary_only:true)
      (secondary_keys a)

(* Deduplicate row indices and return them ascending (= build order).
   [Hashtbl.find_all] yields newest-first, and build inserts rows in
   ascending order, so each per-key run arrives strictly descending —
   the common single-key probe is a linear dedup plus one reverse.
   Only a probe whose atoms matched through several keys can interleave
   runs, and only then is a (monomorphic int) sort paid.  The seen
   filter reuses the table-resident [seen_stamp] scratch (one cell per
   build row, generation-stamped), so a probe allocates no seen table —
   the batch evaluator issues one probe per selected row, and a
   per-probe [Hashtbl] showed up as the dominant join allocation. *)
let dedup_build_order t (matched : int list) : int list =
  match matched with
  | [] | [ _ ] -> matched
  | _ ->
    t.stamp <- t.stamp + 1;
    let gen = t.stamp in
    let uniq =
      List.filter
        (fun (r : int) ->
          if t.seen_stamp.(r) = gen then false
          else begin
            t.seen_stamp.(r) <- gen;
            true
          end)
        matched
    in
    let rec descending = function
      | (a : int) :: (b :: _ as rest) -> a > b && descending rest
      | _ -> true
    in
    if descending uniq then List.rev uniq
    else List.sort (fun (a : int) b -> compare a b) uniq

(* Matching rows (sorted, deduplicated — i.e. in build order) for one
   probe key.  Replicates [value_compare]'s cardinality rules exactly:
   an empty operand short-circuits to the empty sequence before the
   singleton check, so an empty probe never errors even against a
   multi-atom build key. *)
let probe t ~value_cmp (probe_atoms : Atomic.t list) : int list =
  let module T = Aqua_core.Telemetry in
  T.incr T.c_hash_join_probes;
  let matched =
    if value_cmp then
      match probe_atoms with
      | [] -> []
      | [ a ] ->
        if t.poison then
          Error.fail "value comparison requires singleton operands"
        else rows_for_atom t a
      | _ ->
        if t.any_nonempty then
          Error.fail "value comparison requires singleton operands"
        else []
    else List.concat_map (rows_for_atom t) probe_atoms
  in
  dedup_build_order t matched

(* Batched probe: one call per batch instead of one closure-allocating
   [probe] per row.  [atoms_of i] supplies probe row [i]'s key atoms;
   [emit i row] receives each match in (probe row, ascending build
   row) order — identical results, cardinality errors and counter
   movement to [rows] sequential calls of [probe], with the
   per-row closures hoisted out of the loop. *)
let probe_batch t ~value_cmp ~rows ~(atoms_of : int -> Atomic.t list)
    ~(emit : int -> int -> unit) : unit =
  let module T = Aqua_core.Telemetry in
  T.add T.c_hash_join_probes rows;
  for i = 0 to rows - 1 do
    let matched =
      if value_cmp then
        match atoms_of i with
        | [] -> []
        | [ a ] ->
          if t.poison then
            Error.fail "value comparison requires singleton operands"
          else rows_for_atom t a
        | _ ->
          if t.any_nonempty then
            Error.fail "value comparison requires singleton operands"
          else []
      else List.concat_map (rows_for_atom t) (atoms_of i)
    in
    List.iter (fun r -> emit i r) (dedup_build_order t matched)
  done
