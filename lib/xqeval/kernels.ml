(* Vectorized aggregation kernels for the columnar GROUP BY path.

   Each kernel folds one aggregate incrementally, one grouped tuple's
   column slice at a time, instead of materializing the whole group
   partition and re-walking it per aggregate call.  The folds are
   arranged to be observationally identical to the corresponding
   functions.ml implementations (fn:count / fn:sum / fn:avg / fn:min /
   fn:max / fn:empty / fn:exists) over the concatenated partition:
   same numeric promotion (integer-preserving sum), same fold order,
   and the same dynamic errors raised in the same order — a cast error
   discovered mid-stream is recorded and re-raised at [finish], exactly
   when the one-shot fold would have raised it.

   [K_sum_null] is the translated-SQL shape
   [if (fn:empty(c)) then () else fn:sum(c)] fused into one kernel:
   SQL's SUM over an empty set is NULL, not 0. *)

module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item

type kind =
  | K_count
  | K_sum
  | K_sum_null
  | K_avg
  | K_min
  | K_max
  | K_empty
  | K_exists

let name = function
  | K_count -> "count"
  | K_sum -> "sum"
  | K_sum_null -> "sum?"
  | K_avg -> "avg"
  | K_min -> "min"
  | K_max -> "max"
  | K_empty -> "empty"
  | K_exists -> "exists"

type state = {
  kind : kind;
  mutable items : int;  (** items seen (fn:count / fn:empty granularity) *)
  mutable atoms : int;  (** atoms seen after atomization (sum/avg) *)
  mutable all_int : bool;
  mutable int_sum : int;
  mutable dbl_sum : float;
  mutable best : Atomic.t option;  (** running extremum (min/max) *)
  mutable error : exn option;
      (** first deferred dynamic error, re-raised at [finish] iff the
          one-shot fold would have reached it *)
}

let create kind =
  {
    kind;
    items = 0;
    atoms = 0;
    all_int = true;
    int_sum = 0;
    dbl_sum = 0.0;
    best = None;
    error = None;
  }

(* F&O: untypedAtomic values are cast to xs:double in fn:min/fn:max
   (same rule as functions.ml's [extremum]). *)
let untype = function
  | Atomic.Untyped s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Atomic.Double f
    | None -> Atomic.String s)
  | a -> a

let numeric_update fname st a =
  st.atoms <- st.atoms + 1;
  (match a with Atomic.Integer i -> st.int_sum <- st.int_sum + i
  | _ -> st.all_int <- false);
  match Functions.numeric_of_atomic fname a with
  | f -> st.dbl_sum <- st.dbl_sum +. f
  | exception e -> if st.error = None then st.error <- Some e

let update st (seq : Item.sequence) =
  match st.kind with
  | K_count | K_empty | K_exists ->
    st.items <- st.items + List.length seq
  | K_sum | K_sum_null ->
    st.items <- st.items + List.length seq;
    List.iter (numeric_update "fn:sum" st) (Item.atomize seq)
  | K_avg -> List.iter (numeric_update "fn:avg" st) (Item.atomize seq)
  | K_min | K_max ->
    if st.error = None then
      let keep =
        match st.kind with K_min -> fun c -> c < 0 | _ -> fun c -> c > 0
      in
      List.iter
        (fun a ->
          if st.error = None then
            let a = untype a in
            match st.best with
            | None -> st.best <- Some a
            | Some best -> (
              match Atomic.compare_values a best with
              | c -> if keep c then st.best <- Some a
              | exception e -> st.error <- Some e))
        (Item.atomize seq)

let finish_sum st =
  if st.atoms = 0 then Item.of_int 0
  else if st.all_int then [ Item.atomic (Atomic.Integer st.int_sum) ]
  else
    match st.error with
    | Some e -> raise e
    | None -> [ Item.atomic (Atomic.Double st.dbl_sum) ]

let finish st : Item.sequence =
  match st.kind with
  | K_count -> Item.of_int st.items
  | K_empty -> Item.of_bool (st.items = 0)
  | K_exists -> Item.of_bool (st.items > 0)
  | K_sum -> finish_sum st
  | K_sum_null -> if st.items = 0 then [] else finish_sum st
  | K_avg ->
    if st.atoms = 0 then []
    else (
      match st.error with
      | Some e -> raise e
      | None -> Item.of_double (st.dbl_sum /. float_of_int st.atoms))
  | K_min | K_max -> (
    match st.error with
    | Some e -> raise e
    | None -> (
      match st.best with None -> [] | Some a -> [ Item.atomic a ]))
