(** Batch-size and layout configuration for the vectorized FLWOR
    pipeline.

    The vectorized evaluator ({!Compile} with [~vectorize:true]) pushes
    fixed-size batches of tuples through each clause operator.  The
    batch size defaults to 1024, can be seeded from the
    [AQUA_BATCH_SIZE] environment variable, and is adjustable at run
    time ([sql2xq --batch-size]).  Compiled pipelines read the size at
    invocation time, so a change takes effect on the next execution.

    Since the columnar engine, batches are struct-of-arrays: one value
    vector per bound variable plus a selection vector ({!columns}).
    The [columnar] toggle selects between that layout and the PR 6
    row-snapshot layout at compile time ([AQUA_COLUMNAR=0] or
    [sql2xq --no-columnar] keep the row-snapshot engine as the
    differential oracle). *)

val default_size : int
(** 1024. *)

val size : unit -> int
(** The current batch size (>= 1). *)

val set_size : int -> unit
(** Override the batch size; values below 1 are clamped to 1. *)

val columnar : unit -> bool
(** Whether newly compiled vectorized pipelines use the columnar
    (struct-of-arrays) layout.  Defaults to [true]; seeded from
    [AQUA_COLUMNAR] (["0"]/["false"]/["off"]/["no"] disable it). *)

val set_columnar : bool -> unit
(** Override the columnar toggle (applies to subsequent compiles). *)

(** {1 Struct-of-arrays batches}

    One value vector per bound variable slot plus a selection vector.
    Buffers are pooled and reused, so cells outside the current fill
    hold stale garbage by design: readers must go through [sel]. *)

type columns = {
  mutable cols : Aqua_xml.Item.sequence array array;
      (** [cols.(slot)] is the value vector for that variable slot, or
          {!no_column} if the slot was pruned / never written here. *)
  mutable sel : int array;  (** selected row indices; length >= [cap] *)
  mutable n : int;  (** live rows: [sel.(0 .. n-1)] are valid *)
  mutable cap : int;  (** row capacity of each allocated column *)
}

val no_column : Aqua_xml.Item.sequence array
(** Sentinel for an unallocated column (physical equality test). *)

val make_columns : slots:int -> cap:int -> columns
(** Fresh empty batch with an identity selection vector. *)

val ensure_columns : columns -> slots:int -> cap:int -> unit
(** Re-shape a pooled buffer for a plan with [slots] variable slots and
    [cap]-row batches, resetting it to empty. *)

val column : columns -> int -> Aqua_xml.Item.sequence array
(** The value vector for a slot, allocating it on first use. *)
