(** Batch-size configuration for the vectorized FLWOR pipeline.

    The vectorized evaluator ({!Compile} with [~vectorize:true]) pushes
    fixed-size batches of tuples through each clause operator.  The
    batch size defaults to 1024, can be seeded from the
    [AQUA_BATCH_SIZE] environment variable, and is adjustable at run
    time ([sql2xq --batch-size]).  Compiled pipelines read the size at
    invocation time, so a change takes effect on the next execution. *)

val default_size : int
(** 1024. *)

val size : unit -> int
(** The current batch size (>= 1). *)

val set_size : int -> unit
(** Override the batch size; values below 1 are clamped to 1. *)
