(** The built-in XQuery function library: the [fn:] functions and
    [fn-bea:] extensions the translator emits, plus the [xs:] type
    constructor functions used for casts. *)

type impl = Aqua_xml.Item.sequence list -> Aqua_xml.Item.sequence

val lookup : string -> impl option
(** Look up a built-in by its qualified name, e.g. ["fn:string-join"].
    The implementation raises {!Error.Dynamic_error} on arity or type
    mismatches. *)

val names : unit -> string list
(** All registered built-in names (for diagnostics and docs). *)

val numeric_of_atomic : string -> Aqua_xml.Atomic.t -> float
(** The numeric promotion used by [fn:sum]/[fn:avg]: numerics cast to
    double, untyped values parsed, anything else raises
    {!Error.Dynamic_error} attributed to [name].  Exposed so the
    columnar aggregation kernels ({!Kernels}) fold with exactly the
    same coercions and error messages as the one-shot implementations
    here. *)

val like_match : ?escape:char -> pattern:string -> string -> bool
(** SQL LIKE semantics ([%], [_], optional escape character); the
    engine behind [fn-bea:like], shared with the baseline SQL engine.
    @raise Error.Dynamic_error on a malformed pattern. *)

val xml_escape : string -> string
(** The [fn-bea:xml-escape] algorithm: escapes [&], [<], [>] and
    C0 control characters as numeric character references, so that the
    escaped text can never contain the driver's row/column delimiter
    characters. Exposed for the driver's decoder tests. *)
