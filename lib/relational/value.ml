module Atomic = Aqua_xml.Atomic

type t =
  | Null
  | Int of int
  | Num of float
  | Str of string
  | Bool of bool
  | Date of Atomic.date
  | Time of Atomic.time
  | Timestamp of Atomic.timestamp

type bool3 = True | False | Unknown

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let is_null = function Null -> true | _ -> false

let float_lexical f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string = function
  | Null -> type_error "NULL has no lexical form"
  | Int i -> string_of_int i
  | Num f -> float_lexical f
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Date d -> Atomic.date_to_string d
  | Time t -> Atomic.time_to_string t
  | Timestamp ts -> Atomic.timestamp_to_string ts

let to_display = function Null -> "NULL" | v -> to_string v

let of_string ty s =
  let num () =
    match float_of_string_opt (String.trim s) with
    | Some f -> Num f
    | None -> type_error "malformed numeric literal %S" s
  in
  let int () =
    match int_of_string_opt (String.trim s) with
    | Some i -> Int i
    | None -> type_error "malformed integer literal %S" s
  in
  try
    match ty with
    | Sql_type.Smallint | Sql_type.Integer | Sql_type.Bigint -> int ()
    | Sql_type.Decimal _ | Sql_type.Real | Sql_type.Double -> num ()
    | Sql_type.Char _ | Sql_type.Varchar _ -> Str s
    | Sql_type.Boolean -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" | "1" -> Bool true
      | "false" | "0" -> Bool false
      | _ -> type_error "malformed boolean literal %S" s)
    | Sql_type.Date -> Date (Atomic.date_of_string s)
    | Sql_type.Time -> Time (Atomic.time_of_string s)
    | Sql_type.Timestamp -> Timestamp (Atomic.timestamp_of_string s)
  with Atomic.Cast_error m -> raise (Type_error m)

let to_atomic ty v =
  match v with
  | Null -> None
  | Int i -> (
    match ty with
    | Sql_type.Decimal _ -> Some (Atomic.Decimal (float_of_int i))
    | Sql_type.Real | Sql_type.Double -> Some (Atomic.Double (float_of_int i))
    | _ -> Some (Atomic.Integer i))
  | Num f -> (
    match ty with
    | Sql_type.Decimal _ -> Some (Atomic.Decimal f)
    | Sql_type.Smallint | Sql_type.Integer | Sql_type.Bigint ->
      Some (Atomic.Integer (int_of_float f))
    | _ -> Some (Atomic.Double f))
  | Str s -> Some (Atomic.String s)
  | Bool b -> Some (Atomic.Boolean b)
  | Date d -> Some (Atomic.Date d)
  | Time t -> Some (Atomic.Time t)
  | Timestamp ts -> Some (Atomic.Timestamp ts)

let of_atomic = function
  | Atomic.Untyped s | Atomic.String s -> Str s
  | Atomic.Integer i -> Int i
  | Atomic.Decimal f | Atomic.Double f -> Num f
  | Atomic.Boolean b -> Bool b
  | Atomic.Date d -> Date d
  | Atomic.Time t -> Time t
  | Atomic.Timestamp ts -> Timestamp ts

let as_float = function
  | Int i -> Some (float_of_int i)
  | Num f -> Some f
  | Null | Str _ | Bool _ | Date _ | Time _ | Timestamp _ -> None

let compare_nonnull a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | (Int _ | Num _), (Int _ | Num _) -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> Float.compare x y
    | _ -> assert false)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> compare (x.year, x.month, x.day) (y.year, y.month, y.day)
  | Time x, Time y ->
    compare (x.hour, x.minute, x.second) (y.hour, y.minute, y.second)
  | Timestamp x, Timestamp y ->
    compare
      ( x.date.year, x.date.month, x.date.day, x.time.hour, x.time.minute,
        x.time.second )
      ( y.date.year, y.date.month, y.date.day, y.time.hour, y.time.minute,
        y.time.second )
  | _ ->
    type_error "cannot compare %s with %s" (to_display a) (to_display b)

let compare_sql a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | _ -> compare_nonnull a b

let compare3 a b =
  match (a, b) with
  | Null, _ | _, Null -> (Unknown, 0)
  | _ -> (True, compare_nonnull a b)

let equal3 a b =
  match compare3 a b with
  | Unknown, _ -> Unknown
  | _, 0 -> True
  | _, _ -> False

let and3 a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or3 a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let not3 = function True -> False | False -> True | Unknown -> Unknown
let of_bool b = if b then True else False
let is_true = function True -> true | False | Unknown -> false

let group_key = function
  | Null -> "\x00null"
  | Int i -> "n" ^ float_lexical (float_of_int i)
  | Num f -> "n" ^ float_lexical f
  | Str s -> "s" ^ s
  | Bool b -> if b then "bT" else "bF"
  | Date d -> "d" ^ Atomic.date_to_string d
  | Time t -> "t" ^ Atomic.time_to_string t
  | Timestamp ts -> "ts" ^ Atomic.timestamp_to_string ts

let pp fmt v = Format.pp_print_string fmt (to_display v)
