type t =
  | Smallint
  | Integer
  | Bigint
  | Decimal of (int * int) option
  | Real
  | Double
  | Char of int
  | Varchar of int option
  | Boolean
  | Date
  | Time
  | Timestamp

let to_string = function
  | Smallint -> "SMALLINT"
  | Integer -> "INTEGER"
  | Bigint -> "BIGINT"
  | Decimal None -> "DECIMAL"
  | Decimal (Some (p, s)) -> Printf.sprintf "DECIMAL(%d,%d)" p s
  | Real -> "REAL"
  | Double -> "DOUBLE PRECISION"
  | Char n -> Printf.sprintf "CHAR(%d)" n
  | Varchar None -> "VARCHAR"
  | Varchar (Some n) -> Printf.sprintf "VARCHAR(%d)" n
  | Boolean -> "BOOLEAN"
  | Date -> "DATE"
  | Time -> "TIME"
  | Timestamp -> "TIMESTAMP"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "SMALLINT" -> Some Smallint
  | "INT" | "INTEGER" -> Some Integer
  | "BIGINT" -> Some Bigint
  | "DECIMAL" | "DEC" | "NUMERIC" -> Some (Decimal None)
  | "REAL" | "FLOAT" -> Some Real
  | "DOUBLE" | "DOUBLE PRECISION" -> Some Double
  | "CHAR" | "CHARACTER" -> Some (Char 1)
  | "VARCHAR" | "CHARACTER VARYING" -> Some (Varchar None)
  | "BOOLEAN" -> Some Boolean
  | "DATE" -> Some Date
  | "TIME" -> Some Time
  | "TIMESTAMP" -> Some Timestamp
  | _ -> None

let is_numeric = function
  | Smallint | Integer | Bigint | Decimal _ | Real | Double -> true
  | Char _ | Varchar _ | Boolean | Date | Time | Timestamp -> false

let is_character = function
  | Char _ | Varchar _ -> true
  | Smallint | Integer | Bigint | Decimal _ | Real | Double | Boolean | Date
  | Time | Timestamp ->
    false

let is_datetime = function
  | Date | Time | Timestamp -> true
  | Smallint | Integer | Bigint | Decimal _ | Real | Double | Boolean | Char _
  | Varchar _ ->
    false

let is_exact_numeric = function
  | Smallint | Integer | Bigint | Decimal _ -> true
  | Real | Double | Char _ | Varchar _ | Boolean | Date | Time | Timestamp ->
    false

(* Rank in the SQL-92 numeric promotion chain. *)
let numeric_rank = function
  | Smallint -> Some 0
  | Integer -> Some 1
  | Bigint -> Some 2
  | Decimal _ -> Some 3
  | Real -> Some 4
  | Double -> Some 5
  | Char _ | Varchar _ | Boolean | Date | Time | Timestamp -> None

let promote a b =
  match (numeric_rank a, numeric_rank b) with
  | Some ra, Some rb -> Some (if ra >= rb then a else b)
  | _ -> None

let comparable a b =
  (is_numeric a && is_numeric b)
  || (is_character a && is_character b)
  || (is_datetime a && is_datetime b)
  ||
  match (a, b) with
  | Boolean, Boolean -> true
  | _ -> false

let xquery_name = function
  | Smallint -> "xs:short"
  | Integer -> "xs:int"
  | Bigint -> "xs:long"
  | Decimal _ -> "xs:decimal"
  | Real -> "xs:float"
  | Double -> "xs:double"
  | Char _ | Varchar _ -> "xs:string"
  | Boolean -> "xs:boolean"
  | Date -> "xs:date"
  | Time -> "xs:time"
  | Timestamp -> "xs:dateTime"

let of_xquery_name = function
  | "xs:short" -> Some Smallint
  | "xs:int" | "xs:integer" -> Some Integer
  | "xs:long" -> Some Bigint
  | "xs:decimal" -> Some (Decimal None)
  | "xs:float" -> Some Real
  | "xs:double" -> Some Double
  | "xs:string" -> Some (Varchar None)
  | "xs:boolean" -> Some Boolean
  | "xs:date" -> Some Date
  | "xs:time" -> Some Time
  | "xs:dateTime" -> Some Timestamp
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
