type t = {
  schema : Schema.t;
  rows : Value.t array list;
}

let make schema rows = { schema; rows }

(* Batch view: the row list sliced into size-capped arrays, for
   consumers that process rows a batch at a time (the vectorized
   engine, the SQL engine's batched filter).  A single pass over the
   list — no per-batch re-traversal. *)
let iter_batches ~size rs f =
  let size = max 1 size in
  let buf = Array.make size [||] in
  let n = ref 0 in
  let emit () =
    if !n > 0 then begin
      f (Array.sub buf 0 !n);
      n := 0
    end
  in
  List.iter
    (fun row ->
      buf.(!n) <- row;
      incr n;
      if !n = size then emit ())
    rs.rows;
  emit ()

let batches ~size rs =
  let acc = ref [] in
  iter_batches ~size rs (fun b -> acc := b :: !acc);
  List.rev !acc

(* Columnar batch view: the same size-capped slices transposed to
   struct-of-arrays — one value vector per schema column, values
   shared with the row storage (Value.t is immutable).  Consumers that
   scan a few columns of a wide result (the columnar engine, value
   vector exports) touch only the vectors they need. *)
let iter_column_batches ~size rs f =
  let ncols = List.length rs.schema in
  iter_batches ~size rs (fun batch ->
      let rows = Array.length batch in
      f (Array.init ncols (fun c -> Array.init rows (fun r -> batch.(r).(c)))))

let column_batches ~size rs =
  let acc = ref [] in
  iter_column_batches ~size rs (fun b -> acc := b :: !acc);
  List.rev !acc

let row_key row =
  String.concat "\x01" (Array.to_list (Array.map Value.group_key row))

let equal_as_lists a b =
  List.length a.rows = List.length b.rows
  && List.for_all2 (fun r1 r2 -> row_key r1 = row_key r2) a.rows b.rows

let sorted_keys rs = List.sort String.compare (List.map row_key rs.rows)

let equal_as_multisets a b =
  List.length a.rows = List.length b.rows
  && List.for_all2 String.equal (sorted_keys a) (sorted_keys b)

let sorted_under_order_by ~keys a b =
  let project row = Array.of_list (List.map (fun i -> row.(i)) keys) in
  equal_as_multisets a b
  && List.for_all2
       (fun r1 r2 -> row_key (project r1) = row_key (project r2))
       a.rows b.rows

let diff_summary a b =
  if List.length a.rows <> List.length b.rows then
    Some
      (Printf.sprintf "cardinality mismatch: %d vs %d rows"
         (List.length a.rows) (List.length b.rows))
  else if equal_as_multisets a b then None
  else begin
    let table rs =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun r ->
          let k = row_key r in
          let count =
            match Hashtbl.find_opt tbl k with
            | Some (c, _) -> c
            | None -> 0
          in
          Hashtbl.replace tbl k (count + 1, r))
        rs.rows;
      tbl
    in
    let ta = table a and tb = table b in
    let describe r =
      String.concat ", "
        (Array.to_list (Array.map Value.to_display r))
    in
    let missing =
      Hashtbl.fold
        (fun k (ca, r) acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let cb = try fst (Hashtbl.find tb k) with Not_found -> 0 in
            if ca <> cb then
              Some
                (Printf.sprintf "row [%s] occurs %d time(s) vs %d" (describe r)
                   ca cb)
            else None)
        ta None
    in
    match missing with
    | Some _ as s -> s
    | None -> Some "rowsets differ (extra rows on right side)"
  end

let to_string rs =
  let headers = List.map (fun (c : Schema.column) -> c.name) rs.schema in
  let cells = List.map (fun r -> Array.to_list (Array.map Value.to_display r)) rs.rows in
  let all = headers :: cells in
  let ncols = List.length headers in
  let width i =
    List.fold_left
      (fun w row -> max w (String.length (List.nth row i)))
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat " | "
      (List.map2
         (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
         row widths)
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line cells)
