module Node = Aqua_xml.Node

type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Value.t array list;
  mutable version : int;
}

let create name schema = { name; schema; rows = []; version = 0 }

let insert t row =
  let row = Array.of_list row in
  match Schema.check_row t.schema row with
  | Ok () ->
    t.rows <- row :: t.rows;
    (* data version: any row mutation must be visible to revision-keyed
       caches (scan cache, engine memo) via [Artifact.data_revision] *)
    t.version <- t.version + 1
  | Error msg ->
    raise (Value.Type_error (Printf.sprintf "table %s: %s" t.name msg))

let insert_all t rows = List.iter (insert t) rows
let version t = t.version
let rows t = List.rev t.rows
let cardinality t = List.length t.rows

let row_to_element ~name schema row =
  let children =
    List.concat
      (List.mapi
         (fun i (c : Schema.column) ->
           match row.(i) with
           | Value.Null -> []
           | v -> [ Node.element c.name [ Node.text (Value.to_string v) ] ])
         schema)
  in
  Node.element name children

let to_flat_xml ?(ns_prefix = "ns0") t =
  let name = ns_prefix ^ ":" ^ t.name in
  List.map (row_to_element ~name t.schema) (rows t)
