(** Column and row-set schemas shared by the store, the SQL engine and
    the driver's result sets. *)

type column = {
  name : string;
  ty : Sql_type.t;
  nullable : bool;
}

type t = column list

val column : ?nullable:bool -> string -> Sql_type.t -> column

val find : t -> string -> (int * column) option
(** Case-insensitive lookup, returning position and descriptor. *)

val names : t -> string list

val check_row : t -> Value.t array -> (unit, string) result
(** Validates arity, NULLs against nullability, and value/type
    agreement. *)

val pp : Format.formatter -> t -> unit
