(** Materialized query results: a schema plus rows, with the multiset
    and list comparisons used by the differential test oracle. *)

type t = {
  schema : Schema.t;
  rows : Value.t array list;
}

val make : Schema.t -> Value.t array list -> t

val iter_batches :
  size:int -> t -> (Value.t array array -> unit) -> unit
(** [iter_batches ~size rs f] calls [f] with consecutive size-capped
    slices of the rows (every batch holds [size] rows except possibly
    the last; [size] is clamped to at least 1).  One pass over the row
    list — the batch view consumers use instead of re-walking the
    list per batch. *)

val batches : size:int -> t -> Value.t array array list
(** The batch view as a list (see {!iter_batches}). *)

val iter_column_batches :
  size:int -> t -> (Value.t array array -> unit) -> unit
(** The {!iter_batches} slices transposed to struct-of-arrays: [f]
    receives one [Value.t array] per schema column (all of equal
    length, the batch's row count).  Values are shared with the row
    storage, so a consumer reading a few columns of a wide result
    touches only the vectors it needs. *)

val column_batches : size:int -> t -> Value.t array array list
(** The columnar batch view as a list (see {!iter_column_batches}). *)

val equal_as_lists : t -> t -> bool
(** Same rows in the same order (use when ORDER BY fixes the order). *)

val equal_as_multisets : t -> t -> bool
(** Same rows regardless of order (SQL result semantics without
    ORDER BY). *)

val sorted_under_order_by : keys:int list -> t -> t -> bool
(** Order-insensitive except on the listed key columns: both rowsets
    must be equal as multisets, and the projections to [keys] must be
    equal as lists.  This is the right notion of equality for an
    ORDER BY whose keys do not form a total order. *)

val diff_summary : t -> t -> string option
(** [None] when multiset-equal; otherwise a short human-readable
    description of the first discrepancy, for test failure messages. *)

val to_string : t -> string
(** Tabular rendering for CLI/examples. *)
