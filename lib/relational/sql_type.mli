(** The SQL-92 scalar type system, with the promotion and casting rules
    the translator applies when inferring expression datatypes
    (paper section 3.5.v). *)

type t =
  | Smallint
  | Integer
  | Bigint
  | Decimal of (int * int) option  (** precision, scale *)
  | Real
  | Double
  | Char of int
  | Varchar of int option
  | Boolean
  | Date
  | Time
  | Timestamp

val to_string : t -> string
(** SQL spelling, e.g. ["DECIMAL(10,2)"] or ["VARCHAR(40)"]. *)

val of_string : string -> t option
(** Parses a bare SQL type name (no precision arguments). *)

val is_numeric : t -> bool
val is_character : t -> bool
val is_datetime : t -> bool
val is_exact_numeric : t -> bool

val promote : t -> t -> t option
(** Result type of a binary arithmetic operation per SQL-92 numeric
    promotion (SMALLINT < INTEGER < BIGINT < DECIMAL < REAL < DOUBLE).
    [None] when the types cannot be combined. *)

val comparable : t -> t -> bool
(** Whether values of the two types may appear in a comparison. *)

val xquery_name : t -> string
(** The XML Schema type used in generated casts, e.g. ["xs:integer"]. *)

val of_xquery_name : string -> t option
(** Reverse of [xquery_name] (ignores precision). *)

val pp : Format.formatter -> t -> unit
