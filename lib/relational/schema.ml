type column = {
  name : string;
  ty : Sql_type.t;
  nullable : bool;
}

type t = column list

let column ?(nullable = true) name ty = { name; ty; nullable }

let find schema name =
  let target = String.uppercase_ascii name in
  let rec go i = function
    | [] -> None
    | c :: rest ->
      if String.uppercase_ascii c.name = target then Some (i, c)
      else go (i + 1) rest
  in
  go 0 schema

let names schema = List.map (fun c -> c.name) schema

let value_matches ty (v : Value.t) =
  match v with
  | Value.Null -> true
  | Value.Int _ -> Sql_type.is_numeric ty
  | Value.Num _ -> Sql_type.is_numeric ty
  | Value.Str _ -> Sql_type.is_character ty
  | Value.Bool _ -> ty = Sql_type.Boolean
  | Value.Date _ -> ty = Sql_type.Date
  | Value.Time _ -> ty = Sql_type.Time
  | Value.Timestamp _ -> ty = Sql_type.Timestamp

let check_row schema row =
  if Array.length row <> List.length schema then
    Error
      (Printf.sprintf "row has %d values but schema has %d columns"
         (Array.length row) (List.length schema))
  else
    let rec go i = function
      | [] -> Ok ()
      | c :: rest ->
        let v = row.(i) in
        if Value.is_null v && not c.nullable then
          Error (Printf.sprintf "column %s is not nullable" c.name)
        else if not (value_matches c.ty v) then
          Error
            (Printf.sprintf "value %s does not match type %s of column %s"
               (Value.to_display v) (Sql_type.to_string c.ty) c.name)
        else go (i + 1) rest
    in
    go 0 schema

let pp fmt schema =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       (fun f c ->
         Format.fprintf f "%s %a%s" c.name Sql_type.pp c.ty
           (if c.nullable then "" else " NOT NULL")))
    schema
