(** SQL values, including NULL, with the three-valued-logic comparison
    helpers both engines share. *)

type t =
  | Null
  | Int of int          (** SMALLINT/INTEGER/BIGINT *)
  | Num of float        (** DECIMAL/REAL/DOUBLE *)
  | Str of string       (** CHAR/VARCHAR *)
  | Bool of bool
  | Date of Aqua_xml.Atomic.date
  | Time of Aqua_xml.Atomic.time
  | Timestamp of Aqua_xml.Atomic.timestamp

type bool3 = True | False | Unknown
(** SQL three-valued logic. *)

exception Type_error of string

val is_null : t -> bool

val to_string : t -> string
(** Lexical form used in flat XML results; [Null] has no lexical form.
    @raise Type_error on [Null]. *)

val to_display : t -> string
(** Human-oriented rendering, [Null] printed as ["NULL"]. *)

val of_string : Sql_type.t -> string -> t
(** Parses a lexical form according to a column type.
    @raise Type_error on malformed input. *)

val to_atomic : Sql_type.t -> t -> Aqua_xml.Atomic.t option
(** XQuery atomic value carried in flat XML; [None] for SQL NULL. *)

val of_atomic : Aqua_xml.Atomic.t -> t

val compare_sql : t -> t -> int
(** Total order treating [Null] as smallest (used for sorting with
    NULLS FIRST semantics); numerics compare numerically.
    @raise Type_error on incomparable non-null values. *)

val compare3 : t -> t -> bool3 * int
(** Comparison under 3VL: [Unknown] when either side is null, otherwise
    [True] paired with the ordering result. *)

val equal3 : t -> t -> bool3

val and3 : bool3 -> bool3 -> bool3
val or3 : bool3 -> bool3 -> bool3
val not3 : bool3 -> bool3
val of_bool : bool -> bool3
val is_true : bool3 -> bool

val group_key : t -> string
(** Key for GROUP BY / DISTINCT hashing: SQL considers two nulls
    identical for grouping, so [Null] gets its own stable key. *)

val pp : Format.formatter -> t -> unit
