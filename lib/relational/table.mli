(** In-memory relational tables — the physical sources behind the
    platform's physical data services. *)

type t = private {
  name : string;
  schema : Schema.t;
  mutable rows : Value.t array list;  (** in insertion order, reversed *)
  mutable version : int;
      (** monotonic data version, bumped on every insert — revision-keyed
          caches fold it into their invalidation signal *)
}

val create : string -> Schema.t -> t

val version : t -> int
(** Current data version (0 for a fresh table). *)

val insert : t -> Value.t list -> unit
(** @raise Value.Type_error if the row does not match the schema. *)

val insert_all : t -> Value.t list list -> unit

val rows : t -> Value.t array list
(** Rows in insertion order. *)

val cardinality : t -> int

val to_flat_xml : ?ns_prefix:string -> t -> Aqua_xml.Node.t list
(** Serializes the table the way a physical data-service function
    returns it: one element per row named after the table (Example 1 of
    the paper), with one simple-typed child element per non-null
    column.  NULL columns are omitted (absent element). *)
