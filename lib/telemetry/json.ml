type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; true
    | _ -> false
  do () done

let expect st ch =
  match peek st with
  | Some c when c = ch -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" ch)

let parse_hex4 st =
  let code = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error st "bad \\u escape"
        in
        code := (!code * 16) + d
    | None -> error st "bad \\u escape");
    advance st
  done;
  !code

(* Encode a code point as UTF-8.  Surrogate pairs in \u escapes are not
   recombined — each half is encoded as-is, which is fine for
   validation purposes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some 'u' -> advance st; add_utf8 buf (parse_hex4 st); loop ()
        | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    while (match peek st with Some c when pred c -> true | _ -> false) do
      advance st
    done
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  let digits_before = st.pos in
  consume_while (function '0' .. '9' -> true | _ -> false);
  if st.pos = digits_before then error st "expected digit";
  (match peek st with
  | Some '.' ->
      advance st;
      let d = st.pos in
      consume_while (function '0' .. '9' -> true | _ -> false);
      if st.pos = d then error st "expected fraction digit"
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      let d = st.pos in
      consume_while (function '0' .. '9' -> true | _ -> false);
      if st.pos = d then error st "expected exponent digit"
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st "bad number"

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected '%c'" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin advance st; Obj [] end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; members ((key, v) :: acc)
      | Some '}' -> advance st; Obj (List.rev ((key, v) :: acc))
      | _ -> error st "expected ',' or '}'"
    in
    members []
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin advance st; Arr [] end
  else begin
    let rec elems acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; elems (v :: acc)
      | Some ']' -> advance st; Arr (List.rev (v :: acc))
      | _ -> error st "expected ',' or ']'"
    in
    elems []
  end

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec to_string = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "\"%s\"" (Telemetry.json_escape s)
  | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":%s" (Telemetry.json_escape k)
                 (to_string v))
             fields)
      ^ "}"
