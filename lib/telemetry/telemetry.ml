(* Spans, counters and NDJSON trace events.  Everything here must be
   cheap when disabled: every probe is a single [if !enabled_flag]
   branch, so the layer can stay threaded through the hot paths of both
   engines permanently.

   Domain safety (DESIGN.md §13): counters are [Atomic.t] ints, so
   concurrent recorders from N domains lose no increments and [reset]
   cannot race a recorder into a torn read; the name->counter
   registries and the span aggregates are guarded by one module mutex
   (registration and span close are cold paths); the span nesting
   depth is domain-local.  The [enabled]/clock/sink switches remain
   plain refs — they are configuration, flipped while the system is
   quiescent, and a stale read of a monotone flag is benign. *)

module Mcore = Aqua_multicore.Mcore

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* The stdlib has no monotonic clock; [Unix.gettimeofday] is the best
   dependency-free default, but the wall clock can step backwards (NTP
   slew, VM suspend).  The default is therefore monotonicized: a read
   below the previous one returns the previous one, so intervals taken
   through it are never negative.  Benchmarks install a true monotonic
   source via [set_clock].  The floor is an Atomic so concurrent reads
   from N domains keep it monotone instead of racing it backwards. *)
let default_clock =
  let last = Atomic.make Int64.min_int in
  fun () ->
    let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
    let rec advance () =
      let prev = Atomic.get last in
      if Int64.compare t prev > 0 then
        if Atomic.compare_and_set last prev t then t else advance ()
      else prev
    in
    advance ()

let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

(* One lock for every registry in this module: counter and clause
   tables, span aggregates.  Hot-path increments never take it — only
   registration (first use of a name) and span close do. *)
let registry_lock = Mcore.Mutex.create ()

(* Counters ---------------------------------------------------------- *)

type counter = { name : string; count : int Atomic.t }

(* Registration order matters for reporting, so keep a reverse-ordered
   list alongside the by-name table. *)
let counter_table : (string, counter) Hashtbl.t = Hashtbl.create 64
let counter_order : counter list ref = ref []

let counter name =
  Mcore.Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt counter_table name with
  | Some c -> c
  | None ->
      let c = { name; count = Atomic.make 0 } in
      Hashtbl.add counter_table name c;
      counter_order := c :: !counter_order;
      c

let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.count 1)
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.count n)
let value c = Atomic.get c.count

let counters () =
  let order =
    Mcore.Mutex.protect registry_lock (fun () -> !counter_order)
  in
  List.rev_map (fun c -> (c.name, Atomic.get c.count)) order

let c_translations = counter "translator.translations"
let c_rows_emitted = counter "xqeval.rows_emitted"
let c_hash_join_builds = counter "hash_join.builds"
let c_hash_join_build_rows = counter "hash_join.build_rows"
let c_hash_join_probes = counter "hash_join.probes"
let c_hash_join_collisions = counter "hash_join.collisions"
let c_hash_join_reused = counter "hash_join.build_reused"
let c_pushdown_rewrites = counter "optimize.pushdown_rewrites"
let c_hash_join_rewrites = counter "optimize.hash_join_rewrites"
let c_engine_rows_scanned = counter "sqlengine.rows_scanned"
let c_engine_rows_joined = counter "sqlengine.rows_joined"
let c_cache_hits = counter "driver.cache_hits"
let c_cache_misses = counter "driver.cache_misses"
let c_resultset_rows = counter "driver.resultset_rows"
let c_retry_attempts = counter "resilience.retry_attempts"
let c_retry_giveups = counter "resilience.retry_giveups"
let c_breaker_trips = counter "resilience.breaker_trips"
let c_breaker_recoveries = counter "resilience.breaker_recoveries"
let c_breaker_rejections = counter "resilience.breaker_rejections"
let c_deadline_exceeded = counter "resilience.deadline_exceeded"
let c_resource_exhausted = counter "resilience.resource_exhausted"
let c_faults_injected = counter "resilience.faults_injected"
let c_fallbacks_unoptimized = counter "driver.fallbacks_unoptimized"
let c_scan_cache_hits = counter "scan_cache.hits"
let c_scan_cache_misses = counter "scan_cache.misses"
let c_scan_cache_evictions = counter "scan_cache.evictions"
(* resident bytes: incremented on insert, decremented on evict/flush —
   a gauge kept in the counter table so snapshots and the Prometheus
   exposition pick it up for free *)
let c_scan_cache_bytes = counter "scan_cache.bytes"
let c_shared_scan_rewrites = counter "optimize.shared_scan_rewrites"
let c_batch_batches = counter "xqeval.batch.batches"
let c_batch_rows = counter "xqeval.batch.rows"
let c_batch_filtered = counter "xqeval.batch.filtered"
let c_col_batches = counter "xqeval.columnar.batches"
let c_col_rows = counter "xqeval.columnar.rows"
let c_col_pruned_columns = counter "xqeval.columnar.pruned_columns"
let c_col_kernel_updates = counter "xqeval.columnar.kernel_updates"
let c_pool_borrows = counter "session_pool.borrows"
let c_pool_rejections = counter "session_pool.rejections"
let c_pool_waits = counter "session_pool.waits"
let c_net_connections = counter "net.connections"
let c_net_queries = counter "net.queries"
let c_net_shed_queue = counter "net.shed_queue"
let c_net_shed_drain = counter "net.shed_drain"
let c_net_shed_breaker = counter "net.shed_breaker"
let c_net_protocol_errors = counter "net.protocol_errors"
let c_net_io_timeouts = counter "net.io_timeouts"
let c_net_drains = counter "net.drains"
let c_net_stat_queries = counter "net.stat_queries"
let c_net_traces_sampled = counter "net.traces_sampled"

(* Per-clause row accounting ----------------------------------------- *)

(* Clause counters live in their own namespace so a generic counter and
   a plan node can never collide, and so [reset] can drop them entirely
   (the set of labels is query-dependent). *)
let clause_table : (string, counter) Hashtbl.t = Hashtbl.create 16
let clause_order : counter list ref = ref []

let clause_counter label =
  Mcore.Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt clause_table label with
  | Some c -> c
  | None ->
      let c = { name = label; count = Atomic.make 0 } in
      Hashtbl.add clause_table label c;
      clause_order := c :: !clause_order;
      c

let clause_rows () =
  let order = Mcore.Mutex.protect registry_lock (fun () -> !clause_order) in
  List.rev_map (fun c -> (c.name, Atomic.get c.count)) order

(* JSON escaping ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Trace context ------------------------------------------------------ *)

(* A per-query trace context, installed by the wire frontend for the
   duration of one statement and read anywhere down the stack — the
   driver, the translator stages, xqeval, the DSP server — without
   threading a parameter through every layer.  Domain-local: two
   sessions on different worker domains each see only their own
   context.  [sampled] is the head-based sampling decision; span and
   trace-event NDJSON emission honors it (an unsampled query's spans
   still feed the aggregate registries — only the per-event lines are
   suppressed). *)
type trace_ctx = { trace_id : string; sampled : bool }

let trace_ctx_key : trace_ctx option Mcore.Dls.key =
  Mcore.Dls.new_key (fun () -> None)

let with_trace ~id ~sampled f =
  let prev = Mcore.Dls.get trace_ctx_key in
  Mcore.Dls.set trace_ctx_key (Some { trace_id = id; sampled });
  Fun.protect ~finally:(fun () -> Mcore.Dls.set trace_ctx_key prev) f

let current_trace () =
  match Mcore.Dls.get trace_ctx_key with
  | Some c -> Some (c.trace_id, c.sampled)
  | None -> None

let current_trace_id () =
  match Mcore.Dls.get trace_ctx_key with
  | Some c -> Some c.trace_id
  | None -> None

(* Emission policy: no context (CLI runs, startup work) keeps the
   legacy behavior — everything emits; a context emits only when
   sampled. *)
let trace_emitting () =
  match Mcore.Dls.get trace_ctx_key with
  | Some c -> c.sampled
  | None -> true

(* [,"trace":"<id>"] when a context is installed, [""] otherwise. *)
let trace_field () =
  match Mcore.Dls.get trace_ctx_key with
  | Some c -> Printf.sprintf ",\"trace\":\"%s\"" (json_escape c.trace_id)
  | None -> ""

(* Tracing ------------------------------------------------------------ *)

let trace_sink : (string -> unit) option ref = ref None
let set_trace_sink s = trace_sink := s

(* Concurrent spans emit whole lines under a lock so the NDJSON stream
   never interleaves two domains' events inside one line. *)
let trace_lock = Mcore.Mutex.create ()

let emit_line line =
  match !trace_sink with
  | Some sink -> Mcore.Mutex.protect trace_lock (fun () -> sink line)
  | None -> ()

let trace_event ev fields =
  if !enabled_flag && !trace_sink <> None && trace_emitting () then begin
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "{\"ev\":\"%s\"" (json_escape ev));
    Buffer.add_string buf (trace_field ());
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      fields;
    Buffer.add_char buf '}';
    emit_line (Buffer.contents buf)
  end

(* Spans -------------------------------------------------------------- *)

(* A hook observing every span close (name, clamped duration); the obs
   layer installs a histogram recorder here so that per-span latency
   distributions never require telemetry itself to know about
   histograms (no dependency cycle). *)
let span_observer : (string -> int64 -> unit) option ref = ref None
let set_span_observer f = span_observer := f

type span_agg = { span_name : string; mutable n : int; mutable total_ns : int64 }

let span_table : (string, span_agg) Hashtbl.t = Hashtbl.create 32
let span_order : span_agg list ref = ref []

(* Span nesting depth is per-domain: two sessions' spans are unrelated
   and must not see each other's nesting. *)
let span_depth_key = Mcore.Dls.new_key (fun () -> 0)

let span_agg name =
  match Hashtbl.find_opt span_table name with
  | Some a -> a
  | None ->
      let a = { span_name = name; n = 0; total_ns = 0L } in
      Hashtbl.add span_table name a;
      span_order := a :: !span_order;
      a

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let start = now_ns () in
    let depth = Mcore.Dls.get span_depth_key in
    Mcore.Dls.set span_depth_key (depth + 1);
    let finish () =
      Mcore.Dls.set span_depth_key depth;
      (* an installed clock may still step backwards (the default one
         cannot); a span must never record a negative duration *)
      let dur = Int64.sub (now_ns ()) start in
      let dur = if Int64.compare dur 0L < 0 then 0L else dur in
      Mcore.Mutex.protect registry_lock (fun () ->
          let a = span_agg name in
          a.n <- a.n + 1;
          a.total_ns <- Int64.add a.total_ns dur);
      (match !span_observer with Some f -> f name dur | None -> ());
      if !trace_sink <> None && trace_emitting () then
        emit_line
          (Printf.sprintf
             "{\"ev\":\"span\",\"name\":\"%s\"%s,\"depth\":%d,\"start_ns\":%Ld,\"dur_ns\":%Ld}"
             (json_escape name) (trace_field ()) depth start dur)
    in
    match f () with
    | v -> finish (); v
    | exception e -> finish (); raise e
  end

let span_stats () =
  Mcore.Mutex.protect registry_lock @@ fun () ->
  List.rev_map (fun a -> (a.span_name, a.n, a.total_ns)) !span_order

let span_total_ns name =
  Mcore.Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt span_table name with
  | Some a -> a.total_ns
  | None -> 0L

(* Snapshot ----------------------------------------------------------- *)

type metrics = {
  translations : int;
  parse_ns : int64;
  semantic_ns : int64;
  generate_ns : int64;
  rows_emitted : int;
  hash_join_builds : int;
  hash_join_build_rows : int;
  hash_join_probes : int;
  hash_join_collisions : int;
  hash_join_reused : int;
  pushdown_rewrites : int;
  hash_join_rewrites : int;
  engine_rows_scanned : int;
  engine_rows_joined : int;
  cache_hits : int;
  cache_misses : int;
  resultset_rows : int;
  ds_calls : int;
  ds_call_ns : int64;
  scan_cache_hits : int;
  scan_cache_misses : int;
  scan_cache_evictions : int;
  scan_cache_bytes : int;
  shared_scan_rewrites : int;
  batch_batches : int;
  batch_rows : int;
  batch_filtered : int;
  columnar_batches : int;
  columnar_rows : int;
  columnar_pruned_columns : int;
  columnar_kernel_updates : int;
}

let ds_call_prefix = "dsp.call."

let snapshot () =
  let ds_calls, ds_call_ns =
    Mcore.Mutex.protect registry_lock @@ fun () ->
    Hashtbl.fold
      (fun name a (calls, ns) ->
        if String.length name > String.length ds_call_prefix
           && String.sub name 0 (String.length ds_call_prefix) = ds_call_prefix
        then (calls + a.n, Int64.add ns a.total_ns)
        else (calls, ns))
      span_table (0, 0L)
  in
  {
    translations = value c_translations;
    parse_ns = span_total_ns "translate.parse";
    semantic_ns = span_total_ns "translate.semantic";
    generate_ns = span_total_ns "translate.generate";
    rows_emitted = value c_rows_emitted;
    hash_join_builds = value c_hash_join_builds;
    hash_join_build_rows = value c_hash_join_build_rows;
    hash_join_probes = value c_hash_join_probes;
    hash_join_collisions = value c_hash_join_collisions;
    hash_join_reused = value c_hash_join_reused;
    pushdown_rewrites = value c_pushdown_rewrites;
    hash_join_rewrites = value c_hash_join_rewrites;
    engine_rows_scanned = value c_engine_rows_scanned;
    engine_rows_joined = value c_engine_rows_joined;
    cache_hits = value c_cache_hits;
    cache_misses = value c_cache_misses;
    resultset_rows = value c_resultset_rows;
    ds_calls;
    ds_call_ns;
    scan_cache_hits = value c_scan_cache_hits;
    scan_cache_misses = value c_scan_cache_misses;
    scan_cache_evictions = value c_scan_cache_evictions;
    scan_cache_bytes = value c_scan_cache_bytes;
    shared_scan_rewrites = value c_shared_scan_rewrites;
    batch_batches = value c_batch_batches;
    batch_rows = value c_batch_rows;
    batch_filtered = value c_batch_filtered;
    columnar_batches = value c_col_batches;
    columnar_rows = value c_col_rows;
    columnar_pruned_columns = value c_col_pruned_columns;
    columnar_kernel_updates = value c_col_kernel_updates;
  }

let metrics_to_json m =
  Printf.sprintf
    "{\"translations\":%d,\"parse_ns\":%Ld,\"semantic_ns\":%Ld,\"generate_ns\":%Ld,\"rows_emitted\":%d,\"hash_join_builds\":%d,\"hash_join_build_rows\":%d,\"hash_join_probes\":%d,\"hash_join_collisions\":%d,\"hash_join_reused\":%d,\"pushdown_rewrites\":%d,\"hash_join_rewrites\":%d,\"engine_rows_scanned\":%d,\"engine_rows_joined\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"resultset_rows\":%d,\"ds_calls\":%d,\"ds_call_ns\":%Ld,\"scan_cache_hits\":%d,\"scan_cache_misses\":%d,\"scan_cache_evictions\":%d,\"scan_cache_bytes\":%d,\"shared_scan_rewrites\":%d,\"batch_batches\":%d,\"batch_rows\":%d,\"batch_filtered\":%d,\"columnar_batches\":%d,\"columnar_rows\":%d,\"columnar_pruned_columns\":%d,\"columnar_kernel_updates\":%d}"
    m.translations m.parse_ns m.semantic_ns m.generate_ns m.rows_emitted
    m.hash_join_builds m.hash_join_build_rows m.hash_join_probes
    m.hash_join_collisions m.hash_join_reused m.pushdown_rewrites
    m.hash_join_rewrites
    m.engine_rows_scanned m.engine_rows_joined m.cache_hits m.cache_misses
    m.resultset_rows m.ds_calls m.ds_call_ns m.scan_cache_hits
    m.scan_cache_misses m.scan_cache_evictions m.scan_cache_bytes
    m.shared_scan_rewrites m.batch_batches m.batch_rows m.batch_filtered
    m.columnar_batches m.columnar_rows m.columnar_pruned_columns
    m.columnar_kernel_updates

let reset () =
  Mcore.Mutex.protect registry_lock @@ fun () ->
  (* [c_scan_cache_bytes] is a gauge, not a counter: it tracks bytes
     resident in live scan caches via +insert/-drop deltas.  Zeroing it
     while entries remain resident would make subsequent drops push it
     negative, so reset leaves it alone. *)
  Hashtbl.iter
    (fun _ c -> if c != c_scan_cache_bytes then Atomic.set c.count 0)
    counter_table;
  Hashtbl.reset clause_table;
  clause_order := [];
  Hashtbl.reset span_table;
  span_order := [];
  Mcore.Dls.set span_depth_key 0
