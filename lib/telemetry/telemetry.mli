(** Lightweight telemetry: spans, counters and trace events.

    The layer is off by default and costs a single branch per probe when
    disabled, so it can stay permanently threaded through the translator
    stages, both XQuery engines, the SQL engine, the driver and the DSP
    server.  Enable it with {!set_enabled}, run a workload, then read the
    aggregate {!snapshot} or attach an NDJSON {!set_trace_sink} for
    per-span events. *)

(** {1 Switch and clock} *)

val set_enabled : bool -> unit
(** Turn the probes on or off (off by default).  Disabling does not clear
    accumulated data; use {!reset} for that. *)

val enabled : unit -> bool

val set_clock : (unit -> int64) -> unit
(** Install a nanosecond clock.  The default derives from
    [Unix.gettimeofday] monotonicized (a wall-clock step backwards
    returns the previous reading rather than going back in time);
    benchmarks may install a true monotonic source (e.g. bechamel's
    [Monotonic_clock.now]).  Span durations are clamped at 0 in any
    case, so a misbehaving installed clock can never record negative
    time. *)

val now_ns : unit -> int64
(** Read the installed clock (works even when disabled). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] returns the counter registered under [name], creating
    it on first use.  Counter names are unique; calling [counter] twice
    with the same name yields the same counter. *)

val incr : counter -> unit
(** No-op while disabled. *)

val add : counter -> int -> unit
(** No-op while disabled. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** All registered counters in first-registration order. *)

(** Pre-registered counters used by the instrumented libraries. *)

val c_translations : counter       (* SQL statements translated *)
val c_rows_emitted : counter       (* tuples emitted by FLWOR clauses (xqeval) *)
val c_hash_join_builds : counter   (* hash tables built (both engines) *)
val c_hash_join_build_rows : counter (* rows inserted into hash tables *)
val c_hash_join_probes : counter   (* hash-table probes *)
val c_hash_join_collisions : counter (* insert-side bucket collisions (key already present) *)
val c_hash_join_reused : counter   (* hash-table builds skipped via reuse (xqeval) *)
val c_pushdown_rewrites : counter  (* predicates pushed down by the optimizer *)
val c_hash_join_rewrites : counter (* equi-joins rewritten to hash joins *)
val c_engine_rows_scanned : counter (* base-table rows scanned (sqlengine) *)
val c_engine_rows_joined : counter  (* rows produced by sqlengine joins *)
val c_cache_hits : counter         (* driver LRU translation-cache hits *)
val c_cache_misses : counter       (* driver LRU translation-cache misses *)
val c_resultset_rows : counter     (* rows materialized into driver result sets *)
val c_retry_attempts : counter     (* backend calls re-attempted after a transient fault *)
val c_retry_giveups : counter      (* retries exhausted; the fault propagated *)
val c_breaker_trips : counter      (* circuit breakers opened *)
val c_breaker_recoveries : counter (* breakers closed again from half-open *)
val c_breaker_rejections : counter (* calls rejected by an open breaker *)
val c_deadline_exceeded : counter  (* queries canceled by their deadline *)
val c_resource_exhausted : counter (* row/item/fuel governors tripped *)
val c_faults_injected : counter    (* failpoint faults fired *)
val c_fallbacks_unoptimized : counter (* driver reran a query with the optimizer off *)
val c_scan_cache_hits : counter      (* materialized-scan cache hits (dsp) *)
val c_scan_cache_misses : counter    (* scan-cache misses (scan fetched and stored) *)
val c_scan_cache_evictions : counter (* entries evicted by the byte/row/entry budgets *)
val c_scan_cache_bytes : counter     (* resident scan-cache bytes (gauge: +insert/-evict) *)
val c_shared_scan_rewrites : counter (* repeated scans hoisted into a shared let *)
val c_batch_batches : counter        (* batches pushed by the vectorized pipeline *)
val c_batch_rows : counter           (* rows carried by those batches *)
val c_batch_filtered : counter       (* rows dropped by vectorized where filters *)
val c_col_batches : counter          (* columnar (struct-of-arrays) batches pushed *)
val c_col_rows : counter             (* rows carried by columnar batches *)
val c_col_pruned_columns : counter   (* column copies avoided by required-columns pruning *)
val c_col_kernel_updates : counter   (* per-tuple aggregation-kernel state updates *)
val c_pool_borrows : counter         (* sessions handed out by the session pool *)
val c_pool_rejections : counter      (* borrows rejected: pool exhausted (53300) *)
val c_pool_waits : counter           (* borrows that had to wait for a release *)
val c_net_connections : counter      (* network connections accepted *)
val c_net_queries : counter          (* wire Query messages executed *)
val c_net_shed_queue : counter       (* connections shed: accept queue full (53300) *)
val c_net_shed_drain : counter       (* connections/queries shed while draining (57P01/57P03) *)
val c_net_shed_breaker : counter     (* queries fast-rejected on an open breaker (08006) *)
val c_net_protocol_errors : counter  (* malformed/oversized/unknown wire frames (08P01) *)
val c_net_io_timeouts : counter      (* sessions torn down by a read/write deadline *)
val c_net_drains : counter           (* graceful drain sequences completed *)
val c_net_stat_queries : counter     (* aqua_stat_* virtual-table queries answered *)
val c_net_traces_sampled : counter   (* wire queries whose trace was head-sampled *)

(** {1 Per-clause row accounting}

    The xqeval FLWOR pipeline registers one counter per plan node (clause)
    it streams tuples through, labelled by clause kind and variable.
    {!clause_rows} returns them in first-seen order, which for a single
    query is pipeline order — the skeleton of an EXPLAIN ANALYZE tree. *)

val clause_counter : string -> counter
val clause_rows : unit -> (string * int) list

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and aggregates the duration under
    [name].  Spans nest; the current depth is recorded on each trace
    event.  When disabled this is just [f ()].  The span is closed (and
    traced) even if [f] raises. *)

val span_stats : unit -> (string * int * int64) list
(** [(name, count, total_ns)] per span name, first-seen order. *)

val span_total_ns : string -> int64
(** Total nanoseconds accumulated under one span name (0 if unknown). *)

val set_span_observer : (string -> int64 -> unit) option -> unit
(** When set, every span close (telemetry enabled) also calls the
    observer with the span name and its clamped duration.  The obs
    layer installs its histogram recorder here. *)

(** {1 Trace context}

    A per-query trace id installed by the wire frontend (or any other
    entry point) for the duration of one statement.  The context is
    domain-local, so concurrent sessions on different worker domains
    never see each other's ids, and it travels implicitly through the
    whole stack — session pool, driver, translator, both engines, DSP
    calls — without parameter threading.  While a context is
    installed, every span and trace-event NDJSON line carries a
    ["trace"] field, and emission honors the context's head-based
    sampling decision: an unsampled query still feeds every aggregate
    (counters, span totals, histograms, stats, recorder) but emits no
    per-event lines. *)

val with_trace : id:string -> sampled:bool -> (unit -> 'a) -> 'a
(** Install a trace context around [f] (restored on exit, also on
    exception).  Nested installs shadow and restore. *)

val current_trace : unit -> (string * bool) option
(** The installed [(trace id, sampled)] context, if any. *)

val current_trace_id : unit -> string option
(** Just the id — what the flight recorder stamps on events. *)

(** {1 Tracing} *)

val set_trace_sink : (string -> unit) option -> unit
(** When set (and telemetry is enabled), every span close emits one
    NDJSON line to the sink:
    [{"ev":"span","name":...,"depth":N,"start_ns":...,"dur_ns":...}]
    — with a [,"trace":id] field after [name] when a trace context is
    installed, and suppressed entirely when the context says
    unsampled. *)

val trace_event : string -> (string * string) list -> unit
(** [trace_event ev fields] emits a custom NDJSON line
    [{"ev":ev, field:value, ...}] to the sink, if any.  Values are
    emitted as JSON strings. *)

(** {1 Snapshot} *)

type metrics = {
  translations : int;
  parse_ns : int64;
  semantic_ns : int64;
  generate_ns : int64;
  rows_emitted : int;
  hash_join_builds : int;
  hash_join_build_rows : int;
  hash_join_probes : int;
  hash_join_collisions : int;
  hash_join_reused : int;
  pushdown_rewrites : int;
  hash_join_rewrites : int;
  engine_rows_scanned : int;
  engine_rows_joined : int;
  cache_hits : int;
  cache_misses : int;
  resultset_rows : int;
  ds_calls : int;          (** DSP data-service function invocations *)
  ds_call_ns : int64;      (** total latency across those invocations *)
  scan_cache_hits : int;
  scan_cache_misses : int;
  scan_cache_evictions : int;
  scan_cache_bytes : int;  (** resident bytes at snapshot time *)
  shared_scan_rewrites : int;
  batch_batches : int;     (** batches pushed by the vectorized pipeline *)
  batch_rows : int;        (** rows carried by those batches *)
  batch_filtered : int;    (** rows dropped by vectorized where filters *)
  columnar_batches : int;  (** columnar (struct-of-arrays) batches pushed *)
  columnar_rows : int;     (** rows carried by columnar batches *)
  columnar_pruned_columns : int;
      (** column copies avoided by required-columns pruning *)
  columnar_kernel_updates : int;
      (** per-tuple aggregation-kernel state updates *)
}

val snapshot : unit -> metrics

val metrics_to_json : metrics -> string
(** One-line JSON object, schema documented in DESIGN.md §8. *)

val reset : unit -> unit
(** Zero all counters, span aggregates and clause-row records.  Does not
    change the enabled flag, clock or trace sink — and does not touch
    the {!c_scan_cache_bytes} gauge, whose value tracks bytes still
    resident in live scan caches (zeroing it mid-life would let later
    evictions drive it negative). *)

(** {1 JSON string escaping} *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)
