(** A minimal JSON parser — just enough to validate the NDJSON trace
    stream and the BENCH_*.json files without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised with a position-annotated message on malformed input. *)

val parse : string -> t
(** Parse one complete JSON value; trailing whitespace is allowed,
    trailing garbage is not. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on missing key or
    non-object. *)

val to_string : t -> string
(** Re-serialize (compact, keys in stored order). *)
