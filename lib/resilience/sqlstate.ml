(* The typed error taxonomy of the driver boundary.  Every failure the
   JDBC-style driver can surface maps to a stable five-character
   SQLSTATE-style code, so legacy reporting tools see bounded, typed
   SQL errors instead of ad-hoc exception strings.  The code table is
   documented in DESIGN.md §9. *)

type t = {
  sqlstate : string;  (** five characters: two-char class + subclass *)
  condition : string;  (** symbolic condition name, stable across releases *)
  message : string;  (** human-readable detail, position included when known *)
}

exception Error of t

(* Class 08 — connection (the data-service backend stands in for the
   remote connection). *)
let connection_failure = "08006"
let connection_rejected = "08004"
let protocol_violation = "08P01"

(* Class 21/22/38 — data and routine errors surfaced at evaluation. *)
let cardinality_violation = "21000"
let data_exception = "22000"
let external_routine_exception = "38000"

(* Class 42 — translation-time errors (SQL syntax and semantics). *)
let syntax_error = "42601"
let undefined_table = "42P01"
let undefined_column = "42703"
let ambiguous_column = "42702"
let grouping_error = "42803"
let datatype_mismatch = "42804"

(* Class 0A — translator limitations. *)
let feature_not_supported = "0A000"

(* Class 53/54/57 — resource governors and cancellation. *)
let insufficient_resources = "53000"
let too_many_connections = "53300"
let configured_limit_exceeded = "53400"
let statement_too_complex = "54001"
let query_canceled = "57014"
let admin_shutdown = "57P01"
let cannot_connect_now = "57P03"

(* Class XX — invariant violations inside the translator/evaluator. *)
let internal_error = "XX000"

let make ~sqlstate ~condition message = { sqlstate; condition; message }

let error ~sqlstate ~condition fmt =
  Format.kasprintf
    (fun message -> raise (Error { sqlstate; condition; message }))
    fmt

let to_string e = Printf.sprintf "[%s] %s: %s" e.sqlstate e.condition e.message

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Sqlstate.Error " ^ to_string e)
    | _ -> None)
