(** SQLSTATE-style typed errors for the driver boundary.

    Every failure the driver can surface carries a stable five-character
    code (class + subclass, modelled on SQL:1992 / PostgreSQL usage) so
    that the legacy reporting tools sitting above the JDBC driver see
    bounded, typed SQL errors.  The full code table lives in
    DESIGN.md §9. *)

type t = {
  sqlstate : string;  (** five characters: two-char class + subclass *)
  condition : string;  (** symbolic condition name, stable across releases *)
  message : string;  (** human-readable detail, position included when known *)
}

exception Error of t

(** {1 The code table} *)

val connection_failure : string  (** 08006 — transient backend failure *)

val connection_rejected : string  (** 08004 — circuit breaker open *)

val protocol_violation : string  (** 08P01 — malformed wire result *)

val cardinality_violation : string  (** 21000 *)

val data_exception : string  (** 22000 — dynamic evaluation error *)

val external_routine_exception : string
(** 38000 — a data-service function body failed *)

val syntax_error : string  (** 42601 *)

val undefined_table : string  (** 42P01 *)

val undefined_column : string  (** 42703 *)

val ambiguous_column : string  (** 42702 *)

val grouping_error : string  (** 42803 *)

val datatype_mismatch : string  (** 42804 *)

val feature_not_supported : string  (** 0A000 *)

val insufficient_resources : string
(** 53000 — materialization/fuel governor tripped *)

val too_many_connections : string
(** 53300 — session pool exhausted; no session available *)

val configured_limit_exceeded : string
(** 53400 — the configured max-rows limit tripped *)

val statement_too_complex : string
(** 54001 — data-service call depth / cycle guard *)

val query_canceled : string  (** 57014 — deadline exceeded *)

val admin_shutdown : string
(** 57P01 — server draining: an already-connected session issued a
    query after SIGTERM started the graceful drain *)

val cannot_connect_now : string
(** 57P03 — server draining: a connection arrived (or was still
    queued) after the drain began and is rejected before any work *)

val internal_error : string  (** XX000 *)

(** {1 Constructors} *)

val make : sqlstate:string -> condition:string -> string -> t

val error :
  sqlstate:string -> condition:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~sqlstate ~condition fmt ...] raises {!Error} with a
    formatted message. *)

val to_string : t -> string
(** [[sqlstate] condition: message]. *)
