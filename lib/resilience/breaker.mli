(** Per-data-service-function circuit breakers.

    Closed passes calls through and counts consecutive failures; at
    [failure_threshold] the breaker opens and rejects calls instantly
    ({!Open_circuit}, SQLSTATE 08004 at the driver boundary), so a
    persistently-failing backend fails fast instead of burning the
    query's budget on doomed retries.  After [cooldown_ns] one trial
    call is admitted (half-open): success closes the breaker (a
    recovery), failure re-opens it (another trip).  Time comes from
    the pluggable {!Aqua_core.Telemetry} clock. *)

type state = Closed | Open | Half_open

type config = { failure_threshold : int; cooldown_ns : int64 }

val default_config : config
(** 5 consecutive failures trip; 100 ms cooldown. *)

type t

exception Open_circuit of { name : string }

val create : ?config:config -> string -> t
val name : t -> string
val state : t -> state
val state_to_string : state -> string

val rejecting : t -> bool
(** Whether an immediate {!call} would be rejected: open AND still
    inside the cooldown.  Once the cooldown elapses this is [false] —
    the next call is the half-open trial and admission layers must let
    it through.  Does not count as a rejection. *)

val trips : t -> int
val recoveries : t -> int
val rejections : t -> int

val call : ?count_failure:(exn -> bool) -> t -> (unit -> 'a) -> 'a
(** Run [f] through the breaker.  [count_failure] (default: every
    exception) decides whether a raised exception counts toward the
    failure threshold — budget cancellations, for example, say nothing
    about the backend's health and should not trip it.
    @raise Open_circuit instantly while the breaker is open. *)

(** {1 Registry} *)

type registry
(** One breaker per data-service function, shared by every query a
    server runs. *)

val registry : ?config:config -> unit -> registry

val get : registry -> string -> t
(** The breaker registered under [name], created on first use. *)

val all : registry -> t list
(** All breakers, sorted by name. *)
