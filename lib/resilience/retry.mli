(** Retry with exponential backoff and deterministic jitter.

    The backoff schedule is a pure function of the policy (including
    its seed) so tests can assert the exact delays.  Only exceptions
    classified [Transient] are retried; by default that is exactly
    {!Failpoint.Injected} — in-process evaluation errors are
    deterministic and retrying them would waste the query's budget. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_ns : int64;
  multiplier : float;
  max_delay_ns : int64;  (** cap on any single delay *)
  jitter : float;  (** +/- fraction of the delay, in [0, 1] *)
  seed : int;  (** drives the deterministic jitter *)
}

val default_policy : policy
(** 3 attempts, 1 ms base, x2 backoff, 100 ms cap, 20% jitter. *)

val no_retry : policy
(** A single attempt: disables retrying. *)

val delay_ns : policy -> attempt:int -> int64
(** Deterministic delay before re-attempt [attempt] (the first retry
    is attempt 2). *)

val backoff_schedule : policy -> int64 list
(** The delays before attempts [2 .. max_attempts], in order. *)

type outcome = Transient | Fatal

val with_retry :
  ?policy:policy ->
  ?classify:(exn -> outcome) ->
  ?sleep:(int64 -> unit) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying transient failures with backoff.  The budget
    deadline is checked before and after each backoff sleep so retries
    cannot outlive the query's deadline.  Telemetry counts each retry
    ([resilience.retry_attempts]) and each exhaustion
    ([resilience.retry_giveups]). *)
