(** Per-query budgets: a wall-clock deadline plus resource governors.

    A budget bounds one query end to end: wall-clock time (read through
    the pluggable {!Aqua_core.Telemetry} clock), output rows,
    materialized items (hash-join builds, engine scans) and evaluator
    steps ("fuel").  {!with_budget} installs the budget dynamically for
    the extent of the query; the evaluation loops of xqeval, the SQL
    engine and the driver's result-set decoder call the [step]/[tick_*]
    probes cooperatively.  When no budget is installed each probe costs
    one ref read. *)

type limits = {
  timeout_ns : int64 option;
  max_rows : int option;
  max_items : int option;
  max_fuel : int option;
}

val no_limits : limits

val limits :
  ?timeout_ms:int ->
  ?max_rows:int ->
  ?max_items:int ->
  ?max_fuel:int ->
  unit ->
  limits

type resource = Deadline | Rows | Items | Fuel

type violation = { resource : resource; limit : int64 }
(** [limit] is the configured bound: nanoseconds for [Deadline], a
    count for the others. *)

exception Exceeded of violation

val resource_to_string : resource -> string

val to_sqlstate : violation -> Sqlstate.t
(** [Deadline] maps to 57014 (query canceled), [Rows] to 53400
    (configured limit exceeded), [Items] and [Fuel] to 53000
    (insufficient resources). *)

val with_budget : limits -> (unit -> 'a) -> 'a
(** Installs a fresh budget for the extent of [f] (previous budget
    restored on exit, even on exception).  [no_limits] installs
    nothing.  @raise Exceeded from within [f] when a governor trips. *)

val active : unit -> bool
(** True when a budget is currently installed. *)

(** {1 Cooperative probes} *)

val step : unit -> unit
(** One evaluator step: counts fuel and checks the deadline every 64th
    step (the clock is not read on every call). *)

val steps : int -> unit
(** [steps n] charges [n] evaluator steps at once — the batch
    evaluator's per-batch probe.  Equivalent to [n] calls to {!step}
    for fuel accounting, with at most one deadline clock read. *)

val tick_rows : int -> unit
(** Count [n] output rows against [max_rows] and check the deadline. *)

val tick_items : int -> unit
(** Count [n] materialized items against [max_items] and check the
    deadline. *)

val check_now : unit -> unit
(** Immediate deadline check (one clock read). *)
