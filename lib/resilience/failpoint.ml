(* Named fault-injection sites.  Each instrumented layer calls
   [hit "site.name"] at its failure-prone boundary; a schedule armed
   from a spec string (or the AQUA_FAILPOINTS environment variable)
   decides, deterministically, whether that hit raises an injected
   fault, injects latency, or passes through.  Disarmed, [hit] is a
   single ref read — the sites stay in the hot paths permanently. *)

module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

(* The documented site catalog.  [hit] accepts any name (so libraries
   can add sites without touching this list), but the differential
   fault suite iterates this catalog and DESIGN.md §9 documents it. *)
let catalog =
  [
    "driver.translate";  (* SQL -> XQuery translation, driver side *)
    "dsp.invoke";  (* a data-service function invocation *)
    "xqeval.clause";  (* applying one FLWOR pipeline clause *)
    "xqeval.hashjoin";  (* the optimizer-introduced hash-join clause *)
    "xqeval.batch";  (* one batch emitted by the vectorized pipeline *)
    "engine.scan";  (* baseline SQL engine base-table scan *)
    "driver.decode";  (* result-set wire decoding, driver side *)
    "net.accept";  (* a freshly accepted network connection *)
    "net.read";  (* reading one wire frame from a session socket *)
    "net.write";  (* flushing a wire response to a session socket *)
    "net.session";  (* admitting one Query message on a session *)
  ]

type action =
  | Fail of int option  (** fail the first [n] hits; [None] = every hit *)
  | Fail_at of int  (** fail exactly on the [n]-th hit (1-based) *)
  | Delay of int64  (** inject this much latency (ns), then pass *)
  | Flaky of float  (** fail each hit with this seeded probability *)

type site = { action : action; mutable hits : int }

exception Injected of { site : string; hit : int }

exception Spec_error of string

let armed = ref false
let global_seed = ref 0
let sites : (string, site) Hashtbl.t = Hashtbl.create 8

(* Guards [sites] and each site's hit count.  The armed flag itself
   stays a plain ref: arming/disarming happens while the system is
   quiescent (test setup), and the fast path must remain one read. *)
let lock = Mcore.Mutex.create ()

let disarm () =
  Mcore.Mutex.protect lock @@ fun () ->
  armed := false;
  Hashtbl.reset sites

let hit_count name =
  Mcore.Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt sites name with Some s -> s.hits | None -> 0

(* Deterministic per-hit randomness for [Flaky]: splitmix64-style
   mixing of (seed, site name, hit index) to a float in [0, 1). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hit_unit name n =
  let h =
    mix64
      (Int64.add
         (Int64.of_int ((!global_seed * 1_000_003) + n))
         (Int64.of_int (Hashtbl.hash name)))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let busy_wait ns =
  (* real latency so deadlines observe it; sleepf releases the CPU *)
  Unix.sleepf (Int64.to_float ns /. 1e9)

let fire name n =
  Telemetry.incr Telemetry.c_faults_injected;
  Telemetry.trace_event "fault"
    [ ("site", name); ("hit", string_of_int n) ];
  raise (Injected { site = name; hit = n })

(* What one hit should do, decided under the lock; the side effect
   (raise / sleep) happens outside it so an injected delay never holds
   the lock against other domains' sites. *)
type decision = Pass | Fire of int | Sleep of int64

let slow_hit name =
  let d =
    Mcore.Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt sites name with
    | None -> Pass
    | Some s -> (
      s.hits <- s.hits + 1;
      let n = s.hits in
      match s.action with
      | Fail None -> Fire n
      | Fail (Some k) -> if n <= k then Fire n else Pass
      | Fail_at k -> if n = k then Fire n else Pass
      | Delay ns -> Sleep ns
      | Flaky p -> if hit_unit name n < p then Fire n else Pass)
  in
  match d with
  | Pass -> ()
  | Fire n -> fire name n
  | Sleep ns -> busy_wait ns

let hit name = if !armed then slow_hit name

(* Spec parsing: "site=action;site=action;...".  Actions:
     fail          fail every hit
     fail(N)       fail the first N hits
     at(N)         fail exactly on the N-th hit
     delay(50ms)   inject latency (ns/us/ms/s suffixes)
     flaky(0.3)    seeded per-hit failure probability *)

let spec_error fmt = Format.kasprintf (fun m -> raise (Spec_error m)) fmt

let parse_duration_ns s =
  let num, unit_ =
    let i = ref 0 in
    let n = String.length s in
    while
      !i < n && (match s.[!i] with '0' .. '9' | '.' -> true | _ -> false)
    do
      incr i
    done;
    (String.sub s 0 !i, String.sub s !i (n - !i))
  in
  match (float_of_string_opt num, unit_) with
  | Some f, "ns" -> Int64.of_float f
  | Some f, "us" -> Int64.of_float (f *. 1e3)
  | Some f, "ms" -> Int64.of_float (f *. 1e6)
  | Some f, "s" -> Int64.of_float (f *. 1e9)
  | _ -> spec_error "bad duration %S (want e.g. 50ms, 2s, 100us)" s

let parse_action s =
  let call_arg name =
    let prefix = name ^ "(" in
    let pn = String.length prefix in
    if
      String.length s > pn + 1
      && String.sub s 0 pn = prefix
      && s.[String.length s - 1] = ')'
    then Some (String.sub s pn (String.length s - pn - 1))
    else None
  in
  if s = "fail" then Fail None
  else
    match call_arg "fail" with
    | Some arg -> (
      match int_of_string_opt arg with
      | Some n when n > 0 -> Fail (Some n)
      | _ -> spec_error "bad count in fail(%s)" arg)
    | None -> (
      match call_arg "at" with
      | Some arg -> (
        match int_of_string_opt arg with
        | Some n when n > 0 -> Fail_at n
        | _ -> spec_error "bad index in at(%s)" arg)
      | None -> (
        match call_arg "delay" with
        | Some arg -> Delay (parse_duration_ns arg)
        | None -> (
          match call_arg "flaky" with
          | Some arg -> (
            match float_of_string_opt arg with
            | Some p when p >= 0.0 && p <= 1.0 -> Flaky p
            | _ -> spec_error "bad probability in flaky(%s)" arg)
          | None -> spec_error "unknown failpoint action %S" s)))

let arm ?(seed = 0) spec =
  disarm ();
  Mcore.Mutex.protect lock @@ fun () ->
  global_seed := seed;
  String.split_on_char ';' spec
  |> List.iter (fun entry ->
         let entry = String.trim entry in
         if entry <> "" then
           match String.index_opt entry '=' with
           | None -> spec_error "failpoint entry %S is not site=action" entry
           | Some i ->
             let name = String.trim (String.sub entry 0 i) in
             let action =
               parse_action
                 (String.trim
                    (String.sub entry (i + 1) (String.length entry - i - 1)))
             in
             if name = "" then spec_error "empty site name in %S" entry;
             Hashtbl.replace sites name { action; hits = 0 });
  armed := Hashtbl.length sites > 0

let arm_from_env () =
  match Sys.getenv_opt "AQUA_FAILPOINTS" with
  | None | Some "" -> false
  | Some spec ->
    let seed =
      match Sys.getenv_opt "AQUA_FAILPOINTS_SEED" with
      | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
      | None -> 0
    in
    arm ~seed spec;
    !armed

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Failpoint.Injected(%s, hit %d)" site hit)
    | Spec_error m -> Some ("Failpoint.Spec_error: " ^ m)
    | _ -> None)
