(* Per-query budgets: a wall-clock deadline (read through the pluggable
   Telemetry clock) plus resource governors over output rows,
   materialized items and evaluator steps ("fuel").  The budget is
   dynamically scoped — [with_budget] installs it for the extent of one
   query — and checked cooperatively by the evaluation loops; when no
   budget is installed every probe is a single ref read. *)

module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

type limits = {
  timeout_ns : int64 option;
  max_rows : int option;
  max_items : int option;
  max_fuel : int option;
}

let no_limits =
  { timeout_ns = None; max_rows = None; max_items = None; max_fuel = None }

let limits ?timeout_ms ?max_rows ?max_items ?max_fuel () =
  {
    timeout_ns =
      Option.map (fun ms -> Int64.of_int (ms * 1_000_000)) timeout_ms;
    max_rows;
    max_items;
    max_fuel;
  }

type resource = Deadline | Rows | Items | Fuel

type violation = { resource : resource; limit : int64 }
(** [limit] is the configured bound: nanoseconds for [Deadline], a
    count for the others. *)

exception Exceeded of violation

type t = {
  deadline : int64 option;  (* absolute, in clock nanoseconds *)
  timeout_ns : int64 option;  (* the relative budget, for reporting *)
  max_rows : int option;
  max_items : int option;
  max_fuel : int option;
  mutable rows : int;
  mutable items : int;
  mutable fuel : int;
  mutable countdown : int;  (* steps until the next deadline clock read *)
}

(* Reading the clock on every evaluator step would dominate the step
   itself, so deadline checks are amortized: one clock read per this
   many fuel steps. *)
let deadline_check_period = 64

(* The installed budget is per-domain: each concurrent session runs its
   query under its own budget, and a governor trip in one domain must
   never cancel another domain's query. *)
let current : t option Mcore.Dls.key = Mcore.Dls.new_key (fun () -> None)

let active () = Mcore.Dls.get current <> None

let resource_to_string = function
  | Deadline -> "deadline"
  | Rows -> "output rows"
  | Items -> "materialized items"
  | Fuel -> "evaluator steps"

let to_sqlstate { resource; limit } =
  match resource with
  | Deadline ->
    Sqlstate.make ~sqlstate:Sqlstate.query_canceled ~condition:"query canceled"
      (Printf.sprintf "deadline of %.3f ms exceeded"
         (Int64.to_float limit /. 1e6))
  | Rows ->
    Sqlstate.make ~sqlstate:Sqlstate.configured_limit_exceeded
      ~condition:"row limit exceeded"
      (Printf.sprintf "query produced more than %Ld output rows" limit)
  | Items ->
    Sqlstate.make ~sqlstate:Sqlstate.insufficient_resources
      ~condition:"materialization limit exceeded"
      (Printf.sprintf "query materialized more than %Ld items" limit)
  | Fuel ->
    Sqlstate.make ~sqlstate:Sqlstate.insufficient_resources
      ~condition:"evaluation budget exceeded"
      (Printf.sprintf "query exceeded %Ld evaluator steps" limit)

let exceeded resource limit =
  (match resource with
  | Deadline -> Telemetry.incr Telemetry.c_deadline_exceeded
  | Rows | Items | Fuel -> Telemetry.incr Telemetry.c_resource_exhausted);
  raise (Exceeded { resource; limit })

let deadline_hit b = exceeded Deadline (Option.value b.timeout_ns ~default:0L)

let make (l : limits) =
  let deadline =
    Option.map (fun t -> Int64.add (Telemetry.now_ns ()) t) l.timeout_ns
  in
  {
    deadline;
    timeout_ns = l.timeout_ns;
    max_rows = l.max_rows;
    max_items = l.max_items;
    max_fuel = l.max_fuel;
    rows = 0;
    items = 0;
    fuel = 0;
    countdown = deadline_check_period;
  }

let with_budget (l : limits) f =
  if l = no_limits then f ()
  else begin
    let prev = Mcore.Dls.get current in
    Mcore.Dls.set current (Some (make l));
    Fun.protect ~finally:(fun () -> Mcore.Dls.set current prev) f
  end

let check_of b =
  match b.deadline with
  | Some d when Telemetry.now_ns () > d -> deadline_hit b
  | _ -> ()

let check_now () =
  match Mcore.Dls.get current with None -> () | Some b -> check_of b

let step () =
  match Mcore.Dls.get current with
  | None -> ()
  | Some b ->
    b.fuel <- b.fuel + 1;
    (match b.max_fuel with
    | Some m when b.fuel > m -> exceeded Fuel (Int64.of_int m)
    | _ -> ());
    b.countdown <- b.countdown - 1;
    if b.countdown <= 0 then begin
      b.countdown <- deadline_check_period;
      check_of b
    end

let steps n =
  if n > 0 then
    match Mcore.Dls.get current with
    | None -> ()
    | Some b ->
      b.fuel <- b.fuel + n;
      (match b.max_fuel with
      | Some m when b.fuel > m -> exceeded Fuel (Int64.of_int m)
      | _ -> ());
      b.countdown <- b.countdown - n;
      if b.countdown <= 0 then begin
        b.countdown <- deadline_check_period;
        check_of b
      end

let tick_rows n =
  match Mcore.Dls.get current with
  | None -> ()
  | Some b ->
    b.rows <- b.rows + n;
    (match b.max_rows with
    | Some m when b.rows > m -> exceeded Rows (Int64.of_int m)
    | _ -> ());
    check_of b

let tick_items n =
  match Mcore.Dls.get current with
  | None -> ()
  | Some b ->
    b.items <- b.items + n;
    (match b.max_items with
    | Some m when b.items > m -> exceeded Items (Int64.of_int m)
    | _ -> ());
    check_of b

let () =
  Printexc.register_printer (function
    | Exceeded v -> Some ("Budget.Exceeded " ^ Sqlstate.to_string (to_sqlstate v))
    | _ -> None)
