(* Retry with exponential backoff and deterministic jitter.  The
   backoff schedule is a pure function of the policy (including its
   seed), so tests can assert the exact delays; the sleep function is
   pluggable so unit tests run in zero wall-clock time. *)

module Telemetry = Aqua_core.Telemetry

type policy = {
  max_attempts : int;  (* total attempts, including the first *)
  base_delay_ns : int64;
  multiplier : float;
  max_delay_ns : int64;
  jitter : float;  (* +/- fraction of the delay, in [0, 1] *)
  seed : int;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay_ns = 1_000_000L;  (* 1 ms *)
    multiplier = 2.0;
    max_delay_ns = 100_000_000L;  (* 100 ms cap *)
    jitter = 0.2;
    seed = 0;
  }

let no_retry = { default_policy with max_attempts = 1 }

(* Deterministic jitter in [-1, 1] from (seed, attempt). *)
let jitter_unit policy ~attempt =
  let h = Hashtbl.hash (policy.seed, attempt, "retry.jitter") in
  float_of_int (h land 0xffff) /. 32767.5 -. 1.0

let delay_ns policy ~attempt =
  (* delay before re-attempt [attempt] (attempt 2 is the first retry) *)
  let exp =
    Int64.to_float policy.base_delay_ns
    *. (policy.multiplier ** float_of_int (attempt - 2))
  in
  let capped = Float.min exp (Int64.to_float policy.max_delay_ns) in
  let jittered =
    capped *. (1.0 +. (policy.jitter *. jitter_unit policy ~attempt))
  in
  Int64.of_float (Float.max 0.0 jittered)

let backoff_schedule policy =
  List.init
    (max 0 (policy.max_attempts - 1))
    (fun i -> delay_ns policy ~attempt:(i + 2))

type outcome = Transient | Fatal

let default_classify = function
  | Failpoint.Injected _ -> Transient
  | _ -> Fatal

let default_sleep ns = Unix.sleepf (Int64.to_float ns /. 1e9)

let with_retry ?(policy = default_policy) ?(classify = default_classify)
    ?(sleep = default_sleep) f =
  let rec attempt n =
    match f () with
    | v -> v
    | exception e -> (
      match classify e with
      | Fatal -> raise e
      | Transient ->
        if n >= policy.max_attempts then begin
          Telemetry.incr Telemetry.c_retry_giveups;
          raise e
        end
        else begin
          Telemetry.incr Telemetry.c_retry_attempts;
          (* never sleep through the deadline: check before backing off *)
          Budget.check_now ();
          Telemetry.with_span "resilience.backoff" (fun () ->
              sleep (delay_ns policy ~attempt:(n + 1)));
          Budget.check_now ();
          attempt (n + 1)
        end)
  in
  attempt 1
