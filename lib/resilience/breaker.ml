(* Per-data-service-function circuit breakers.  Closed passes calls
   through and counts consecutive failures; at the threshold the
   breaker opens and rejects calls instantly (so a persistently-down
   backend fails fast instead of burning the query's budget on doomed
   retries); after a cooldown one trial call is admitted (half-open) —
   success closes the breaker, failure re-opens it.  Time comes from
   the pluggable Telemetry clock, so tests drive transitions with a
   fake clock. *)

module Telemetry = Aqua_core.Telemetry
module Mcore = Aqua_multicore.Mcore

type state = Closed | Open | Half_open

type config = { failure_threshold : int; cooldown_ns : int64 }

let default_config = { failure_threshold = 5; cooldown_ns = 100_000_000L }

type t = {
  name : string;
  config : config;
  lock : Mcore.Mutex.t;  (* guards every mutable field below *)
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : int64;
  mutable trips : int;
  mutable recoveries : int;
  mutable rejections : int;
}

exception Open_circuit of { name : string }

let create ?(config = default_config) name =
  {
    name;
    config;
    lock = Mcore.Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0L;
    trips = 0;
    recoveries = 0;
    rejections = 0;
  }

let name b = b.name
let state b = Mcore.Mutex.protect b.lock (fun () -> b.state)
let trips b = Mcore.Mutex.protect b.lock (fun () -> b.trips)
let recoveries b = Mcore.Mutex.protect b.lock (fun () -> b.recoveries)
let rejections b = Mcore.Mutex.protect b.lock (fun () -> b.rejections)

(* Would an immediate [call] be rejected?  True only while the breaker
   is open AND the cooldown has not elapsed — once it has, the next
   call is the half-open trial and must be admitted, so backpressure
   layers (the network front end) must not fast-fail it.  Reading this
   does not count a rejection. *)
let rejecting b =
  Mcore.Mutex.protect b.lock @@ fun () ->
  b.state = Open
  && Int64.sub (Telemetry.now_ns ()) b.opened_at < b.config.cooldown_ns

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let trip b =
  b.state <- Open;
  b.opened_at <- Telemetry.now_ns ();
  b.trips <- b.trips + 1;
  Telemetry.incr Telemetry.c_breaker_trips;
  Telemetry.trace_event "breaker"
    [ ("name", b.name); ("state", "open") ]

let on_success b =
  if b.state = Half_open then begin
    b.recoveries <- b.recoveries + 1;
    Telemetry.incr Telemetry.c_breaker_recoveries;
    Telemetry.trace_event "breaker"
      [ ("name", b.name); ("state", "closed") ]
  end;
  b.state <- Closed;
  b.consecutive_failures <- 0

let on_failure b =
  b.consecutive_failures <- b.consecutive_failures + 1;
  if b.state = Half_open || b.consecutive_failures >= b.config.failure_threshold
  then trip b

let call ?(count_failure = fun _ -> true) b f =
  (* admission decision under the lock; the protected call itself runs
     outside it, so one slow backend call never serializes the other
     domains' admissions on this breaker *)
  Mcore.Mutex.protect b.lock (fun () ->
      match b.state with
      | Open ->
        if
          Int64.sub (Telemetry.now_ns ()) b.opened_at >= b.config.cooldown_ns
        then b.state <- Half_open
        else begin
          b.rejections <- b.rejections + 1;
          Telemetry.incr Telemetry.c_breaker_rejections;
          raise (Open_circuit { name = b.name })
        end
      | Closed | Half_open -> ());
  match f () with
  | v ->
    Mcore.Mutex.protect b.lock (fun () -> on_success b);
    v
  | exception e ->
    if count_failure e then
      Mcore.Mutex.protect b.lock (fun () -> on_failure b);
    raise e

(* Registry: one breaker per data-service function, shared by every
   query a server runs. *)

type registry = {
  config : config;
  rlock : Mcore.Mutex.t;
  table : (string, t) Hashtbl.t;
}

let registry ?(config = default_config) () =
  { config; rlock = Mcore.Mutex.create (); table = Hashtbl.create 8 }

let get reg name =
  Mcore.Mutex.protect reg.rlock @@ fun () ->
  match Hashtbl.find_opt reg.table name with
  | Some b -> b
  | None ->
    let b = create ~config:reg.config name in
    Hashtbl.add reg.table name b;
    b

let all reg =
  Mcore.Mutex.protect reg.rlock (fun () ->
      Hashtbl.fold (fun _ b acc -> b :: acc) reg.table [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let () =
  Printexc.register_printer (function
    | Open_circuit { name } ->
      Some (Printf.sprintf "Breaker.Open_circuit(%s)" name)
    | _ -> None)
