(** Fault-injection failpoints.

    Instrumented layers call {!hit} at their failure-prone boundaries
    (a data-service invocation, a FLWOR clause, a table scan, the wire
    decoder).  A schedule armed from a spec string — or the
    [AQUA_FAILPOINTS] environment variable — decides deterministically
    whether each hit raises {!Injected}, injects latency, or passes.
    Disarmed (the default) every [hit] costs a single ref read.

    Spec grammar: semicolon-separated [site=action] entries, where
    action is one of
    - [fail] — fail every hit
    - [fail(N)] — fail the first N hits (a transient fault that heals)
    - [at(N)] — fail exactly on the N-th hit
    - [delay(50ms)] — inject latency ([ns]/[us]/[ms]/[s] suffixes)
    - [flaky(0.3)] — fail each hit with seeded probability 0.3

    Example: ["dsp.invoke=fail(2);engine.scan=delay(1ms)"]. *)

val catalog : string list
(** The documented failpoint sites (DESIGN.md §9).  {!hit} accepts any
    name; this list is what the differential fault suite iterates. *)

type action =
  | Fail of int option  (** fail the first [n] hits; [None] = every hit *)
  | Fail_at of int  (** fail exactly on the [n]-th hit (1-based) *)
  | Delay of int64  (** inject this much latency (ns), then pass *)
  | Flaky of float  (** fail each hit with this seeded probability *)

exception Injected of { site : string; hit : int }
(** The injected fault — classified as a transient backend failure
    (SQLSTATE 08006) at the driver boundary. *)

exception Spec_error of string

val arm : ?seed:int -> string -> unit
(** Parse a spec and arm its sites (replacing any previous schedule).
    [seed] drives the [flaky] action.  An empty spec disarms.
    @raise Spec_error on a malformed spec. *)

val arm_from_env : unit -> bool
(** Arm from [AQUA_FAILPOINTS] (seed from [AQUA_FAILPOINTS_SEED]);
    returns whether anything was armed.
    @raise Spec_error on a malformed spec. *)

val disarm : unit -> unit

val hit : string -> unit
(** Announce one pass through a named site.  No-op unless armed.
    @raise Injected when the armed schedule fires. *)

val hit_count : string -> int
(** Hits recorded against a site since it was armed (0 if unarmed). *)
