(** Bounded session pool over one shared {!Connection.t}.

    The admission layer of concurrent serving: a fixed number of
    sessions — each with its own per-query {!Aqua_resilience.Budget}
    limits — multiplexed onto one connection (one translation cache,
    one metadata cache, one materialized scan cache).  When every
    session is out, a borrow either parks on a condition variable
    until a release broadcasts (re-checking its deadline at every
    wakeup) or fails fast with SQLSTATE 53300 (too_many_connections),
    so overload surfaces as a typed, bounded error instead of an
    unbounded queue.

    The pool lock covers only borrow/release bookkeeping; queries run
    outside it on the domain-safe connection. *)

type t

type session

val create : ?capacity:int -> ?limits:Aqua_resilience.Budget.limits ->
  Connection.t -> t
(** [capacity] defaults to 8 (clamped to >= 1); [limits] seeds every
    session's budget and defaults to the connection's own limits. *)

val connection : t -> Connection.t
val capacity : t -> int

val session_id : session -> int
val session_limits : session -> Aqua_resilience.Budget.limits
val set_session_limits : session -> Aqua_resilience.Budget.limits -> unit

val session_queries : session -> int
(** Statements executed under this session so far. *)

val borrow : ?wait_ms:int -> t -> session
(** Take a session.  With [wait_ms <= 0] (default) an empty pool fails
    immediately; otherwise the borrow blocks up to [wait_ms]
    milliseconds for a release (deadline expiry is observed at the
    next release broadcast; on the pre-5.0 shim the wait degrades to
    a bounded spin).
    @raise Aqua_resilience.Sqlstate.Error with SQLSTATE 53300 when no
    session becomes available *)

val release : t -> session -> unit

val with_session : ?wait_ms:int -> t -> (session -> 'a) -> 'a
(** Borrow, run, release (also on exception). *)

val execute : ?wait_ms:int -> t -> string -> Result_set.t
(** [with_session] around [Connection.execute_query ~limits:(session's)]. *)

val execute_concurrent :
  ?domains:int -> ?wait_ms:int -> t -> string list ->
  (Result_set.t, exn) result list
(** Drain a batch of statements with [domains] domains (default
    [min (num_cores) (length sqls)]), each statement executed under a
    freshly borrowed session, so the pool capacity — not the domain
    count — is the admission limit.  Results are in input order with
    per-statement outcomes captured independently.  Sequential (same
    results) on a pre-5.0 build. *)

type stats = {
  capacity : int;
  in_use : int;
  borrows : int;      (** successful borrows *)
  rejections : int;   (** borrows that raised 53300 *)
  waits : int;        (** borrows that had to spin for a release *)
  peak_in_use : int;  (** high-water mark of concurrently held sessions *)
}

val stats : t -> stats
