(** Callable statements: stored-procedure access to parameterized
    data-service functions (paper Figure 2: "if a function has
    parameters, it becomes a callable SQL stored procedure").

    Accepts the JDBC escape syntax
    [{call schema.procname(?, ?, ...)}] (braces optional, [CALL …]
    also accepted).  The procedure name resolves against the
    application's parameterized functions; executing returns the
    function's flat rows as a result set. *)

type t

val prepare : Connection.t -> string -> t
(** @raise Aqua_translator.Errors.Error on syntax errors or when the
    procedure does not exist / is ambiguous. *)

val parameter_count : t -> int
val procedure : t -> Aqua_dsp.Metadata.table
(** Metadata of the resolved procedure (schema, name, row type). *)

val set_value : t -> int -> Aqua_relational.Value.t -> unit
val set_int : t -> int -> int -> unit
val set_string : t -> int -> string -> unit
val set_float : t -> int -> float -> unit
val set_null : t -> int -> unit

val execute_query : t -> Result_set.t
(** @raise Invalid_argument if a parameter is unbound.
    @raise Aqua_xqeval.Error.Dynamic_error on evaluation errors. *)
