(** The driver boundary's error taxonomy.

    [Connection.execute_query] and friends funnel every failure of the
    translate/execute/decode pipeline through {!wrap}, so clients see
    one exception type, {!Aqua_resilience.Sqlstate.Error}, with a
    stable SQLSTATE code:

    - 57014 — query canceled (deadline exceeded)
    - 53400 — configured limit exceeded (row governor)
    - 53000 — insufficient resources (item/fuel governors)
    - 08006 — connection failure (transient backend fault)
    - 08004 — connection rejected (circuit breaker open)
    - 08P01 — protocol violation (result decode error)
    - 54001 — statement too complex (data-service call cycle)
    - 42xxx / 0A000 / 21000 — translation errors by
      {!Aqua_translator.Errors.kind}, messages carrying the source
      position
    - 38000 — external routine exception (dynamic evaluation error)
    - XX000 — internal error (compile or generated-XQuery parse
      failure) *)

val classify : exn -> Aqua_resilience.Sqlstate.t option
(** The SQLSTATE-coded form of a pipeline exception, or [None] for
    exceptions that are not part of the driver taxonomy
    (e.g. [Invalid_argument], [Out_of_memory]). *)

val degradable : exn -> bool
(** Whether the failure came from inside the optimized evaluator (a
    dynamic error or an injected fault at an [xqeval.*] site) and the
    query deserves one more attempt on the unoptimized pipeline. *)

val wrap : (unit -> 'a) -> 'a
(** Run [f], re-raising any classifiable exception as
    {!Aqua_resilience.Sqlstate.Error}.  Unclassifiable exceptions
    propagate unchanged. *)
