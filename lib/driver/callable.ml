module Value = Aqua_relational.Value
module Schema = Aqua_relational.Schema
module Metadata = Aqua_dsp.Metadata
module Server = Aqua_dsp.Server
module Errors = Aqua_translator.Errors
module Outcol = Aqua_translator.Outcol
module Lexer = Aqua_sql.Lexer

type t = {
  conn : Connection.t;
  meta : Metadata.table;
  params : Aqua_xml.Item.sequence option array;
}

let fail fmt = Errors.raise_error Errors.Syntax fmt

(* {call schema.name(?, ?)} — braces optional, case-insensitive CALL *)
let parse_call_syntax src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error { message; _ } -> fail "%s" message
  in
  let idx = ref 0 in
  let peek () = toks.(!idx).Lexer.token in
  let advance () = if !idx < Array.length toks - 1 then incr idx in
  let eat_punct p =
    match peek () with
    | Lexer.Punct q when q = p ->
      advance ();
      true
    | _ -> false
  in
  let expect_punct p =
    if not (eat_punct p) then fail "expected '%s' in call syntax" p
  in
  (match peek () with
  | Lexer.Ident s when String.uppercase_ascii s = "CALL" -> advance ()
  | _ -> fail "expected CALL");
  let ident () =
    match peek () with
    | Lexer.Ident s | Lexer.Quoted_ident s ->
      advance ();
      s
    | t -> fail "expected a procedure name, found %s" (Lexer.token_to_string t)
  in
  let first = ident () in
  let schema, name =
    if eat_punct "." then (Some first, ident ()) else (None, first)
  in
  expect_punct "(";
  let nparams = ref 0 in
  if not (eat_punct ")") then begin
    let rec go () =
      expect_punct "?";
      incr nparams;
      if eat_punct "," then go () else expect_punct ")"
    in
    go ()
  end;
  (match peek () with
  | Lexer.Eof -> ()
  | t -> fail "unexpected %s after call" (Lexer.token_to_string t));
  (schema, name, !nparams)

let strip_braces src =
  let s = String.trim src in
  if String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}' then
    String.sub s 1 (String.length s - 2)
  else s

let prepare conn src =
  let schema, name, nparams = parse_call_syntax (strip_braces src) in
  let app = Connection.application conn in
  let candidates =
    List.filter
      (fun ((m : Metadata.table), (params : Aqua_dsp.Artifact.parameter list)) ->
        ignore params;
        String.uppercase_ascii m.Metadata.table = String.uppercase_ascii name
        &&
        match schema with
        | None -> true
        | Some s ->
          String.uppercase_ascii m.Metadata.schema = String.uppercase_ascii s)
      (Metadata.list_procedures app)
  in
  match candidates with
  | [] ->
    Errors.raise_error Errors.Unknown_table "no stored procedure named %s" name
  | _ :: _ :: _ ->
    Errors.raise_error Errors.Unknown_table
      "procedure name %s is ambiguous; qualify it with its schema" name
  | [ (meta, params) ] ->
    if List.length params <> nparams then
      Errors.raise_error Errors.Cardinality
        "procedure %s takes %d parameter(s), call provides %d" name
        (List.length params) nparams;
    { conn; meta; params = Array.make nparams None }

let parameter_count t = Array.length t.params
let procedure t = t.meta

let item_of_value (v : Value.t) : Aqua_xml.Item.sequence =
  match v with
  | Value.Null -> []
  | Value.Int i -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Integer i) ]
  | Value.Num f -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Decimal f) ]
  | Value.Str s -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.String s) ]
  | Value.Bool b -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Boolean b) ]
  | Value.Date d -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Date d) ]
  | Value.Time tm -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Time tm) ]
  | Value.Timestamp ts -> [ Aqua_xml.Item.Atomic (Aqua_xml.Atomic.Timestamp ts) ]

let set_value t i v =
  if i < 1 || i > Array.length t.params then
    invalid_arg (Printf.sprintf "parameter index %d out of range" i);
  t.params.(i - 1) <- Some (item_of_value v)

let set_int t i v = set_value t i (Value.Int v)
let set_string t i v = set_value t i (Value.Str v)
let set_float t i v = set_value t i (Value.Num v)
let set_null t i = set_value t i Value.Null

let execute_query t =
  let args =
    Array.to_list
      (Array.mapi
         (fun i p ->
           match p with
           | Some seq -> seq
           | None ->
             invalid_arg (Printf.sprintf "parameter %d is not bound" (i + 1)))
         t.params)
  in
  (* metadata schema is "path/dsname" (Figure 2) *)
  let path, ds_name =
    match String.rindex_opt t.meta.Metadata.schema '/' with
    | Some i ->
      ( String.sub t.meta.Metadata.schema 0 i,
        String.sub t.meta.Metadata.schema (i + 1)
          (String.length t.meta.Metadata.schema - i - 1) )
    | None -> (t.meta.Metadata.schema, t.meta.Metadata.schema)
  in
  let items =
    Server.call_function
      (Connection.server t.conn)
      ~path ~name:ds_name ~fn:t.meta.Metadata.table args
  in
  let cols =
    List.map
      (fun (c : Schema.column) ->
        Outcol.make ~label:c.Schema.name ~element:c.Schema.name ~ty:c.Schema.ty
          ~nullable:c.Schema.nullable)
      t.meta.Metadata.columns
  in
  Result_set.of_xml_sequence cols items
