module Value = Aqua_relational.Value
module Rowset = Aqua_relational.Rowset
module Outcol = Aqua_translator.Outcol
module Node = Aqua_xml.Node
module Item = Aqua_xml.Item

type t = {
  cols : Outcol.t list;
  mutable rows : Value.t array list;  (* remaining rows *)
  mutable current : Value.t array option;
  mutable last_was_null : bool;
}

let columns t = t.cols
let column_count t = List.length t.cols

let column_label t i =
  match List.nth_opt t.cols (i - 1) with
  | Some c -> c.Outcol.label
  | None -> invalid_arg (Printf.sprintf "column index %d out of range" i)

let of_rows cols rows =
  let module T = Aqua_core.Telemetry in
  if T.enabled () then T.add T.c_resultset_rows (List.length rows);
  Aqua_resilience.Budget.tick_rows (List.length rows);
  { cols; rows; current = None; last_was_null = false }

let row_count t = List.length t.rows

let next t =
  match t.rows with
  | [] ->
    t.current <- None;
    false
  | row :: rest ->
    t.rows <- rest;
    t.current <- Some row;
    true

let get_value t i =
  match t.current with
  | None -> invalid_arg "result set cursor is not positioned on a row"
  | Some row ->
    if i < 1 || i > Array.length row then
      invalid_arg (Printf.sprintf "column index %d out of range" i)
    else begin
      let v = row.(i - 1) in
      t.last_was_null <- Value.is_null v;
      v
    end

let get_value_by_label t label =
  let rec index i = function
    | [] -> invalid_arg (Printf.sprintf "no column labelled %s" label)
    | (c : Outcol.t) :: rest ->
      if String.uppercase_ascii c.Outcol.label = String.uppercase_ascii label
      then i
      else index (i + 1) rest
  in
  get_value t (index 1 t.cols)

let get_int t i =
  match get_value t i with
  | Value.Null -> None
  | Value.Int n -> Some n
  | Value.Num f -> Some (int_of_float f)
  | v -> invalid_arg ("not an integer column: " ^ Value.to_display v)

let get_string t i =
  match get_value t i with
  | Value.Null -> None
  | v -> Some (Value.to_string v)

let get_float t i =
  match get_value t i with
  | Value.Null -> None
  | Value.Int n -> Some (float_of_int n)
  | Value.Num f -> Some f
  | v -> invalid_arg ("not a numeric column: " ^ Value.to_display v)

let get_bool t i =
  match get_value t i with
  | Value.Null -> None
  | Value.Bool b -> Some b
  | v -> invalid_arg ("not a boolean column: " ^ Value.to_display v)

let was_null t = t.last_was_null

let to_rowset t =
  Rowset.make (Outcol.to_schema t.cols) t.rows

(* ------------------------------------------------------------------ *)
(* XML transport decoding                                             *)

exception Decode_error of string

let record_to_row cols (record : Node.element) : Value.t array =
  let children = Node.children_elements (Node.Element record) in
  Array.of_list
    (List.map
       (fun (c : Outcol.t) ->
         match
           List.find_opt
             (fun (e : Node.element) ->
               Node.local_name e.Node.name = c.Outcol.element)
             children
         with
         | None -> Value.Null
         | Some e ->
           Value.of_string c.Outcol.ty (Node.string_value (Node.Element e)))
       cols)

let of_xml_sequence cols (seq : Item.sequence) =
  let records =
    List.concat_map
      (fun item ->
        match item with
        | Item.Node (Node.Element e)
          when Node.local_name e.Node.name = "RECORDSET" ->
          List.filter
            (fun (r : Node.element) -> Node.local_name r.Node.name = "RECORD")
            (Node.children_elements (Node.Element e))
        | Item.Node (Node.Element e) ->
          (* a RECORD, or any flat row element (stored-procedure
             results come back as the function's own row elements) *)
          [ e ]
        | Item.Node (Node.Text _) -> []
        | Item.Atomic _ -> raise (Decode_error "unexpected atomic result item"))
      seq
  in
  of_rows cols (List.map (record_to_row cols) records)

let of_xml_text cols text =
  Aqua_resilience.Failpoint.hit "driver.decode";
  if String.trim text = "" then of_rows cols []
  else
    let nodes =
      try Aqua_xml.Parse.nodes_of_string text
      with Aqua_xml.Parse.Parse_error { message; _ } ->
        raise (Decode_error ("malformed XML result: " ^ message))
    in
    of_xml_sequence cols (List.map Item.node nodes)

(* ------------------------------------------------------------------ *)
(* Text transport decoding (paper section 4)                          *)

let of_encoded_text cols text =
  Aqua_resilience.Failpoint.hit "driver.decode";
  let decoded =
    try Aqua_translator.Wrapper.decode ~columns:cols text
    with Aqua_translator.Wrapper.Decode_error m -> raise (Decode_error m)
  in
  let rows =
    List.map
      (fun cells ->
        Array.of_list
          (List.map2
             (fun (c : Outcol.t) cell ->
               match cell with
               | None -> Value.Null
               | Some lexical -> Value.of_string c.Outcol.ty lexical)
             cols cells))
      decoded
  in
  of_rows cols rows
