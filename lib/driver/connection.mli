(** The JDBC-style driver connection (paper Figure 1): SQL in, result
    sets out, against an in-process DSP server.

    Both result transports of section 4 are implemented and the wire
    boundary is simulated honestly — the XML transport serializes the
    server's result and re-parses it client-side; the text transport
    executes the string-join wrapper query and decodes the delimited
    text — so their relative cost can be benchmarked (experiment P1). *)

type t

type transport =
  | Xml   (** materialize XML, parse client-side *)
  | Text  (** section-4 delimiter-encoded text *)

(** The bounded LRU used for the translation cache, exposed for direct
    testing.  Stamps are compacted (preserving recency order) when the
    internal clock reaches [stamp_limit], so a long-lived connection
    can never overflow the counter. *)
module Lru : sig
  type 'a t

  val create : ?stamp_limit:int -> enabled:bool -> int -> 'a t
  (** [create ~enabled capacity]; [stamp_limit] defaults to
      [max_int - 1]. *)

  val find : 'a t -> string -> 'a option
  val add : 'a t -> string -> 'a -> unit
  val length : 'a t -> int
  val clock : 'a t -> int
  val clear : 'a t -> unit
end

val connect :
  ?transport:transport ->
  ?metadata_cache:bool ->
  ?translation_cache:bool ->
  ?optimize:bool ->
  ?vectorize:bool ->
  ?columnar:bool ->
  ?scan_cache:bool ->
  ?limits:Aqua_resilience.Budget.limits ->
  Aqua_dsp.Artifact.application ->
  t
(** [transport] defaults to [Text] (the shipping configuration);
    [metadata_cache] defaults to [true].  [translation_cache] (default
    [true]) keeps a bounded LRU (128 entries) of translated queries
    keyed by SQL text, so re-issued ad-hoc SQL skips the three-stage
    translation.  [optimize] (default [true]) enables the XQuery-side
    optimizer (predicate pushdown, hash equi-joins, streaming
    pipeline) on the server this connection talks to; [vectorize]
    (default [true]) additionally executes optimized plans through the
    batched FLWOR engine, and [columnar] (default
    {!Aqua_xqeval.Batch.columnar}) selects its struct-of-arrays batch
    layout (required-column pruning, vectorized aggregation kernels) —
    the graceful-degradation fallback always reruns with all three
    off, so a crash in any suspect falls back to the plain
    row-at-a-time interpreter.  [scan_cache]
    (default [true]) enables scan materialization: the optimizer's
    per-plan scan-sharing hoist plus a revision-aware
    {!Aqua_dsp.Scan_cache} shared by the optimized server and its
    unoptimized fallback twin, so repeated parameterless data-service
    scans are fetched once across queries and a fallback rerun reuses
    the scans the crashed run materialized.  [limits] (default
    {!Aqua_resilience.Budget.no_limits}) is the per-query budget
    installed around every [execute_query]. *)

val transport : t -> transport
val set_transport : t -> transport -> unit
val server : t -> Aqua_dsp.Server.t
val application : t -> Aqua_dsp.Artifact.application
val translator_env : t -> Aqua_translator.Semantic.env
val metadata_cache : t -> Aqua_dsp.Metadata.Cache.t

val limits : t -> Aqua_resilience.Budget.limits
val set_limits : t -> Aqua_resilience.Budget.limits -> unit
(** The per-query budget installed around every [execute_query] /
    [Prepared.execute_query] on this connection. *)

val scan_cache : t -> Aqua_dsp.Scan_cache.t
(** The materialized scan cache shared by this connection's optimized
    and fallback servers (disabled when connected with
    [~scan_cache:false]). *)

val invalidate : t -> unit
(** Flush the translation cache, the metadata cache and the
    materialized scan cache.  Also happens automatically when the
    application's {!Aqua_dsp.Artifact.revision} changes (a service
    added after connect), so stale translations are never served.  The
    scan cache additionally watches {!Aqua_dsp.Artifact.data_revision}
    on its own, so row inserts flush materialized scans without
    touching the metadata-only caches. *)

val translate : t -> string -> Aqua_translator.Translator.t
(** Translation only (no execution), served from the translation cache
    when enabled.
    @raise Aqua_translator.Errors.Error *)

val translation_cache_size : t -> int
(** Number of cached translations currently held. *)

val translation_cache_clock : t -> int
(** Current LRU stamp counter (testing aid). *)

val clear_translation_cache : t -> unit

val execute_query :
  ?limits:Aqua_resilience.Budget.limits -> t -> string -> Result_set.t
(** Translate, execute on the server, decode through the connection's
    transport — the full pipeline, run under the connection's budget
    (or [limits], when given — the session pool passes each session's
    own budget here) with every failure mapped through {!Sql_error}.
    If the optimized evaluator crashes mid-query, the driver retries
    once on the unoptimized server (graceful degradation, counted as
    [driver.fallbacks_unoptimized] in telemetry).
    @raise Aqua_resilience.Sqlstate.Error with a stable SQLSTATE code
    (see {!Sql_error}) on any classified failure *)

val execute_concurrent :
  ?domains:int -> t -> string list -> (Result_set.t, exn) result list
(** Execute a batch of statements across [domains] OCaml domains (default
    [min (Mcore.num_cores ()) (length sqls)], at least 1) all sharing
    this connection — one translation cache, one metadata cache, one
    materialized scan cache.  Statements are dealt round-robin over the
    domains; the results list is in input order, each statement's
    outcome captured independently so one failure does not mask the
    rest.  On a pre-5.0 build the domains shim runs the workers
    sequentially: same results, no parallelism. *)

(** Prepared statements with ['?'] parameters. *)
module Prepared : sig
  type stmt

  val prepare : t -> string -> stmt
  (** Translates once; execution re-binds parameters. *)

  val parameter_count : stmt -> int
  val set_value : stmt -> int -> Aqua_relational.Value.t -> unit
  val set_int : stmt -> int -> int -> unit
  val set_string : stmt -> int -> string -> unit
  val set_float : stmt -> int -> float -> unit
  val set_null : stmt -> int -> unit
  val clear_parameters : stmt -> unit

  val execute_query : stmt -> Result_set.t
  (** @raise Invalid_argument if a parameter is unbound. *)
end

(** Catalog metadata through the Figure-2 artifact mapping. *)
module Database_metadata : sig
  val catalog : t -> string
  val schemas : t -> string list
  val tables : t -> Aqua_dsp.Metadata.table list

  val columns :
    t -> table:string -> Aqua_relational.Schema.column list option

  val procedures :
    t -> (Aqua_dsp.Metadata.table * Aqua_dsp.Artifact.parameter list) list
  (** Parameterized data-service functions, exposed as callable
      stored procedures. *)
end
