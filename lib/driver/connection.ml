module Value = Aqua_relational.Value
module Atomic = Aqua_xml.Atomic
module Item = Aqua_xml.Item
module Metadata = Aqua_dsp.Metadata
module Server = Aqua_dsp.Server
module Artifact = Aqua_dsp.Artifact
module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Budget = Aqua_resilience.Budget
module Mcore = Aqua_multicore.Mcore
module Failpoint = Aqua_resilience.Failpoint
module A = Aqua_sql.Ast

type transport = Xml | Text

(* Bounded LRU over translated queries, keyed by SQL text.  The
   JDBC-reporting workload of the paper re-issues identical ad-hoc SQL
   constantly; caching skips the parse/semantic/generate stages.  LRU
   order is kept in a doubly-linked-list-free way: a use counter per
   entry, evicting the least recently used entry when full.  The
   counter is renumbered (compacted to 0..n-1, preserving order) when
   it reaches [stamp_limit], so a long-lived connection can never
   overflow it. *)
module Lru = struct
  type 'a entry = { value : 'a; mutable stamp : int }

  type 'a t = {
    table : (string, 'a entry) Hashtbl.t;
    capacity : int;
    stamp_limit : int;
    lock : Mcore.Mutex.t;  (* guards table, clock and every stamp *)
    mutable clock : int;
    mutable enabled : bool;
  }

  let create ?(stamp_limit = max_int - 1) ~enabled capacity =
    {
      table = Hashtbl.create 64;
      capacity;
      stamp_limit;
      lock = Mcore.Mutex.create ();
      clock = 0;
      enabled;
    }

  (* Reassign stamps 0..n-1 in current LRU order; recency is all the
     eviction scan looks at, so the compaction is invisible. *)
  let renumber t =
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
    let entries =
      List.sort (fun a b -> compare a.stamp b.stamp) entries
    in
    List.iteri (fun i e -> e.stamp <- i) entries;
    t.clock <- List.length entries

  let tick t =
    if t.clock >= t.stamp_limit then renumber t;
    t.clock <- t.clock + 1;
    t.clock

  let find t key =
    if not t.enabled then None
    else
      Mcore.Mutex.protect t.lock @@ fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        e.stamp <- tick t;
        Some e.value
      | None -> None

  let evict_lru t =
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, stamp) when stamp <= e.stamp -> ()
        | _ -> victim := Some (k, e.stamp))
      t.table;
    match !victim with
    | Some (k, _) -> Hashtbl.remove t.table k
    | None -> ()

  let add t key value =
    if t.enabled then
      Mcore.Mutex.protect t.lock @@ fun () ->
      if not (Hashtbl.mem t.table key) then begin
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        Hashtbl.add t.table key { value; stamp = tick t }
      end

  let length t = Mcore.Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
  let clock t = Mcore.Mutex.protect t.lock (fun () -> t.clock)
  let clear t = Mcore.Mutex.protect t.lock (fun () -> Hashtbl.reset t.table)
end

let translation_cache_capacity = 128

type t = {
  app : Artifact.application;
  srv : Server.t;
  srv_unopt : Server.t;
      (* same application, optimizer off: the graceful-degradation
         target when an optimized plan crashes mid-evaluation *)
  scans : Aqua_dsp.Scan_cache.t;
      (* ONE materialized scan cache shared by both servers: a
         fallback rerun reuses the scans the crashed optimized run
         already fetched *)
  cache : Metadata.Cache.t;
  translations : Translator.t Lru.t;
  env : Semantic.env;
  optimize : bool;
  rev_lock : Mcore.Mutex.t;
      (* serializes [revalidate]/[invalidate]: exactly one domain
         performs the three-cache flush for a given revision bump *)
  mutable limits : Budget.limits;
  mutable transport : transport;
  mutable seen_revision : int;
}

let connect ?(transport = Text) ?(metadata_cache = true)
    ?(translation_cache = true) ?(optimize = true) ?(vectorize = true)
    ?(columnar = Aqua_xqeval.Batch.columnar ())
    ?(scan_cache = true) ?(limits = Budget.no_limits) app =
  let cache = Metadata.Cache.create ~enabled:metadata_cache app in
  let scans = Aqua_dsp.Scan_cache.create ~enabled:scan_cache app in
  {
    app;
    srv = Server.create ~optimize ~vectorize ~columnar ~cache:scans app;
    (* the degradation target drops ALL suspects: the optimizer, the
       batch engine and the columnar layout — a rerun after a crash
       must not share code with the plan that crashed *)
    srv_unopt =
      Server.create ~optimize:false ~vectorize:false ~columnar:false
        ~cache:scans app;
    scans;
    cache;
    translations = Lru.create ~enabled:translation_cache translation_cache_capacity;
    env = Semantic.env_of_cache cache;
    optimize;
    rev_lock = Mcore.Mutex.create ();
    limits;
    transport;
    seen_revision = Artifact.revision app;
  }

let transport t = t.transport
let set_transport t tr = t.transport <- tr
let server t = t.srv
let application t = t.app
let translator_env t = t.env
let metadata_cache t = t.cache
let limits t = t.limits
let set_limits t l = t.limits <- l
let scan_cache t = t.scans

(* A metadata change (a service added after connect) silently
   invalidates every cached translation and catalog answer; compare
   the application's revision on each use and flush when stale. *)
let revalidate t =
  Mcore.Mutex.protect t.rev_lock @@ fun () ->
  let rev = Artifact.revision t.app in
  if rev <> t.seen_revision then begin
    Lru.clear t.translations;
    Metadata.Cache.clear t.cache;
    (* the scan cache also self-checks the revision on every touch;
       flushing here keeps the two invalidation paths in lockstep *)
    Aqua_dsp.Scan_cache.flush t.scans;
    t.seen_revision <- rev
  end

let invalidate t =
  Mcore.Mutex.protect t.rev_lock @@ fun () ->
  Lru.clear t.translations;
  Metadata.Cache.clear t.cache;
  Aqua_dsp.Scan_cache.flush t.scans;
  t.seen_revision <- Artifact.revision t.app

let translate_cached t sql =
  let module T = Aqua_core.Telemetry in
  revalidate t;
  Failpoint.hit "driver.translate";
  match Lru.find t.translations sql with
  | Some tr ->
    T.incr T.c_cache_hits;
    (tr, true)
  | None ->
    T.incr T.c_cache_misses;
    let tr = Translator.translate t.env sql in
    Lru.add t.translations sql tr;
    (tr, false)

let translate t sql = fst (translate_cached t sql)

let translation_cache_size t = Lru.length t.translations
let translation_cache_clock t = Lru.clock t.translations
let clear_translation_cache t = Lru.clear t.translations

(* --- per-statement stage clocks and observation -------------------- *)

(* Accumulators for the three driver-visible stages of one statement.
   Accumulated (not assigned) so a fallback rerun adds its second
   execute/decode pass to the same statement's totals. *)
type stages = {
  mutable translate_ns : int64;
  mutable execute_ns : int64;
  mutable decode_ns : int64;
  mutable cache_hit : bool;
}

let fresh_stages () =
  { translate_ns = 0L; execute_ns = 0L; decode_ns = 0L; cache_hit = false }

(* Time [f], crediting the (0-clamped) elapsed time via [credit] even
   when [f] raises — a failing stage's cost is still its cost. *)
let timed credit f =
  let module T = Aqua_core.Telemetry in
  let t0 = T.now_ns () in
  let finish () =
    let d = Int64.sub (T.now_ns ()) t0 in
    credit (if Int64.compare d 0L < 0 then 0L else d)
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let run_on conn srv ~stages ~bindings (tr : Translator.t) =
  let exec d = stages.execute_ns <- Int64.add stages.execute_ns d in
  let dec d = stages.decode_ns <- Int64.add stages.decode_ns d in
  match conn.transport with
  | Xml ->
    (* server executes, serializes; the client parses the text *)
    let text =
      timed exec (fun () ->
          Server.execute_to_xml ~bindings srv tr.Translator.xquery)
    in
    timed dec (fun () -> Result_set.of_xml_text tr.Translator.columns text)
  | Text ->
    let wrapped = Translator.for_text_transport tr in
    let text =
      timed exec (fun () -> Server.execute_to_text ~bindings srv wrapped)
    in
    timed dec (fun () -> Result_set.of_encoded_text tr.Translator.columns text)

let run_translated conn ?(bindings = []) ~stages (tr : Translator.t) =
  if not conn.optimize then run_on conn conn.srv ~stages ~bindings tr
  else
    try run_on conn conn.srv ~stages ~bindings tr
    with e when Sql_error.degradable e ->
      let module T = Aqua_core.Telemetry in
      if T.enabled () then begin
        T.incr T.c_fallbacks_unoptimized;
        T.trace_event "fallback"
          [ ("reason", Printexc.to_string e); ("plan", "unoptimized") ]
      end;
      run_on conn conn.srv_unopt ~stages ~bindings tr

module Stats = Aqua_obs.Stats
module Recorder = Aqua_obs.Recorder
module Fingerprint = Aqua_obs.Fingerprint

(* Run one statement under observation: feed the per-fingerprint stats
   registry and the flight recorder, tagging the event with the
   resilience outcome (deltas of the telemetry counters across the
   call — meaningful when telemetry is enabled, zero otherwise).  When
   a SQLSTATE error escapes, the recorder ring is dumped to its sink
   so the operator sees what the last statements actually did. *)
let observe_run ~digest ~shape ~stages ~plan run =
  let module T = Aqua_core.Telemetry in
  let start = T.now_ns () in
  let b_retries = T.value T.c_retry_attempts in
  let b_fallbacks = T.value T.c_fallbacks_unoptimized in
  let b_faults = T.value T.c_faults_injected in
  let b_rejections = T.value T.c_breaker_rejections in
  let finish ~rows outcome error =
    let dur = Int64.sub (T.now_ns ()) start in
    let dur = if Int64.compare dur 0L < 0 then 0L else dur in
    let resilience =
      {
        Recorder.retries = T.value T.c_retry_attempts - b_retries;
        fallbacks = T.value T.c_fallbacks_unoptimized - b_fallbacks;
        faults = T.value T.c_faults_injected - b_faults;
        breaker_rejections = T.value T.c_breaker_rejections - b_rejections;
      }
    in
    let plan =
      if resilience.Recorder.fallbacks > 0 then "fallback-unoptimized"
      else plan
    in
    Stats.observe ~digest ~shape ~translate_ns:stages.translate_ns
      ~execute_ns:stages.execute_ns ~decode_ns:stages.decode_ns ~rows
      ~cache_hit:stages.cache_hit ?error ~total_ns:dur ();
    Recorder.record ~fingerprint:digest ~shape ~start_ns:start ~dur_ns:dur
      ~rows ~cache_hit:stages.cache_hit ~plan ~resilience outcome
  in
  match run () with
  | rs ->
    finish ~rows:(Result_set.row_count rs) Recorder.Done None;
    rs
  | exception (Aqua_resilience.Sqlstate.Error e as ex) ->
    finish ~rows:0 (Recorder.Failed e.Aqua_resilience.Sqlstate.sqlstate)
      (Some e.Aqua_resilience.Sqlstate.sqlstate);
    ignore (Recorder.dump_to_sink ~reason:e.Aqua_resilience.Sqlstate.sqlstate ());
    raise ex

let observing () = Stats.enabled () || Recorder.enabled ()

let execute_query ?limits t sql =
  let stages = fresh_stages () in
  let limits = match limits with Some l -> l | None -> t.limits in
  let run () =
    Sql_error.wrap @@ fun () ->
    Budget.with_budget limits @@ fun () ->
    let tr =
      timed
        (fun d -> stages.translate_ns <- Int64.add stages.translate_ns d)
        (fun () ->
          let tr, hit = translate_cached t sql in
          stages.cache_hit <- hit;
          tr)
    in
    run_translated t ~bindings:[] ~stages tr
  in
  if not (observing ()) then run ()
  else
    let digest, shape = Fingerprint.fingerprint sql in
    let plan = if t.optimize then "optimized" else "unoptimized" in
    observe_run ~digest ~shape ~stages ~plan run

(* Concurrent entry point: execute a batch of statements across
   [domains] domains sharing THIS connection (its translation, metadata
   and scan caches).  Statements are dealt round-robin; results come
   back in input order, each independently an [Ok result_set] or the
   [Error exn] that statement raised (one failing statement must not
   mask its siblings' results).  On a single-core build the shim runs
   the domains sequentially, so the function is portable — merely not
   parallel — on 4.14. *)
let execute_concurrent ?domains t sqls =
  let stmts = Array.of_list sqls in
  let n = Array.length stmts in
  let d =
    match domains with
    | Some d -> max 1 (min d (max 1 n))
    | None -> max 1 (min (Mcore.num_cores ()) n)
  in
  let out = Array.make n (Error Not_found) in
  let worker w () =
    let rec go i =
      if i < n then begin
        (out.(i) <-
           (match execute_query t stmts.(i) with
           | rs -> Ok rs
           | exception e -> Error e));
        go (i + d)
      end
    in
    go w
  in
  (* each worker writes a disjoint stride of [out], so the only shared
     state is the connection itself *)
  let outcomes = Mcore.Domains.parallel (List.init d (fun w -> worker w)) in
  List.iter (function Ok () -> () | Error e -> raise e) outcomes;
  Array.to_list out

(* ------------------------------------------------------------------ *)

module Prepared = struct
  (* Preparation compiles both transport variants of the translated
     query once (the server's compiled-query path); execution just
     re-binds parameters. *)
  type stmt = {
    conn : t;
    translated : Translator.t;
    compiled_xml : Server.prepared;
    compiled_text : Server.prepared;
    params : Item.sequence option array;
    fp_digest : string;
    fp_shape : string;
  }

  let count_params (s : A.statement) =
    (* parameters are numbered consecutively by the parser *)
    let rec expr_max acc (e : A.expr) =
      A.fold_expr
        (fun acc e ->
          let acc =
            match e with A.Param n -> max acc n | _ -> acc
          in
          List.fold_left query_max acc (A.subqueries_of_expr e))
        acc e
    and spec_max acc (spec : A.query_spec) =
      let acc =
        List.fold_left
          (fun acc item ->
            match item with
            | A.Expr_item (e, _) -> expr_max acc e
            | A.Star | A.Table_star _ -> acc)
          acc spec.A.select
      in
      let acc = List.fold_left table_ref_max acc spec.A.from in
      let acc =
        match spec.A.where with Some w -> expr_max acc w | None -> acc
      in
      let acc = List.fold_left expr_max acc spec.A.group_by in
      match spec.A.having with Some h -> expr_max acc h | None -> acc
    and table_ref_max acc (tr : A.table_ref) =
      match tr with
      | A.Primary (A.Table_ref_name _) -> acc
      | A.Primary (A.Derived { query; _ }) -> query_max acc query
      | A.Join { left; right; cond; _ } ->
        let acc = table_ref_max acc left in
        let acc = table_ref_max acc right in
        (match cond with Some c -> expr_max acc c | None -> acc)
    and query_max acc (q : A.query) =
      match q with
      | A.Spec spec -> spec_max acc spec
      | A.Set { left; right; _ } -> query_max (query_max acc left) right
    in
    let acc = query_max 0 s.A.body in
    List.fold_left
      (fun acc (o : A.order_item) ->
        match o.A.key with
        | A.Ord_expr e -> expr_max acc e
        | A.Ord_position _ -> acc)
      acc s.A.order_by

  let prepare conn sql =
    let translated = translate conn sql in
    let n = count_params translated.Translator.statement in
    let vars = List.init n (fun i -> Printf.sprintf "param%d" (i + 1)) in
    let compiled_xml =
      Server.prepare ~vars conn.srv translated.Translator.xquery
    in
    let compiled_text =
      Server.prepare ~vars conn.srv (Translator.for_text_transport translated)
    in
    let fp_digest, fp_shape = Fingerprint.fingerprint sql in
    {
      conn;
      translated;
      compiled_xml;
      compiled_text;
      params = Array.make n None;
      fp_digest;
      fp_shape;
    }

  let parameter_count stmt = Array.length stmt.params

  let item_of_value (v : Value.t) : Item.sequence =
    match v with
    | Value.Null -> []
    | Value.Int i -> [ Item.Atomic (Atomic.Integer i) ]
    | Value.Num f -> [ Item.Atomic (Atomic.Decimal f) ]
    | Value.Str s -> [ Item.Atomic (Atomic.String s) ]
    | Value.Bool b -> [ Item.Atomic (Atomic.Boolean b) ]
    | Value.Date d -> [ Item.Atomic (Atomic.Date d) ]
    | Value.Time tm -> [ Item.Atomic (Atomic.Time tm) ]
    | Value.Timestamp ts -> [ Item.Atomic (Atomic.Timestamp ts) ]

  let set_value stmt i v =
    if i < 1 || i > Array.length stmt.params then
      invalid_arg (Printf.sprintf "parameter index %d out of range" i);
    stmt.params.(i - 1) <- Some (item_of_value v)

  let set_int stmt i v = set_value stmt i (Value.Int v)
  let set_string stmt i v = set_value stmt i (Value.Str v)
  let set_float stmt i v = set_value stmt i (Value.Num v)
  let set_null stmt i = set_value stmt i Value.Null

  let clear_parameters stmt = Array.fill stmt.params 0 (Array.length stmt.params) None

  let execute_query stmt =
    let bindings =
      Array.to_list
        (Array.mapi
           (fun i p ->
             match p with
             | Some seq -> (Printf.sprintf "param%d" (i + 1), seq)
             | None ->
               invalid_arg
                 (Printf.sprintf "parameter %d is not bound" (i + 1)))
           stmt.params)
    in
    let columns = stmt.translated.Translator.columns in
    let stages = fresh_stages () in
    (* translation happened at prepare time: a prepared execution is
       the cache-hit case by construction *)
    stages.cache_hit <- true;
    let exec d = stages.execute_ns <- Int64.add stages.execute_ns d in
    let dec d = stages.decode_ns <- Int64.add stages.decode_ns d in
    let run () =
      Sql_error.wrap @@ fun () ->
      Budget.with_budget stmt.conn.limits @@ fun () ->
      match stmt.conn.transport with
      | Xml ->
        let text =
          timed exec (fun () ->
              Aqua_xml.Serialize.sequence_to_string
                (Server.execute_prepared ~bindings stmt.compiled_xml))
        in
        timed dec (fun () -> Result_set.of_xml_text columns text)
      | Text ->
        let text =
          timed exec (fun () ->
              let buf = Buffer.create 256 in
              List.iter
                (fun item ->
                  match item with
                  | Item.Atomic a -> Buffer.add_string buf (Atomic.to_lexical a)
                  | Item.Node _ -> invalid_arg "text transport returned a node")
                (Server.execute_prepared ~bindings stmt.compiled_text);
              Buffer.contents buf)
        in
        timed dec (fun () -> Result_set.of_encoded_text columns text)
    in
    if not (observing ()) then run ()
    else
      observe_run ~digest:stmt.fp_digest ~shape:stmt.fp_shape ~stages
        ~plan:"prepared" run
end

(* ------------------------------------------------------------------ *)

module Database_metadata = struct
  let catalog t = t.app.Artifact.app_name

  let schemas t =
    revalidate t;
    List.sort_uniq String.compare
      (List.map
         (fun (m : Metadata.table) -> m.Metadata.schema)
         (Metadata.list_tables t.app))

  let tables t =
    revalidate t;
    Metadata.list_tables t.app

  let columns t ~table =
    revalidate t;
    match Metadata.lookup t.app table with
    | Ok m -> Some m.Metadata.columns
    | Error _ -> None

  let procedures t =
    revalidate t;
    Metadata.list_procedures t.app
end
