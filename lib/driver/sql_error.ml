(* The driver boundary's error taxonomy: every failure mode of the
   translate/execute/decode pipeline is mapped to one SQLSTATE-coded
   error, so a JDBC-style client sees stable codes instead of a zoo of
   internal exceptions. *)

module Sqlstate = Aqua_resilience.Sqlstate
module Budget = Aqua_resilience.Budget
module Breaker = Aqua_resilience.Breaker
module Failpoint = Aqua_resilience.Failpoint
module Errors = Aqua_translator.Errors

let classify : exn -> Sqlstate.t option = function
  | Sqlstate.Error e -> Some e
  | Budget.Exceeded v -> Some (Budget.to_sqlstate v)
  | Breaker.Open_circuit { name } ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.connection_rejected
         ~condition:"circuit breaker open"
         (Printf.sprintf
            "data-service function %s is failing; circuit breaker is open"
            name))
  | Failpoint.Injected { site; hit } ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.connection_failure
         ~condition:"transient backend failure"
         (Printf.sprintf "injected fault at %s (hit %d)" site hit))
  | Errors.Error e ->
    (* the source position (line/column) travels with the
       driver-facing message *)
    let message =
      match e.Errors.pos with
      | Some p when p.Aqua_sql.Ast.line > 0 ->
        Printf.sprintf "at line %d, column %d: %s" p.Aqua_sql.Ast.line
          p.Aqua_sql.Ast.col e.Errors.message
      | _ -> e.Errors.message
    in
    Some
      (Sqlstate.make ~sqlstate:(Errors.sqlstate e.Errors.kind)
         ~condition:(Errors.kind_to_string e.Errors.kind)
         message)
  | Aqua_xqeval.Error.Dynamic_error msg ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.external_routine_exception
         ~condition:"dynamic evaluation error" msg)
  | Result_set.Decode_error msg ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.protocol_violation
         ~condition:"result decode error" msg)
  | Aqua_xqeval.Compile.Compile_error msg ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.internal_error
         ~condition:"query compilation error" msg)
  | Aqua_xquery.Parser.Parse_error { offset; message } ->
    Some
      (Sqlstate.make ~sqlstate:Sqlstate.internal_error
         ~condition:"generated XQuery parse error"
         (Printf.sprintf "%s (offset %d)" message offset))
  | _ -> None

(* Worth one more attempt on the unoptimized evaluator: a crash inside
   the optimized pipeline (a dynamic error, or an injected fault at an
   xqeval site).  The optimizer is the riskier code path and the naive
   pipeline is the differential oracle. *)
let degradable = function
  | Aqua_xqeval.Error.Dynamic_error _ -> true
  | Failpoint.Injected { site; _ } ->
    String.length site >= 6 && String.sub site 0 6 = "xqeval"
  | _ -> false

let wrap f =
  try f () with
  | Sqlstate.Error _ as e -> raise e
  | e -> (
    match classify e with
    | Some s -> raise (Sqlstate.Error s)
    | None -> raise e)
