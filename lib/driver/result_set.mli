(** JDBC-style result sets: the driver's client-facing row container,
    produced by decoding either the XML transport or the text-encoded
    transport of paper section 4. *)

type t

val columns : t -> Aqua_translator.Outcol.t list
val column_count : t -> int

val column_label : t -> int -> string
(** 1-based, like JDBC. *)

val row_count : t -> int
(** Rows ahead of the cursor — the full decoded row count on a fresh
    result set (rows are materialized at decode time). *)

val next : t -> bool
(** Advances the cursor; [false] past the last row. *)

val get_value : t -> int -> Aqua_relational.Value.t
(** 1-based column index; [Value.Null] for SQL NULL.
    @raise Invalid_argument when the cursor is not on a row or the
    index is out of range. *)

val get_value_by_label : t -> string -> Aqua_relational.Value.t

val get_int : t -> int -> int option
val get_string : t -> int -> string option
val get_float : t -> int -> float option
val get_bool : t -> int -> bool option

val was_null : t -> bool
(** Whether the last [get_*] read a SQL NULL. *)

val to_rowset : t -> Aqua_relational.Rowset.t
(** Materializes all remaining rows (cursor-position independent). *)

exception Decode_error of string
(** A malformed wire result (either transport); surfaces at the driver
    boundary as SQLSTATE 08P01 (protocol violation). *)

val of_rows :
  Aqua_translator.Outcol.t list -> Aqua_relational.Value.t array list -> t

val of_xml_sequence :
  Aqua_translator.Outcol.t list -> Aqua_xml.Item.sequence -> t
(** Decodes a RECORDSET/RECORD item sequence (XML transport). *)

val of_xml_text : Aqua_translator.Outcol.t list -> string -> t
(** Parses serialized XML then decodes — the full client-side cost of
    the XML transport. *)

val of_encoded_text : Aqua_translator.Outcol.t list -> string -> t
(** Decodes the delimiter-separated text transport (paper section 4). *)
