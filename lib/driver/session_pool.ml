(* Bounded session pool over one shared connection.

   The paper's serving topology is many JDBC clients multiplexed onto
   one DSP application; this module reproduces the admission layer: a
   fixed number of sessions, each carrying its own per-query budget, is
   handed out to callers (domains).  A borrow when every session is out
   either blocks on a condition variable until a release broadcasts (a
   waiter burns no CPU while parked) or fails fast with SQLSTATE 53300
   ("too many connections"), the same taxonomy the resource governors
   use, so legacy tools see a typed, bounded error instead of an
   unbounded queue.  The stdlib condition has no timed wait, so a
   waiter's deadline is checked at every wakeup: expiry is observed at
   the next release, which is always forthcoming because sessions are
   held only for the duration of one budget-bounded query.  On the
   pre-5.0 shim [Condition.wait] returns immediately, degrading the
   same loop to the previous bounded spin (which honors the deadline
   exactly).

   The pool serializes nothing but the borrow/release bookkeeping:
   query execution runs outside the lock, on the shared (domain-safe)
   [Connection.t]. *)

module Budget = Aqua_resilience.Budget
module Sqlstate = Aqua_resilience.Sqlstate
module Mcore = Aqua_multicore.Mcore
module T = Aqua_core.Telemetry

type session = {
  id : int;
  mutable limits : Budget.limits;
  mutable queries : int;  (** statements executed under this session *)
}

type t = {
  conn : Connection.t;
  capacity : int;
  lock : Mcore.Mutex.t;  (* guards free/in_use and the stats below *)
  cond : Mcore.Condition.t;  (* broadcast on every release *)
  mutable free : session list;
  mutable in_use : int;
  mutable borrows : int;
  mutable rejections : int;
  mutable waits : int;
  mutable peak_in_use : int;
}

type stats = {
  capacity : int;
  in_use : int;
  borrows : int;
  rejections : int;
  waits : int;
  peak_in_use : int;
}

let create ?(capacity = 8) ?limits conn =
  let capacity = max 1 capacity in
  let limits =
    match limits with Some l -> l | None -> Connection.limits conn
  in
  {
    conn;
    capacity;
    lock = Mcore.Mutex.create ();
    cond = Mcore.Condition.create ();
    free = List.init capacity (fun id -> { id; limits; queries = 0 });
    in_use = 0;
    borrows = 0;
    rejections = 0;
    waits = 0;
    peak_in_use = 0;
  }

let connection t = t.conn
let capacity (t : t) = t.capacity

let session_id s = s.id
let session_limits s = s.limits
let set_session_limits s l = s.limits <- l
let session_queries s = s.queries

(* one borrow attempt; the caller holds [t.lock] *)
let take_unlocked t =
  match t.free with
  | s :: rest ->
    t.free <- rest;
    t.in_use <- t.in_use + 1;
    t.borrows <- t.borrows + 1;
    if t.in_use > t.peak_in_use then t.peak_in_use <- t.in_use;
    Some s
  | [] -> None

(* records the rejection, drops [t.lock], raises 53300 *)
let exhausted_unlocked (t : t) =
  t.rejections <- t.rejections + 1;
  Mcore.Mutex.unlock t.lock;
  T.incr T.c_pool_rejections;
  Sqlstate.error ~sqlstate:Sqlstate.too_many_connections
    ~condition:"too many connections"
    "session pool exhausted (%d sessions all in use)" t.capacity

let borrow ?(wait_ms = 0) t =
  Mcore.Mutex.lock t.lock;
  match take_unlocked t with
  | Some s ->
    Mcore.Mutex.unlock t.lock;
    T.incr T.c_pool_borrows;
    s
  | None ->
    if wait_ms <= 0 then exhausted_unlocked t
    else begin
      t.waits <- t.waits + 1;
      T.incr T.c_pool_waits;
      let deadline =
        Int64.add (T.now_ns ()) (Int64.of_int (wait_ms * 1_000_000))
      in
      let rec wait_loop () =
        match take_unlocked t with
        | Some s ->
          Mcore.Mutex.unlock t.lock;
          T.incr T.c_pool_borrows;
          s
        | None ->
          if Int64.compare (T.now_ns ()) deadline >= 0 then
            exhausted_unlocked t
          else begin
            (* park until a release broadcasts; the deadline is
               re-checked on every wakeup (the stdlib condition has no
               timed wait, so expiry is observed at the next release —
               always forthcoming, sessions being held for one
               budget-bounded query at a time).  The shim's [wait]
               returns immediately, so [cpu_relax] keeps the degraded
               loop the old polite bounded spin. *)
            Mcore.Condition.wait t.cond t.lock;
            Mcore.cpu_relax ();
            wait_loop ()
          end
      in
      wait_loop ()
    end

let release t s =
  Mcore.Mutex.protect t.lock @@ fun () ->
  t.free <- s :: t.free;
  t.in_use <- t.in_use - 1;
  (* broadcast, not signal: waiters carry distinct deadlines, and a
     single signal could land on one that is about to time out *)
  Mcore.Condition.broadcast t.cond

let with_session ?wait_ms t f =
  let s = borrow ?wait_ms t in
  Fun.protect ~finally:(fun () -> release t s) (fun () -> f s)

let execute ?wait_ms t sql =
  with_session ?wait_ms t @@ fun s ->
  s.queries <- s.queries + 1;
  Connection.execute_query ~limits:s.limits t.conn sql

(* Pooled concurrent serving: [domains] domains each drain statements
   from a shared cursor, borrowing a session per statement (so the pool
   bound — not the domain count — is the admission limit).  Results in
   input order, per-statement outcomes captured independently. *)
let execute_concurrent ?domains ?wait_ms t sqls =
  let stmts = Array.of_list sqls in
  let n = Array.length stmts in
  let d =
    match domains with
    | Some d -> max 1 (min d (max 1 n))
    | None -> max 1 (min (Mcore.num_cores ()) n)
  in
  let out = Array.make n (Error Not_found) in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (out.(i) <-
           (match execute ?wait_ms t stmts.(i) with
           | rs -> Ok rs
           | exception e -> Error e));
        go ()
      end
    in
    go ()
  in
  let outcomes = Mcore.Domains.parallel (List.init d (fun _ -> worker)) in
  List.iter (function Ok () -> () | Error e -> raise e) outcomes;
  Array.to_list out

let stats t =
  Mcore.Mutex.protect t.lock @@ fun () ->
  {
    capacity = t.capacity;
    in_use = t.in_use;
    borrows = t.borrows;
    rejections = t.rejections;
    waits = t.waits;
    peak_in_use = t.peak_in_use;
  }
