(* Pre-5.0 (single-domain) variant of the Mcore interface: spawn runs
   inline, locks are no-ops, DLS keys are plain cells.  Selected by a
   dune rule on the compiler version; see mcore.mli for the
   contract. *)

let multicore = false
let num_cores () = 1
let cpu_relax () = ()

module Mutex = struct
  type t = unit

  let create () = ()
  let lock () = ()
  let unlock () = ()
  let protect () f = f ()
end

module Condition = struct
  (* with a single domain there is never anyone to signal: [wait]
     returns immediately, so condition-wait loops degrade to the
     bounded spin the pre-Condition code used *)
  type t = unit

  let create () = ()
  let wait () () = ()
  let signal () = ()
  let broadcast () = ()
end

module Domains = struct
  (* the thunk already ran at [spawn] time; the handle is its outcome *)
  type 'a handle = ('a, exn) result

  let spawn f = match f () with v -> Ok v | exception e -> Error e
  let join = function Ok v -> v | Error e -> raise e
  let join_result h = h
  let parallel thunks = List.map spawn thunks
end

module Dls = struct
  type 'a key = { init : unit -> 'a; mutable cell : 'a option }

  let new_key init = { init; cell = None }

  let get k =
    match k.cell with
    | Some v -> v
    | None ->
      let v = k.init () in
      k.cell <- Some v;
      v

  let set k v = k.cell <- Some v
end
