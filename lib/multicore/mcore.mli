(** Multicore portability shim.

    Every piece of shared mutable state in the system synchronizes
    through this one module, which has two build variants selected by
    the compiler version (see the dune rules next to it):

    - on OCaml >= 5.0 it is backed by the real [Domain], stdlib
      [Mutex] and [Domain.DLS], so N sessions evaluate queries truly
      in parallel;
    - on 4.14 it degrades to a single-domain shim: [Domains.spawn]
      runs the thunk inline, locks are no-ops (there is nothing to
      exclude), and a DLS key is a plain lazily-initialized cell.

    Dependent code therefore never mentions [Domain] directly and the
    whole tree keeps building on the 4.14 CI leg. *)

val multicore : bool
(** [true] when real domains are available (OCaml >= 5.0 build). *)

val num_cores : unit -> int
(** [Domain.recommended_domain_count ()], or [1] on the shim. *)

val cpu_relax : unit -> unit
(** Spin-wait hint ([Domain.cpu_relax]); a no-op on the shim. *)

(** Mutual exclusion.  On the single-domain variant every operation is
    a no-op: with no concurrent domains there is nothing to lock, and
    keeping it free means 4.14 builds carry zero synchronization
    cost.  Locks are NOT re-entrant on the multicore variant — never
    call a locking entry point from inside a protected section of the
    same lock. *)
module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit

  val protect : t -> (unit -> 'a) -> 'a
  (** Runs the thunk with the lock held; always unlocks, re-raising
      the thunk's exception. *)
end

(** Condition variables paired with {!Mutex}.  On the multicore
    variant these are stdlib conditions: [wait] atomically releases
    the mutex and blocks until a [signal]/[broadcast], so blocked
    waiters cost zero CPU.  On the single-domain shim [wait] returns
    immediately (there is no other domain to signal), which turns a
    wait loop written against this interface into the pre-existing
    bounded spin — exactly the degradation the 4.14 leg wants. *)
module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Block until signalled (multicore); return immediately (shim).
      Call only with the mutex held; re-acquired before returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

(** Domain spawn/join.  The single-domain variant runs the thunk
    inline at [spawn] time and [join] just returns (or re-raises) its
    outcome, so orchestration code written against this interface is
    correct — merely sequential — on 4.14. *)
module Domains : sig
  type 'a handle

  val spawn : (unit -> 'a) -> 'a handle

  val join : 'a handle -> 'a
  (** Waits for the domain and returns its result, re-raising the
      domain's exception if it died with one. *)

  val join_result : 'a handle -> ('a, exn) result
  (** Like {!join} but captures the exception, so a caller can join
      every spawned domain before deciding what to re-raise. *)

  val parallel : (unit -> 'a) list -> ('a, exn) result list
  (** Spawns one domain per thunk, joins them all (never abandoning a
      running domain), and returns the outcomes in input order. *)
end

(** Domain-local storage.  On the shim a key is one lazily-initialized
    cell, which is exactly the old "module-level mutable" behavior the
    multicore refactor replaced. *)
module Dls : sig
  type 'a key

  val new_key : (unit -> 'a) -> 'a key
  val get : 'a key -> 'a
  val set : 'a key -> 'a -> unit
end
