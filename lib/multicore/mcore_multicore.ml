(* OCaml >= 5.0 variant of the Mcore interface: real domains, stdlib
   mutexes, Domain.DLS.  Selected by a dune rule on the compiler
   version; see mcore.mli for the contract. *)

let multicore = true
let num_cores () = Domain.recommended_domain_count ()
let cpu_relax () = Domain.cpu_relax ()

module Mutex = struct
  type t = Stdlib.Mutex.t

  let create = Stdlib.Mutex.create
  let lock = Stdlib.Mutex.lock
  let unlock = Stdlib.Mutex.unlock

  (* hand-rolled rather than Stdlib.Mutex.protect: that helper only
     exists from 5.1, and this variant must build on 5.0 too *)
  let protect m f =
    lock m;
    match f () with
    | v ->
      unlock m;
      v
    | exception e ->
      unlock m;
      raise e
end

module Condition = struct
  type t = Stdlib.Condition.t

  let create = Stdlib.Condition.create
  let wait = Stdlib.Condition.wait
  let signal = Stdlib.Condition.signal
  let broadcast = Stdlib.Condition.broadcast
end

module Domains = struct
  type 'a handle = 'a Domain.t

  let spawn f = Domain.spawn f
  let join h = Domain.join h

  let join_result h = match Domain.join h with v -> Ok v | exception e -> Error e

  let parallel thunks =
    (* spawn everything first, then join everything: a failed domain
       must never leave its siblings running unobserved *)
    List.map join_result (List.map spawn thunks)
end

module Dls = struct
  type 'a key = 'a Domain.DLS.key

  let new_key init = Domain.DLS.new_key init
  let get k = Domain.DLS.get k
  let set k v = Domain.DLS.set k v
end
