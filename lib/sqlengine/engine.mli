(** A direct SQL-92 evaluator over the in-memory relational store.

    This is the reproduction's differential-testing oracle and the
    baseline for end-to-end benchmarks: every SQL statement the
    translator accepts must produce, through DSP, the same multiset of
    rows this engine produces directly (DESIGN.md section 3).

    It deliberately shares the translator's stage-two machinery
    (scopes, select-list expansion, output schemas) so both paths
    agree on names and types, while implementing textbook SQL
    semantics — three-valued logic, null-aware grouping and set
    operations — independently of the XQuery path. *)

type env

val env_of_application :
  ?optimize:bool ->
  ?scan_cache:bool ->
  ?vectorize:bool ->
  Aqua_dsp.Artifact.application ->
  env
(** Tables are the application's physical data-service functions.
    Logical (XQuery-bodied) services are not visible to this engine.
    [optimize] (default [true]) enables the hash equi-join fast path
    for inner joins; [~optimize:false] keeps the pure nested-loop
    evaluation (outer joins and comma-style cross products always use
    the nested loop).  [scan_cache] (default [true]) memoizes table
    resolution (metadata + service + function lookup) per table name
    until the application's metadata revision changes; hits and misses
    move the shared [scan_cache.*] telemetry counters.  [vectorize]
    (default [true]) filters WHERE in {!Aqua_xqeval.Batch}-sized
    slices with a selection vector (one budget probe per batch);
    [~vectorize:false] keeps the row-at-a-time filter. *)

val execute : env -> Aqua_sql.Ast.statement -> Aqua_relational.Rowset.t
(** @raise Aqua_translator.Errors.Error on semantic errors (the same
    ones stage two reports).
    @raise Aqua_relational.Value.Type_error on runtime type errors. *)

val execute_with_params :
  env ->
  Aqua_sql.Ast.statement ->
  Aqua_relational.Value.t array ->
  Aqua_relational.Rowset.t
(** Like [execute] with bound ['?'] parameters (0-indexed array for
    1-based parameter numbers). *)

val execute_sql : env -> string -> Aqua_relational.Rowset.t
(** Parse then execute. *)
