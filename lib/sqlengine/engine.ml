module A = Aqua_sql.Ast
module Value = Aqua_relational.Value
module Sql_type = Aqua_relational.Sql_type
module Schema = Aqua_relational.Schema
module Table = Aqua_relational.Table
module Rowset = Aqua_relational.Rowset
module Metadata = Aqua_dsp.Metadata
module Artifact = Aqua_dsp.Artifact
module Scope = Aqua_translator.Scope
module Semantic = Aqua_translator.Semantic
module Outcol = Aqua_translator.Outcol
module Errors = Aqua_translator.Errors
module Atomic = Aqua_xml.Atomic

let fail = Errors.raise_error
let type_error fmt = Format.kasprintf (fun s -> raise (Value.Type_error s)) fmt

type env = {
  sem : Semantic.env;
  table_data : A.table_name -> A.pos -> Metadata.table * Value.t array list;
  optimize : bool;
      (* use the hash equi-join fast path for inner joins; off = the
         pure nested-loop oracle *)
  vectorize : bool;
      (* filter WHERE in fixed-size batches (selection vector, one
         budget probe per batch); off = the row-at-a-time filter *)
}

let env_of_application ?(optimize = true) ?(scan_cache = true)
    ?(vectorize = true) app =
  let sem = Semantic.env_of_application app in
  let lookup_table_data (n : A.table_name) pos =
    match Metadata.lookup app ?catalog:n.A.catalog ?schema:n.A.schema n.A.table with
    | Error e ->
      fail ~pos Errors.Unknown_table "%s" (Metadata.error_to_string e)
    | Ok meta -> (
      (* find the backing physical table *)
      let service =
        Artifact.find_service_by_namespace app meta.Metadata.namespace
      in
      match service with
      | None -> fail ~pos Errors.Unknown_table "no service for %s" n.A.table
      | Some ds -> (
        match Artifact.find_function ds meta.Metadata.table with
        | Some { Artifact.body = Artifact.Physical t; _ } ->
          (meta, Table.rows t)
        | Some { Artifact.body = Artifact.Logical _; _ } ->
          fail ~pos Errors.Unsupported
            "the baseline engine only reads physical tables (%s is logical)"
            n.A.table
        | None -> fail ~pos Errors.Unknown_table "%s" n.A.table))
  in
  (* Revision-aware scan memo: the catalog lookup chain (metadata,
     service-by-namespace, function) is three linear scans per table
     reference, repeated for every scan of the same table inside one
     statement and across statements.  Successful resolutions are
     memoized until the application's *data* revision moves — the memo
     snapshots row lists, so a [Table.insert] (which bumps the table's
     data version) must flush it just like a metadata change; failures
     are never cached — their errors carry the reference position.
     Counted against the shared scan-cache telemetry so the baseline
     engine's scan reuse shows up in the same place as the DSP
     server's. *)
  let table_data =
    if not scan_cache then lookup_table_data
    else begin
      let module T = Aqua_core.Telemetry in
      let module Mcore = Aqua_multicore.Mcore in
      let memo :
          (string option * string option * string,
           Metadata.table * Value.t array list)
          Hashtbl.t =
        Hashtbl.create 16
      in
      let lock = Mcore.Mutex.create () in
      let seen_revision = ref (Artifact.data_revision app) in
      fun (n : A.table_name) pos ->
        let key = (n.A.catalog, n.A.schema, n.A.table) in
        let hit =
          Mcore.Mutex.protect lock (fun () ->
              let rev = Artifact.data_revision app in
              if rev <> !seen_revision then begin
                Hashtbl.reset memo;
                seen_revision := rev
              end;
              Hashtbl.find_opt memo key)
        in
        match hit with
        | Some r ->
          T.incr T.c_scan_cache_hits;
          r
        | None ->
          T.incr T.c_scan_cache_misses;
          (* resolve outside the lock — the lookup chain can raise with
             the reference position, and a racing domain at worst
             resolves the same table twice before [replace] dedupes *)
          let r = lookup_table_data n pos in
          Mcore.Mutex.protect lock (fun () -> Hashtbl.replace memo key r);
          r
    end
  in
  { sem; table_data; optimize; vectorize }

(* ------------------------------------------------------------------ *)
(* Tuples: one value array per view, aligned with the view's columns. *)

type frame = (Scope.view * Value.t array) list

(* Evaluation context: scope chain and the frame stack aligned with
   it; [group] holds the current group's frames when evaluating
   aggregates. *)
type ctx = {
  env : env;
  scope : Scope.t;
  frames : frame list;  (* innermost first, frames.(d) pairs scope depth d *)
  group : frame list option;
}

let col_index (view : Scope.view) (col : Scope.vcol) =
  let rec go i = function
    | [] -> type_error "internal: column %s not in view" col.Scope.label
    | c :: rest -> if c == col then i else go (i + 1) rest
  in
  go 0 view.Scope.cols

let lookup_value ctx (r : Scope.resolution) : Value.t =
  match List.nth_opt ctx.frames r.Scope.res_depth with
  | None -> type_error "internal: no frame at depth %d" r.Scope.res_depth
  | Some frame -> (
    match List.find_opt (fun (v, _) -> v == r.Scope.res_view) frame with
    | None -> type_error "internal: view missing from frame"
    | Some (_, values) -> values.(col_index r.Scope.res_view r.Scope.res_col))

(* ------------------------------------------------------------------ *)
(* Scalar semantics                                                   *)

let as_float name v =
  match v with
  | Value.Int i -> float_of_int i
  | Value.Num f -> f
  | _ -> type_error "%s: expected a number, got %s" name (Value.to_display v)

let as_string name v =
  match v with
  | Value.Str s -> s
  | _ -> type_error "%s: expected a string, got %s" name (Value.to_display v)

let as_int name v =
  match v with
  | Value.Int i -> i
  | Value.Num f -> int_of_float f
  | _ -> type_error "%s: expected an integer, got %s" name (Value.to_display v)

let arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> (
    match (op, a, b) with
    | A.Add, Value.Int x, Value.Int y -> Value.Int (x + y)
    | A.Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
    | A.Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
    | A.Div, _, _ ->
      let y = as_float "/" b in
      if y = 0.0 then type_error "division by zero"
      else Value.Num (as_float "/" a /. y)
    | A.Add, _, _ -> Value.Num (as_float "+" a +. as_float "+" b)
    | A.Sub, _, _ -> Value.Num (as_float "-" a -. as_float "-" b)
    | A.Mul, _, _ -> Value.Num (as_float "*" a *. as_float "*" b))

let null_propagating_function name args f =
  if List.exists Value.is_null args then Value.Null
  else
    try f args
    with Failure _ -> type_error "error evaluating %s" name

let substring_sql s start len =
  (* SQL-92 / fn:substring semantics: 1-based, negative start shifts *)
  let n = String.length s in
  let from = max 1 start in
  let until =
    match len with
    | None -> n + 1
    | Some l -> start + l
  in
  let until = min (n + 1) until in
  if until <= from then "" else String.sub s (from - 1) (until - from)

let trim_sql which s =
  let n = String.length s in
  let start =
    if which = `Trailing then 0
    else begin
      let i = ref 0 in
      while !i < n && s.[!i] = ' ' do incr i done;
      !i
    end
  in
  let stop =
    if which = `Leading then n
    else begin
      let i = ref n in
      while !i > start && s.[!i - 1] = ' ' do decr i done;
      !i
    end
  in
  String.sub s start (stop - start)

let position_sql needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then 1
  else begin
    let rec go i =
      if i + n > h then 0
      else if String.sub hay i n = needle then i + 1
      else go (i + 1)
    in
    go 0
  end

let extract_sql field v =
  match (field, v) with
  | "YEAR", Value.Date d -> d.Atomic.year
  | "MONTH", Value.Date d -> d.Atomic.month
  | "DAY", Value.Date d -> d.Atomic.day
  | "YEAR", Value.Timestamp ts -> ts.Atomic.date.Atomic.year
  | "MONTH", Value.Timestamp ts -> ts.Atomic.date.Atomic.month
  | "DAY", Value.Timestamp ts -> ts.Atomic.date.Atomic.day
  | "HOUR", Value.Time t -> t.Atomic.hour
  | "MINUTE", Value.Time t -> t.Atomic.minute
  | "SECOND", Value.Time t -> t.Atomic.second
  | "HOUR", Value.Timestamp ts -> ts.Atomic.time.Atomic.hour
  | "MINUTE", Value.Timestamp ts -> ts.Atomic.time.Atomic.minute
  | "SECOND", Value.Timestamp ts -> ts.Atomic.time.Atomic.second
  | _ ->
    type_error "EXTRACT(%s FROM %s) is not defined" field (Value.to_display v)

let cast_sql ty v =
  if Value.is_null v then Value.Null
  else
    match ty with
    | Sql_type.Smallint | Sql_type.Integer | Sql_type.Bigint -> (
      match v with
      | Value.Int _ -> v
      | Value.Num f -> Value.Int (int_of_float f)
      | Value.Str s -> (
        match int_of_string_opt (String.trim s) with
        | Some i -> Value.Int i
        | None -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> Value.Int (int_of_float f)
          | None -> type_error "cannot cast %S to %s" s (Sql_type.to_string ty)))
      | Value.Bool b -> Value.Int (if b then 1 else 0)
      | _ -> type_error "cannot cast %s to %s" (Value.to_display v) (Sql_type.to_string ty))
    | Sql_type.Decimal _ | Sql_type.Real | Sql_type.Double -> (
      match v with
      | Value.Int i -> Value.Num (float_of_int i)
      | Value.Num _ -> v
      | Value.Str s -> (
        match float_of_string_opt (String.trim s) with
        | Some f -> Value.Num f
        | None -> type_error "cannot cast %S to %s" s (Sql_type.to_string ty))
      | _ -> type_error "cannot cast %s to %s" (Value.to_display v) (Sql_type.to_string ty))
    | Sql_type.Char _ | Sql_type.Varchar _ -> Value.Str (Value.to_string v)
    | Sql_type.Boolean -> (
      match v with
      | Value.Bool _ -> v
      | Value.Int i -> Value.Bool (i <> 0)
      | Value.Str s -> Value.of_string Sql_type.Boolean s
      | _ -> type_error "cannot cast %s to BOOLEAN" (Value.to_display v))
    | Sql_type.Date -> (
      match v with
      | Value.Date _ -> v
      | Value.Timestamp ts -> Value.Date ts.Atomic.date
      | Value.Str s -> Value.of_string Sql_type.Date s
      | _ -> type_error "cannot cast %s to DATE" (Value.to_display v))
    | Sql_type.Time -> (
      match v with
      | Value.Time _ -> v
      | Value.Timestamp ts -> Value.Time ts.Atomic.time
      | Value.Str s -> Value.of_string Sql_type.Time s
      | _ -> type_error "cannot cast %s to TIME" (Value.to_display v))
    | Sql_type.Timestamp -> (
      match v with
      | Value.Timestamp _ -> v
      | Value.Date d ->
        Value.Timestamp
          { Atomic.date = d; time = { Atomic.hour = 0; minute = 0; second = 0 } }
      | Value.Str s -> Value.of_string Sql_type.Timestamp s
      | _ -> type_error "cannot cast %s to TIMESTAMP" (Value.to_display v))

let function_sql name args =
  match (String.uppercase_ascii name, args) with
  | "COALESCE", _ -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "NULLIF", [ a; b ] ->
    if Value.is_null a then Value.Null
    else if (not (Value.is_null b)) && snd (Value.compare3 a b) = 0 then
      Value.Null
    else a
  | up, _ ->
    null_propagating_function name args (fun args ->
        match (up, args) with
        | "CONCAT", _ ->
          Value.Str (String.concat "" (List.map (as_string "CONCAT") args))
        | ("UPPER" | "UCASE"), [ s ] ->
          Value.Str (String.uppercase_ascii (as_string "UPPER" s))
        | ("LOWER" | "LCASE"), [ s ] ->
          Value.Str (String.lowercase_ascii (as_string "LOWER" s))
        | ("LENGTH" | "CHAR_LENGTH" | "CHARACTER_LENGTH"), [ s ] ->
          Value.Int (String.length (as_string "LENGTH" s))
        | ("SUBSTRING" | "SUBSTR"), [ s; start ] ->
          Value.Str
            (substring_sql (as_string "SUBSTRING" s)
               (as_int "SUBSTRING" start) None)
        | ("SUBSTRING" | "SUBSTR"), [ s; start; len ] ->
          Value.Str
            (substring_sql (as_string "SUBSTRING" s)
               (as_int "SUBSTRING" start)
               (Some (as_int "SUBSTRING" len)))
        | ("POSITION" | "LOCATE"), [ needle; hay ] ->
          Value.Int
            (position_sql (as_string "POSITION" needle)
               (as_string "POSITION" hay))
        | "TRIM", [ s ] -> Value.Str (trim_sql `Both (as_string "TRIM" s))
        | "LTRIM", [ s ] -> Value.Str (trim_sql `Leading (as_string "LTRIM" s))
        | "RTRIM", [ s ] -> Value.Str (trim_sql `Trailing (as_string "RTRIM" s))
        | "ABS", [ Value.Int i ] -> Value.Int (abs i)
        | "ABS", [ v ] -> Value.Num (Float.abs (as_float "ABS" v))
        | "FLOOR", [ Value.Int i ] -> Value.Int i
        | "FLOOR", [ v ] -> Value.Num (Float.floor (as_float "FLOOR" v))
        | ("CEILING" | "CEIL"), [ Value.Int i ] -> Value.Int i
        | ("CEILING" | "CEIL"), [ v ] ->
          Value.Num (Float.ceil (as_float "CEILING" v))
        | "ROUND", [ Value.Int i ] -> Value.Int i
        | "ROUND", [ v ] ->
          Value.Num (Float.floor (as_float "ROUND" v +. 0.5))
        | "MOD", [ Value.Int x; Value.Int y ] ->
          if y = 0 then type_error "modulus by zero" else Value.Int (x mod y)
        | "MOD", [ x; y ] ->
          Value.Num (Float.rem (as_float "MOD" x) (as_float "MOD" y))
        | up, [ v ]
          when String.length up > 8 && String.sub up 0 8 = "EXTRACT_" ->
          Value.Int (extract_sql (String.sub up 8 (String.length up - 8)) v)
        | _ ->
          fail Errors.Unsupported "unknown function %s/%d" name
            (List.length args))

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)

let literal_value (lit : A.literal) : Value.t =
  match lit with
  | A.L_int i -> Value.Int i
  | A.L_num (f, _) -> Value.Num f
  | A.L_string s -> Value.Str s
  | A.L_bool b -> Value.Bool b
  | A.L_null -> Value.Null
  | A.L_date s -> Value.of_string Sql_type.Date s
  | A.L_time s -> Value.of_string Sql_type.Time s
  | A.L_timestamp s -> Value.of_string Sql_type.Timestamp s

type params = Value.t array  (* 0-indexed by parameter number - 1 *)

let rec eval_expr ?(params : params = [||]) ctx (e : A.expr) : Value.t =
  (* cooperative budget probe (fuel + amortized deadline), mirroring
     the xqeval evaluator: every scan/join/filter loop funnels through
     expression evaluation *)
  Aqua_resilience.Budget.step ();
  let eval = eval_expr ~params in
  match e with
  | A.Lit lit -> literal_value lit
  | A.Column { qualifier; name; pos } -> (
    match Scope.resolve ctx.scope ?qualifier name with
    | Ok r -> lookup_value ctx r
    | Error _ ->
      fail ~pos Errors.Unknown_column "column %s does not exist" name)
  | A.Param n ->
    if n - 1 < Array.length params then params.(n - 1)
    else type_error "parameter %d is not bound" n
  | A.Arith (op, a, b) -> arith op (eval ctx a) (eval ctx b)
  | A.Neg a -> (
    match eval ctx a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (-i)
    | v -> Value.Num (-.as_float "-" v))
  | A.Concat (a, b) -> (
    match (eval ctx a, eval ctx b) with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | x, y -> Value.Str (Value.to_string x ^ Value.to_string y))
  | A.Func { name; args } -> function_sql name (List.map (eval ctx) args)
  | A.Cast (a, ty) -> cast_sql ty (eval ctx a)
  | A.Case { operand; branches; else_ } -> (
    let matches (w, _) =
      match operand with
      | None -> Value.is_true (eval_pred ~params ctx w)
      | Some op ->
        let ov = eval ctx op and wv = eval ctx w in
        Value.is_true (Value.equal3 ov wv)
    in
    match List.find_opt matches branches with
    | Some (_, t) -> eval ctx t
    | None -> ( match else_ with Some e -> eval ctx e | None -> Value.Null))
  | A.Scalar_subquery q -> (
    let _, rows = exec_query ~params ctx.env ctx.scope ctx.frames q in
    match rows with
    | [] -> Value.Null
    | [ row ] ->
      if Array.length row <> 1 then
        fail Errors.Cardinality "scalar subquery returned %d columns"
          (Array.length row)
      else row.(0)
    | _ -> type_error "scalar subquery returned more than one row")
  | A.Agg { func; distinct; arg } -> eval_aggregate ~params ctx func distinct arg
  | A.Cmp _ | A.And _ | A.Or _ | A.Not _ | A.Is_null _ | A.Between _
  | A.Like _ | A.In_list _ | A.In_query _ | A.Exists _ | A.Quantified _ -> (
    match eval_pred ~params ctx e with
    | Value.True -> Value.Bool true
    | Value.False | Value.Unknown -> Value.Bool false)

and eval_aggregate ?(params : params = [||]) ctx func distinct arg : Value.t =
  let group =
    match ctx.group with
    | Some g -> g
    | None -> fail Errors.Grouping "aggregate outside a grouped query"
  in
  let per_tuple f =
    List.map (fun frame -> f { ctx with frames = frame :: List.tl ctx.frames; group = None }) group
  in
  match (func, arg) with
  | A.A_count_star, _ -> Value.Int (List.length group)
  | _, None -> fail Errors.Unsupported "aggregate without argument"
  | func, Some arg ->
    let values =
      per_tuple (fun c -> eval_expr ~params c arg)
      |> List.filter (fun v -> not (Value.is_null v))
    in
    let values =
      if distinct then begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun v ->
            let k = Value.group_key v in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          values
      end
      else values
    in
    (match func with
    | A.A_count_star -> assert false
    | A.A_count -> Value.Int (List.length values)
    | A.A_sum ->
      if values = [] then Value.Null
      else if List.for_all (function Value.Int _ -> true | _ -> false) values
      then
        Value.Int
          (List.fold_left
             (fun acc v -> acc + as_int "SUM" v)
             0 values)
      else
        Value.Num
          (List.fold_left (fun acc v -> acc +. as_float "SUM" v) 0.0 values)
    | A.A_avg ->
      if values = [] then Value.Null
      else
        Value.Num
          (List.fold_left (fun acc v -> acc +. as_float "AVG" v) 0.0 values
          /. float_of_int (List.length values))
    | A.A_min -> (
      match values with
      | [] -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun best v -> if Value.compare_sql v best < 0 then v else best)
          first rest)
    | A.A_max -> (
      match values with
      | [] -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun best v -> if Value.compare_sql v best > 0 then v else best)
          first rest))

and eval_pred ?(params : params = [||]) ctx (e : A.expr) : Value.bool3 =
  let eval = eval_expr ~params in
  let pred = eval_pred ~params in
  match e with
  | A.And (a, b) -> Value.and3 (pred ctx a) (pred ctx b)
  | A.Or (a, b) -> Value.or3 (pred ctx a) (pred ctx b)
  | A.Not a -> Value.not3 (pred ctx a)
  | A.Cmp (op, a, b) -> (
    match Value.compare3 (eval ctx a) (eval ctx b) with
    | Value.Unknown, _ -> Value.Unknown
    | _, c -> Value.of_bool (cmp_result op c))
  | A.Is_null { arg; negated } ->
    let isnull = Value.is_null (eval ctx arg) in
    Value.of_bool (isnull <> negated)
  | A.Between { arg; low; high; negated } ->
    let v =
      Value.and3
        (pred ctx (A.Cmp (A.Ge, arg, low)))
        (pred ctx (A.Cmp (A.Le, arg, high)))
    in
    if negated then Value.not3 v else v
  | A.Like { arg; pattern; escape; negated } -> (
    let v = eval ctx arg and p = eval ctx pattern in
    let esc =
      match escape with
      | None -> None
      | Some e -> (
        match eval ctx e with
        | Value.Null -> Some Value.Null
        | v -> Some v)
    in
    match (v, p, esc) with
    | Value.Null, _, _ | _, Value.Null, _ | _, _, Some Value.Null ->
      Value.Unknown
    | _, _, _ ->
      let escape =
        match esc with
        | None -> None
        | Some e -> (
          match as_string "ESCAPE" e with
          | s when String.length s = 1 -> Some s.[0]
          | s -> type_error "ESCAPE must be one character, got %S" s)
      in
      let result =
        Aqua_xqeval.Functions.like_match ?escape
          ~pattern:(as_string "LIKE" p) (as_string "LIKE" v)
      in
      let result = if negated then not result else result in
      Value.of_bool result)
  | A.In_list { arg; items; negated } ->
    let v = eval ctx arg in
    let base =
      List.fold_left
        (fun acc item ->
          Value.or3 acc (Value.equal3 v (eval ctx item)))
        Value.False items
    in
    if negated then Value.not3 base else base
  | A.In_query { arg; query; negated } ->
    let v = eval ctx arg in
    let _, rows = exec_query ~params ctx.env ctx.scope ctx.frames query in
    let base =
      List.fold_left
        (fun acc row -> Value.or3 acc (Value.equal3 v row.(0)))
        Value.False rows
    in
    if negated then Value.not3 base else base
  | A.Exists q ->
    let _, rows = exec_query ~params ctx.env ctx.scope ctx.frames q in
    Value.of_bool (rows <> [])
  | A.Quantified { op; quantifier; arg; query } ->
    let v = eval ctx arg in
    let _, rows = exec_query ~params ctx.env ctx.scope ctx.frames query in
    let fold init combine =
      List.fold_left
        (fun acc row ->
          let c =
            match Value.compare3 v row.(0) with
            | Value.Unknown, _ -> Value.Unknown
            | _, c -> Value.of_bool (cmp_result op c)
          in
          combine acc c)
        init rows
    in
    (match quantifier with
    | A.Q_any -> fold Value.False Value.or3
    | A.Q_all -> fold Value.True Value.and3)
  | _ -> (
    (* value expression used as a predicate *)
    match eval ctx e with
    | Value.Null -> Value.Unknown
    | Value.Bool b -> Value.of_bool b
    | v -> type_error "%s is not a boolean" (Value.to_display v))

and cmp_result (op : A.cmp_op) c =
  match op with
  | A.Eq -> c = 0
  | A.Neq -> c <> 0
  | A.Lt -> c < 0
  | A.Le -> c <= 0
  | A.Gt -> c > 0
  | A.Ge -> c >= 0

(* ------------------------------------------------------------------ *)
(* FROM evaluation                                                    *)

(* Returns the flattened view of a table-ref together with its rows
   (laid out in the view's column order). *)
and rows_of_table_ref ?(params : params = [||]) env outer_scope outer_frames
    (tr : A.table_ref) : Scope.view * Value.t array list =
  match tr with
  | A.Primary (A.Table_ref_name { name; alias; pos }) ->
    let module T = Aqua_core.Telemetry in
    T.with_span "engine.scan" @@ fun () ->
    Aqua_resilience.Failpoint.hit "engine.scan";
    let meta, rows = env.table_data name pos in
    if T.enabled () then T.add T.c_engine_rows_scanned (List.length rows);
    Aqua_resilience.Budget.tick_items (List.length rows);
    (Semantic.table_view meta ~alias, rows)
  | A.Primary (A.Derived { query; alias }) ->
    let cols, rows = exec_query ~params env Scope.root [] query in
    (Semantic.derived_view cols ~alias, rows)
  | A.Join { kind; left; right; cond } ->
    let lview, lrows =
      rows_of_table_ref ~params env outer_scope outer_frames left
    in
    let rview, rrows =
      rows_of_table_ref ~params env outer_scope outer_frames right
    in
    let lwidth = List.length lview.Scope.cols in
    let rwidth = List.length rview.Scope.cols in
    let lcols = Semantic.qualify_view_cols lview in
    let rcols = Semantic.qualify_view_cols rview in
    let lcols =
      match kind with
      | A.J_right | A.J_full -> Semantic.make_nullable lcols
      | _ -> lcols
    in
    let rcols =
      match kind with
      | A.J_left | A.J_full -> Semantic.make_nullable rcols
      | _ -> rcols
    in
    let view =
      { Scope.alias = None; cols = lcols @ rcols; binding = None }
    in
    let on_holds lrow rrow =
      match cond with
      | None -> true
      | Some c ->
        let combined = Array.append lrow rrow in
        let scope = Scope.push outer_scope [ view ] in
        let ctx =
          {
            env;
            scope;
            frames = [ (view, combined) ] :: outer_frames;
            group = None;
          }
        in
        Value.is_true (eval_pred ~params ctx c)
    in
    let nulls n = Array.make n Value.Null in
    (* Hash equi-join fast path (inner joins only): find a conjunct
       [lkey = rkey] of the ON condition whose column references
       resolve entirely to one input per side, build a hash table over
       the right input keyed by [Value.group_key], and probe with the
       left — O(n+m) instead of the O(n*m) scan.  Output stays in
       nested-loop order (left-major, right rows in input order), and
       matches are re-verified with [Value.equal3] so the join never
       trusts [group_key] beyond what three-valued equality grants
       (NULL keys never match: [x = NULL] is Unknown).  Classification
       is conservative: any subquery, aggregate or unresolvable column
       reference falls back to the nested loop. *)
    let join_scope = Scope.push outer_scope [ view ] in
    let join_ctx combined =
      {
        env;
        scope = join_scope;
        frames = [ (view, combined) ] :: outer_frames;
        group = None;
      }
    in
    let classify_side e =
      (* (uses_left_cols, uses_right_cols), or [None] to bail out *)
      let exception Bail in
      let l = ref false and r = ref false in
      let rec go (e : A.expr) =
        match e with
        | A.Lit _ | A.Param _ -> ()
        | A.Column { qualifier; name; _ } -> (
          match Scope.resolve join_scope ?qualifier name with
          | Error _ -> raise Bail
          | Ok res ->
            if res.Scope.res_depth > 0 then ()  (* outer correlation *)
            else if List.memq res.Scope.res_col lcols then l := true
            else r := true)
        | A.Arith (_, a, b) | A.Concat (a, b) | A.Cmp (_, a, b)
        | A.And (a, b) | A.Or (a, b) ->
          go a;
          go b
        | A.Neg a | A.Not a | A.Cast (a, _) -> go a
        | A.Is_null { arg; _ } -> go arg
        | A.Between { arg; low; high; _ } ->
          go arg;
          go low;
          go high
        | A.Like { arg; pattern; escape; _ } ->
          go arg;
          go pattern;
          Option.iter go escape
        | A.In_list { arg; items; _ } ->
          go arg;
          List.iter go items
        | A.Func { args; _ } -> List.iter go args
        | A.Case { operand; branches; else_ } ->
          Option.iter go operand;
          List.iter
            (fun (w, t) ->
              go w;
              go t)
            branches;
          Option.iter go else_
        | A.In_query _ | A.Exists _ | A.Scalar_subquery _ | A.Quantified _
        | A.Agg _ ->
          raise Bail
      in
      match go e with
      | () -> Some (!l, !r)
      | exception Bail -> None
    in
    let hash_inner_join c =
      let rec conjuncts = function
        | A.And (a, b) -> conjuncts a @ conjuncts b
        | e -> [ e ]
      in
      let rec pick seen = function
        | [] -> None
        | (A.Cmp (A.Eq, e1, e2) as cj) :: rest -> (
          let pair =
            match (classify_side e1, classify_side e2) with
            | Some (l1, r1), Some (l2, r2) ->
              if l1 && (not r1) && r2 && not l2 then Some (e1, e2)
              else if l2 && (not r2) && r1 && not l1 then Some (e2, e1)
              else None
            | _ -> None
          in
          match pair with
          | Some (lkey, rkey) -> Some (lkey, rkey, List.rev_append seen rest)
          | None -> pick (cj :: seen) rest)
        | cj :: rest -> pick (cj :: seen) rest
      in
      match pick [] (conjuncts c) with
      | None -> None
      | Some (lkey, rkey, residual) ->
        let residual_holds =
          match residual with
          | [] -> fun _ _ -> true
          | c0 :: more ->
            let rc = List.fold_left (fun acc e -> A.And (acc, e)) c0 more in
            fun lrow rrow ->
              Value.is_true
                (eval_pred ~params (join_ctx (Array.append lrow rrow)) rc)
        in
        let tbl = Hashtbl.create (max 16 (List.length rrows)) in
        List.iter
          (fun rrow ->
            match
              eval_expr ~params (join_ctx (Array.append (nulls lwidth) rrow))
                rkey
            with
            | Value.Null -> ()
            | rval -> Hashtbl.add tbl (Value.group_key rval) (rrow, rval))
          rrows;
        Some
          (List.concat_map
             (fun lrow ->
               match
                 eval_expr ~params (join_ctx (Array.append lrow (nulls rwidth)))
                   lkey
               with
               | Value.Null -> []
               | lval ->
                 List.filter_map
                   (fun (rrow, rval) ->
                     if
                       Value.is_true (Value.equal3 lval rval)
                       && residual_holds lrow rrow
                     then Some (Array.append lrow rrow)
                     else None)
                   (* find_all is most-recent-first; rev restores right
                      input order *)
                   (List.rev (Hashtbl.find_all tbl (Value.group_key lval))))
             lrows)
    in
    let rows =
      match kind with
      | A.J_inner | A.J_cross -> (
        let hashed =
          match (kind, cond) with
          | A.J_inner, Some c when env.optimize -> hash_inner_join c
          | _ -> None
        in
        match hashed with
        | Some rows -> rows
        | None ->
          List.concat_map
            (fun lrow ->
              List.filter_map
                (fun rrow ->
                  if on_holds lrow rrow then Some (Array.append lrow rrow)
                  else None)
                rrows)
            lrows)
      | A.J_left ->
        List.concat_map
          (fun lrow ->
            let matches =
              List.filter_map
                (fun rrow ->
                  if on_holds lrow rrow then Some (Array.append lrow rrow)
                  else None)
                rrows
            in
            if matches = [] then [ Array.append lrow (nulls rwidth) ]
            else matches)
          lrows
      | A.J_right ->
        List.concat_map
          (fun rrow ->
            let matches =
              List.filter_map
                (fun lrow ->
                  if on_holds lrow rrow then Some (Array.append lrow rrow)
                  else None)
                lrows
            in
            if matches = [] then [ Array.append (nulls lwidth) rrow ]
            else matches)
          rrows
      | A.J_full ->
        let matched_right = Hashtbl.create 16 in
        let left_part =
          List.concat_map
            (fun lrow ->
              let matches =
                List.concat
                  (List.mapi
                     (fun i rrow ->
                       if on_holds lrow rrow then begin
                         Hashtbl.replace matched_right i ();
                         [ Array.append lrow rrow ]
                       end
                       else [])
                     rrows)
              in
              if matches = [] then [ Array.append lrow (nulls rwidth) ]
              else matches)
            lrows
        in
        let right_part =
          List.concat
            (List.mapi
               (fun i rrow ->
                 if Hashtbl.mem matched_right i then []
                 else [ Array.append (nulls lwidth) rrow ])
               rrows)
        in
        left_part @ right_part
    in
    let module T = Aqua_core.Telemetry in
    if T.enabled () then T.add T.c_engine_rows_joined (List.length rows);
    Aqua_resilience.Budget.tick_items (List.length rows);
    (view, rows)

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                   *)

and exec_spec ?(params : params = [||]) env outer_scope outer_frames
    (spec : A.query_spec) ~order_hook : Outcol.t list * Value.t array list =
  (* FROM: one view + row list per item; tuples = cartesian product *)
  let sources =
    List.map (rows_of_table_ref ~params env outer_scope outer_frames) spec.A.from
  in
  let views = List.map fst sources in
  let scope = Scope.push outer_scope views in
  let tuples =
    List.fold_left
      (fun acc (view, rows) ->
        List.concat_map
          (fun frame -> List.map (fun row -> frame @ [ (view, row) ]) rows)
          acc)
      [ [] ] sources
  in
  let mk_ctx ?group frame =
    { env; scope; frames = frame :: outer_frames; group }
  in
  (* WHERE *)
  let tuples =
    match spec.A.where with
    | None -> tuples
    | Some w ->
      let keep frame = Value.is_true (eval_pred ~params (mk_ctx frame) w) in
      if not env.vectorize then List.filter keep tuples
      else begin
        (* batched filter: fixed-size slices with a selection vector,
           one budget probe per batch instead of none, and batch
           traffic on the shared xqeval.batch.* counters *)
        let module T = Aqua_core.Telemetry in
        let cap = Aqua_xqeval.Batch.size () in
        let buf = Array.make cap [] in
        let n = ref 0 in
        let acc = ref [] in
        let drain () =
          if !n > 0 then begin
            Aqua_resilience.Budget.steps !n;
            T.incr T.c_batch_batches;
            T.add T.c_batch_rows !n;
            let selected = ref 0 in
            for k = 0 to !n - 1 do
              if keep buf.(k) then begin
                acc := buf.(k) :: !acc;
                incr selected
              end
            done;
            T.add T.c_batch_filtered (!n - !selected);
            n := 0
          end
        in
        List.iter
          (fun frame ->
            buf.(!n) <- frame;
            incr n;
            if !n = cap then drain ())
          tuples;
        drain ();
        List.rev !acc
      end
  in
  let items = Semantic.expand_select env.sem scope spec in
  let cols = List.map fst items in
  let project_tuple frame =
    Array.of_list
      (List.map (fun (_, expr) -> eval_expr ~params (mk_ctx frame) expr) items)
  in
  let rows =
    if Semantic.is_grouped spec then begin
      (* group tuples by the GROUP BY column values *)
      let groups =
        if spec.A.group_by = [] then
          (* implicit single group, present even over empty input *)
          [ tuples ]
        else begin
          let table = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun frame ->
              let key =
                String.concat "\x01"
                  (List.map
                     (fun g ->
                       Value.group_key (eval_expr ~params (mk_ctx frame) g))
                     spec.A.group_by)
              in
              match Hashtbl.find_opt table key with
              | Some acc -> acc := frame :: !acc
              | None ->
                Hashtbl.add table key (ref [ frame ]);
                order := key :: !order)
            tuples;
          List.rev_map (fun k -> List.rev !(Hashtbl.find table k)) !order
          |> List.rev
        end
      in
      let groups =
        match spec.A.having with
        | None -> groups
        | Some h ->
          List.filter
            (fun group ->
              let frame = match group with f :: _ -> f | [] -> [] in
              Value.is_true
                (eval_pred ~params (mk_ctx ~group frame) h))
            groups
      in
      List.map
        (fun group ->
          let frame = match group with f :: _ -> f | [] -> [] in
          let ctx = mk_ctx ~group frame in
          Array.of_list
            (List.map (fun (_, expr) -> eval_expr ~params ctx expr) items))
        groups
    end
    else begin
      match order_hook with
      | None -> List.map project_tuple tuples
      | Some order_items ->
        (* sort by expression keys evaluated in tuple scope, then project *)
        let keyed =
          List.map
            (fun frame ->
              let keys =
                List.map
                  (fun ((o : A.order_item), key_expr) ->
                    (eval_expr ~params (mk_ctx frame) key_expr, o.A.descending))
                  order_items
              in
              (keys, project_tuple frame))
            tuples
        in
        let compare_rows (ka, _) (kb, _) =
          let rec go = function
            | [] -> 0
            | ((va, desc), (vb, _)) :: rest ->
              let c = Value.compare_sql va vb in
              let c = if desc then -c else c in
              if c <> 0 then c else go rest
          in
          go (List.combine ka kb)
        in
        List.map snd (List.stable_sort compare_rows keyed)
    end
  in
  let rows =
    if spec.A.distinct then begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun row ->
          let k =
            String.concat "\x01"
              (Array.to_list (Array.map Value.group_key row))
          in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        rows
    end
    else rows
  in
  (cols, rows)

and exec_query ?(params : params = [||]) env outer_scope outer_frames
    (q : A.query) : Outcol.t list * Value.t array list =
  match q with
  | A.Spec spec ->
    exec_spec ~params env outer_scope outer_frames spec ~order_hook:None
  | A.Set { op; all; left; right } ->
    let lcols, lrows = exec_query ~params env outer_scope outer_frames left in
    let rcols, rrows = exec_query ~params env outer_scope outer_frames right in
    if List.length lcols <> List.length rcols then
      fail Errors.Type_mismatch "set operation column count mismatch";
    let key row =
      String.concat "\x01" (Array.to_list (Array.map Value.group_key row))
    in
    let count_table rows =
      let t = Hashtbl.create 16 in
      List.iter
        (fun row ->
          let k = key row in
          match Hashtbl.find_opt t k with
          | Some (n, r) -> Hashtbl.replace t k (n + 1, r)
          | None -> Hashtbl.add t k (1, row))
        rows;
      t
    in
    let dedup rows =
      let seen = Hashtbl.create 16 in
      List.filter
        (fun row ->
          let k = key row in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        rows
    in
    let rows =
      match (op, all) with
      | A.S_union, true -> lrows @ rrows
      | A.S_union, false -> dedup (lrows @ rrows)
      | A.S_intersect, false ->
        let rt = count_table rrows in
        dedup (List.filter (fun row -> Hashtbl.mem rt (key row)) lrows)
      | A.S_intersect, true ->
        let rt = count_table rrows in
        List.filter
          (fun row ->
            let k = key row in
            match Hashtbl.find_opt rt k with
            | Some (n, r) when n > 0 ->
              Hashtbl.replace rt k (n - 1, r);
              true
            | _ -> false)
          lrows
      | A.S_except, false ->
        let rt = count_table rrows in
        dedup (List.filter (fun row -> not (Hashtbl.mem rt (key row))) lrows)
      | A.S_except, true ->
        let rt = count_table rrows in
        List.filter
          (fun row ->
            let k = key row in
            match Hashtbl.find_opt rt k with
            | Some (n, r) when n > 0 ->
              Hashtbl.replace rt k (n - 1, r);
              false
            | _ -> true)
          lrows
    in
    let cols =
      List.map2
        (fun (l : Outcol.t) (r : Outcol.t) ->
          { l with Outcol.nullable = l.Outcol.nullable || r.Outcol.nullable })
        lcols rcols
    in
    (cols, rows)

(* ------------------------------------------------------------------ *)
(* Statement: top-level ORDER BY                                      *)

let execute_with_params env (stmt : A.statement) (params : params) : Rowset.t =
  (* stage-two validation gives coherent errors before evaluation *)
  ignore (Semantic.statement_columns env.sem stmt);
  let cols, rows =
    match stmt.A.body with
    | A.Spec spec
      when (not (Semantic.is_grouped spec))
           && (not spec.A.distinct)
           && stmt.A.order_by <> [] ->
      (* expression-capable ORDER BY path: resolve order keys to
         expressions (positions and labels map to select expressions) *)
      let probe_scope =
        Semantic.spec_scope env.sem Scope.root spec
      in
      let probe_items = Semantic.expand_select env.sem probe_scope spec in
      let key_exprs =
        List.map
          (fun (o : A.order_item) ->
            let expr =
              match o.A.key with
              | A.Ord_position i -> snd (List.nth probe_items (i - 1))
              | A.Ord_expr (A.Column { qualifier = None; name; _ } as e) -> (
                let by_label =
                  List.find_opt
                    (fun ((c : Outcol.t), _) ->
                      String.uppercase_ascii c.Outcol.label
                      = String.uppercase_ascii name)
                    probe_items
                in
                match by_label with Some (_, e') -> e' | None -> e)
              | A.Ord_expr e -> e
            in
            (o, expr))
          stmt.A.order_by
      in
      exec_spec ~params env Scope.root [] spec ~order_hook:(Some key_exprs)
    | _ ->
      let cols, rows = exec_query ~params env Scope.root [] stmt.A.body in
      (* for a grouped/distinct spec, column keys may also be matched
         by resolving them against the select items *)
      let probe =
        match stmt.A.body with
        | A.Spec spec ->
          let scope = Semantic.spec_scope env.sem Scope.root spec in
          Some (scope, Semantic.expand_select env.sem scope spec)
        | A.Set _ -> None
      in
      let rows =
        if stmt.A.order_by = [] then rows
        else begin
          let index_of (o : A.order_item) =
            match probe with
            | Some (scope, items) -> (
              match Semantic.order_key_output_index env.sem scope items o with
              | Some i -> i
              | None ->
                fail Errors.Unknown_column
                  "ORDER BY key is not an output column")
            | None -> (
              match o.A.key with
              | A.Ord_position i -> i - 1
              | A.Ord_expr (A.Column { qualifier = None; name; _ }) -> (
                let rec go i = function
                  | [] ->
                    fail Errors.Unknown_column
                      "ORDER BY key %s is not an output column" name
                  | (c : Outcol.t) :: rest ->
                    if
                      String.uppercase_ascii c.Outcol.label
                      = String.uppercase_ascii name
                    then i
                    else go (i + 1) rest
                in
                go 0 cols)
              | A.Ord_expr _ ->
                fail Errors.Unsupported
                  "ORDER BY expressions over set operations")
          in
          let keys = List.map (fun o -> (index_of o, o.A.descending)) stmt.A.order_by in
          let compare_rows a b =
            let rec go = function
              | [] -> 0
              | (i, desc) :: rest ->
                let c = Value.compare_sql a.(i) b.(i) in
                let c = if desc then -c else c in
                if c <> 0 then c else go rest
            in
            go keys
          in
          List.stable_sort compare_rows rows
        end
      in
      (cols, rows)
  in
  Rowset.make (Outcol.to_schema cols) rows

let execute env stmt = execute_with_params env stmt [||]

let execute_sql env sql =
  let stmt =
    try Aqua_sql.Parser.parse sql
    with Aqua_sql.Parser.Parse_error { pos; message } ->
      raise
        (Errors.Error { Errors.kind = Errors.Syntax; message; pos = Some pos })
  in
  execute env stmt
