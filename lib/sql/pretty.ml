module Sql_type = Aqua_relational.Sql_type
open Ast

let quote_ident s =
  let plain =
    String.length s > 0
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
           | _ -> false)
         s
  in
  if plain then s
  else
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let string_lit s = "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let literal_to_string = function
  | L_int i -> string_of_int i
  | L_num (_, s) -> s
  | L_string s -> string_lit s
  | L_date s -> "DATE " ^ string_lit s
  | L_time s -> "TIME " ^ string_lit s
  | L_timestamp s -> "TIMESTAMP " ^ string_lit s
  | L_bool b -> if b then "TRUE" else "FALSE"
  | L_null -> "NULL"

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

(* Precedence levels for parenthesization: OR=1, AND=2, NOT=3,
   predicates=4, additive=5, multiplicative=6, unary=7, primary=8. *)
let rec prec = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ -> 3
  | Cmp _ | Is_null _ | Between _ | Like _ | In_list _ | In_query _
  | Quantified _ ->
    4
  | Arith ((Add | Sub), _, _) | Concat _ -> 5
  | Arith ((Mul | Div), _, _) -> 6
  | Neg _ -> 7
  | Lit _ | Column _ | Param _ | Func _ | Agg _ | Cast _ | Case _ | Exists _
  | Scalar_subquery _ ->
    8

and expr_to_string e = emit 0 e

and emit outer e =
  let s =
    match e with
    | Lit l -> literal_to_string l
    | Column { qualifier; name; _ } -> (
      match qualifier with
      | None -> quote_ident name
      | Some q -> quote_ident q ^ "." ^ quote_ident name)
    | Param _ -> "?"
    | Arith (op, a, b) ->
      let p = prec e in
      emit p a ^ " " ^ arith_to_string op ^ " " ^ emit (p + 1) b
    | Concat (a, b) -> emit 5 a ^ " || " ^ emit 6 b
    | Neg a -> "-" ^ emit 7 a
    | Cmp (op, a, b) -> emit 5 a ^ " " ^ cmp_to_string op ^ " " ^ emit 5 b
    | And (a, b) -> emit 2 a ^ " AND " ^ emit 2 b
    | Or (a, b) -> emit 1 a ^ " OR " ^ emit 1 b
    | Not a -> "NOT " ^ emit 3 a
    | Is_null { arg; negated } ->
      emit 5 arg ^ (if negated then " IS NOT NULL" else " IS NULL")
    | Between { arg; low; high; negated } ->
      emit 5 arg
      ^ (if negated then " NOT BETWEEN " else " BETWEEN ")
      ^ emit 5 low ^ " AND " ^ emit 5 high
    | Like { arg; pattern; escape; negated } ->
      emit 5 arg
      ^ (if negated then " NOT LIKE " else " LIKE ")
      ^ emit 5 pattern
      ^ (match escape with None -> "" | Some e -> " ESCAPE " ^ emit 5 e)
    | In_list { arg; items; negated } ->
      emit 5 arg
      ^ (if negated then " NOT IN (" else " IN (")
      ^ String.concat ", " (List.map expr_to_string items)
      ^ ")"
    | In_query { arg; query; negated } ->
      emit 5 arg
      ^ (if negated then " NOT IN (" else " IN (")
      ^ query_to_string query ^ ")"
    | Exists q -> "EXISTS (" ^ query_to_string q ^ ")"
    | Scalar_subquery q -> "(" ^ query_to_string q ^ ")"
    | Quantified { op; quantifier; arg; query } ->
      emit 5 arg ^ " " ^ cmp_to_string op
      ^ (match quantifier with Q_any -> " ANY (" | Q_all -> " ALL (")
      ^ query_to_string query ^ ")"
    | Func { name; args } -> (
      (* special keyword-argument forms are re-emitted in their
         canonical SQL-92 spelling *)
      match (name, args) with
      | "POSITION", [ a; b ] ->
        "POSITION(" ^ expr_to_string a ^ " IN " ^ expr_to_string b ^ ")"
      | ( ( "EXTRACT_YEAR" | "EXTRACT_MONTH" | "EXTRACT_DAY" | "EXTRACT_HOUR"
          | "EXTRACT_MINUTE" | "EXTRACT_SECOND" ),
          [ a ] ) ->
        let field = String.sub name 8 (String.length name - 8) in
        "EXTRACT(" ^ field ^ " FROM " ^ expr_to_string a ^ ")"
      | _ ->
        name ^ "(" ^ String.concat ", " (List.map expr_to_string args) ^ ")")
    | Agg { func = A_count_star; _ } -> "COUNT(*)"
    | Agg { func; distinct; arg } ->
      agg_func_name func ^ "("
      ^ (if distinct then "DISTINCT " else "")
      ^ (match arg with Some a -> expr_to_string a | None -> "*")
      ^ ")"
    | Cast (a, ty) ->
      "CAST(" ^ expr_to_string a ^ " AS " ^ Sql_type.to_string ty ^ ")"
    | Case { operand; branches; else_ } ->
      "CASE"
      ^ (match operand with None -> "" | Some o -> " " ^ expr_to_string o)
      ^ String.concat ""
          (List.map
             (fun (w, t) ->
               " WHEN " ^ expr_to_string w ^ " THEN " ^ expr_to_string t)
             branches)
      ^ (match else_ with None -> "" | Some e -> " ELSE " ^ expr_to_string e)
      ^ " END"
  in
  if prec e < outer then "(" ^ s ^ ")" else s

and select_item_to_string = function
  | Star -> "*"
  | Table_star t -> quote_ident t ^ ".*"
  | Expr_item (e, alias) -> (
    expr_to_string e
    ^ match alias with None -> "" | Some a -> " AS " ^ quote_ident a)

and table_name_to_sql (n : table_name) =
  String.concat "."
    (List.filter_map Fun.id
       [ Option.map quote_ident n.catalog;
         Option.map quote_ident n.schema;
         Some (quote_ident n.table) ])

and table_primary_to_string = function
  | Table_ref_name { name; alias; _ } -> (
    table_name_to_sql name
    ^ match alias with None -> "" | Some a -> " AS " ^ quote_ident a)
  | Derived { query; alias } ->
    "(" ^ query_to_string query ^ ") AS " ^ quote_ident alias

and table_ref_to_string = function
  | Primary p -> table_primary_to_string p
  | Join { kind; left; right; cond } -> (
    let kw =
      match kind with
      | J_inner -> " INNER JOIN "
      | J_left -> " LEFT OUTER JOIN "
      | J_right -> " RIGHT OUTER JOIN "
      | J_full -> " FULL OUTER JOIN "
      | J_cross -> " CROSS JOIN "
    in
    let right_s =
      match right with
      | Primary p -> table_primary_to_string p
      | Join _ -> "(" ^ table_ref_to_string right ^ ")"
    in
    table_ref_to_string left ^ kw ^ right_s
    ^ match cond with None -> "" | Some c -> " ON " ^ expr_to_string c)

and query_spec_to_string (spec : query_spec) =
  "SELECT "
  ^ (if spec.distinct then "DISTINCT " else "")
  ^ String.concat ", " (List.map select_item_to_string spec.select)
  ^ " FROM "
  ^ String.concat ", " (List.map table_ref_to_string spec.from)
  ^ (match spec.where with
    | None -> ""
    | Some w -> " WHERE " ^ expr_to_string w)
  ^ (match spec.group_by with
    | [] -> ""
    | cols -> " GROUP BY " ^ String.concat ", " (List.map expr_to_string cols))
  ^
  match spec.having with
  | None -> ""
  | Some h -> " HAVING " ^ expr_to_string h

and query_to_string = function
  | Spec spec -> query_spec_to_string spec
  | Set { op; all; left; right } ->
    let kw =
      match op with
      | S_union -> "UNION"
      | S_intersect -> "INTERSECT"
      | S_except -> "EXCEPT"
    in
    let wrap q =
      match q with
      | Spec _ -> query_to_string q
      | Set _ -> "(" ^ query_to_string q ^ ")"
    in
    wrap left ^ " " ^ kw ^ (if all then " ALL " else " ") ^ wrap right

let order_item_to_string (o : order_item) =
  (match o.key with
  | Ord_position i -> string_of_int i
  | Ord_expr e -> expr_to_string e)
  ^ if o.descending then " DESC" else ""

let statement_to_string (stmt : statement) =
  query_to_string stmt.body
  ^
  match stmt.order_by with
  | [] -> ""
  | items ->
    " ORDER BY " ^ String.concat ", " (List.map order_item_to_string items)
