(** Rendering the SQL AST back to SQL-92 text.

    Emitted text always re-parses to a structurally equal AST (the
    round-trip property tested by the suite), which makes it the
    workhorse of the workload generator and of error messages. *)

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string
val statement_to_string : Ast.statement -> string
