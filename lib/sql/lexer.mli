(** SQL-92 lexical analysis (paper stage one, first half). *)

type token =
  | Ident of string        (** unquoted identifier or keyword, as written *)
  | Quoted_ident of string (** ["..."]-delimited identifier, exact *)
  | String_lit of string   (** ['...'] with [''] escapes decoded *)
  | Int_lit of int
  | Num_lit of float * string (** value, original spelling *)
  | Punct of string        (** operators and delimiters, e.g. ["<="] *)
  | Eof

type located = {
  token : token;
  pos : Ast.pos;
}

exception Lex_error of { pos : Ast.pos; message : string }

val tokenize : string -> located array
(** @raise Lex_error on an unrecognized character or unterminated
    literal. The result always ends with an [Eof] token. *)

val token_to_string : token -> string
