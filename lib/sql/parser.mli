(** SQL-92 SELECT recursive-descent parser (paper stage one).

    Syntactically invalid SQL is rejected immediately with a
    positioned [Parse_error]; all semantic checks are deferred to the
    translator's later stages, exactly as the paper prescribes. *)

exception Parse_error of { pos : Ast.pos; message : string }

val parse : string -> Ast.statement
(** @raise Parse_error on syntax errors (also wraps lexical errors). *)

val parse_expression : string -> Ast.expr
(** Parses a standalone scalar expression — used by tests. *)
