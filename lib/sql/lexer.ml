type token =
  | Ident of string
  | Quoted_ident of string
  | String_lit of string
  | Int_lit of int
  | Num_lit of float * string
  | Punct of string
  | Eof

type located = {
  token : token;
  pos : Ast.pos;
}

exception Lex_error of { pos : Ast.pos; message : string }

let token_to_string = function
  | Ident s -> s
  | Quoted_ident s -> Printf.sprintf "%S" s
  | String_lit s -> Printf.sprintf "'%s'" s
  | Int_lit i -> string_of_int i
  | Num_lit (_, s) -> s
  | Punct s -> s
  | Eof -> "<end of input>"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let current_pos st : Ast.pos = { line = st.line; col = st.pos - st.bol + 1 }

let error st fmt =
  let pos = current_pos st in
  Format.kasprintf (fun message -> raise (Lex_error { pos; message })) fmt

let peek st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let read_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_number st =
  let start = st.pos in
  let seen_dot = ref false in
  let seen_exp = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when is_digit c -> advance st
    | Some '.' when not !seen_dot && not !seen_exp ->
      seen_dot := true;
      advance st
    | Some ('e' | 'E') when not !seen_exp -> (
      (* exponent must be followed by optional sign + digit *)
      match peek2 st with
      | Some c when is_digit c ->
        seen_exp := true;
        advance st;
        advance st
      | Some ('+' | '-') ->
        seen_exp := true;
        advance st;
        advance st
      | _ -> continue := false)
    | _ -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  if (not !seen_dot) && not !seen_exp then
    match int_of_string_opt text with
    | Some i -> Int_lit i
    | None -> Num_lit (float_of_string text, text)
  else Num_lit (float_of_string text, text)

let read_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\'' -> (
      match peek2 st with
      | Some '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        go ()
      | _ -> advance st)
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  String_lit (Buffer.contents buf)

let read_quoted_ident st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated quoted identifier"
    | Some '"' -> (
      match peek2 st with
      | Some '"' ->
        Buffer.add_char buf '"';
        advance st;
        advance st;
        go ()
      | _ -> advance st)
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Quoted_ident (Buffer.contents buf)

let skip_line_comment st =
  while (match peek st with Some c -> c <> '\n' | None -> false) do
    advance st
  done

let skip_block_comment st =
  advance st;
  advance st;
  let rec go () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
      advance st;
      advance st
    | None, _ -> error st "unterminated block comment"
    | _ ->
      advance st;
      go ()
  in
  go ()

let two_char_punct = [ "<="; ">="; "<>"; "!="; "||" ]

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit pos token = toks := { token; pos } :: !toks in
  let rec loop () =
    match peek st with
    | None -> emit (current_pos st) Eof
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      loop ()
    | Some '-' when peek2 st = Some '-' ->
      skip_line_comment st;
      loop ()
    | Some '/' when peek2 st = Some '*' ->
      skip_block_comment st;
      loop ()
    | Some '\'' ->
      let pos = current_pos st in
      emit pos (read_string st);
      loop ()
    | Some '"' ->
      let pos = current_pos st in
      emit pos (read_quoted_ident st);
      loop ()
    | Some c when is_digit c ->
      let pos = current_pos st in
      emit pos (read_number st);
      loop ()
    | Some '.' when (match peek2 st with Some d -> is_digit d | None -> false)
      ->
      let pos = current_pos st in
      emit pos (read_number st);
      loop ()
    | Some c when is_ident_start c ->
      let pos = current_pos st in
      emit pos (Ident (read_ident st));
      loop ()
    | Some c -> (
      let pos = current_pos st in
      let two =
        if st.pos + 1 < String.length src then String.sub src st.pos 2 else ""
      in
      if List.mem two two_char_punct then begin
        advance st;
        advance st;
        emit pos (Punct two);
        loop ()
      end
      else
        match c with
        | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '<' | '>' | '='
        | '?' | ';' ->
          advance st;
          emit pos (Punct (String.make 1 c));
          loop ()
        | _ -> error st "unexpected character %C" c)
  in
  loop ();
  Array.of_list (List.rev !toks)
