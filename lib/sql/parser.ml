module Sql_type = Aqua_relational.Sql_type
open Ast

exception Parse_error of { pos : Ast.pos; message : string }

type state = {
  toks : Lexer.located array;
  mutable idx : int;
  mutable next_param : int;
}

let error_at pos fmt =
  Format.kasprintf (fun message -> raise (Parse_error { pos; message })) fmt

let current st = st.toks.(st.idx)
let peek_token st = (current st).token
let peek_pos st = (current st).pos

let peek_ahead st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).token else Lexer.Eof

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st fmt = error_at (peek_pos st) fmt

(* Keywords that cannot serve as implicit (AS-less) aliases. *)
let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "UNION";
    "INTERSECT"; "EXCEPT"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER";
    "CROSS"; "ON"; "AS"; "AND"; "OR"; "NOT"; "IN"; "IS"; "NULL"; "BETWEEN";
    "LIKE"; "ESCAPE"; "EXISTS"; "ANY"; "ALL"; "SOME"; "DISTINCT"; "CASE";
    "WHEN"; "THEN"; "ELSE"; "END"; "CAST"; "ASC"; "DESC"; "TRUE"; "FALSE" ]

let is_kw token kw =
  match token with
  | Lexer.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let at_kw st kw = is_kw (peek_token st) kw

let eat_kw st kw =
  if at_kw st kw then (advance st; true) else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    error st "expected %s, found %s" kw (Lexer.token_to_string (peek_token st))

let at_punct st p =
  match peek_token st with Lexer.Punct q -> q = p | _ -> false

let eat_punct st p =
  if at_punct st p then (advance st; true) else false

let expect_punct st p =
  if not (eat_punct st p) then
    error st "expected %s, found %s" p (Lexer.token_to_string (peek_token st))

let identifier st =
  match peek_token st with
  | Lexer.Ident s ->
    advance st;
    s
  | Lexer.Quoted_ident s ->
    advance st;
    s
  | t -> error st "expected an identifier, found %s" (Lexer.token_to_string t)

let is_identifier_token = function
  | Lexer.Ident _ | Lexer.Quoted_ident _ -> true
  | _ -> false

let implicit_alias_allowed = function
  | Lexer.Quoted_ident _ -> true
  | Lexer.Ident s -> not (List.mem (String.uppercase_ascii s) reserved)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)

let cmp_of_punct = function
  | "=" -> Some Eq
  | "<>" | "!=" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let agg_of_name name =
  match String.uppercase_ascii name with
  | "COUNT" -> Some A_count
  | "SUM" -> Some A_sum
  | "AVG" -> Some A_avg
  | "MIN" -> Some A_min
  | "MAX" -> Some A_max
  | _ -> None

let parse_type st =
  let name = String.uppercase_ascii (identifier st) in
  let name =
    (* two-word type names *)
    if name = "DOUBLE" && at_kw st "PRECISION" then begin
      advance st;
      "DOUBLE"
    end
    else if name = "CHARACTER" && at_kw st "VARYING" then begin
      advance st;
      "VARCHAR"
    end
    else name
  in
  let args =
    if eat_punct st "(" then begin
      let read_int () =
        match peek_token st with
        | Lexer.Int_lit i ->
          advance st;
          i
        | t -> error st "expected an integer, found %s" (Lexer.token_to_string t)
      in
      let a = read_int () in
      let b = if eat_punct st "," then Some (read_int ()) else None in
      expect_punct st ")";
      Some (a, b)
    end
    else None
  in
  match (name, args) with
  | ("DECIMAL" | "DEC" | "NUMERIC"), Some (p, s) ->
    Sql_type.Decimal (Some (p, Option.value s ~default:0))
  | ("DECIMAL" | "DEC" | "NUMERIC"), None -> Sql_type.Decimal None
  | ("CHAR" | "CHARACTER"), Some (n, None) -> Sql_type.Char n
  | ("CHAR" | "CHARACTER"), None -> Sql_type.Char 1
  | "VARCHAR", Some (n, None) -> Sql_type.Varchar (Some n)
  | "VARCHAR", None -> Sql_type.Varchar None
  | _, None -> (
    match Sql_type.of_string name with
    | Some t -> t
    | None -> error st "unknown SQL type %s" name)
  | _, Some _ -> error st "type %s does not take precision arguments" name

let rec parse_or st =
  let left = parse_and st in
  if eat_kw st "OR" then Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_kw st "AND" then And (left, parse_and st) else left

and parse_not st =
  if eat_kw st "NOT" then Not (parse_not st) else parse_predicate st

(* Row-value constructors are desugared at parse time:
   (a, b) = (c, d)   becomes  a = c AND b = d
   (a, b) < (c, d)   becomes  a < c OR (a = c AND b < d)   (lexicographic)
   (a, b) IN ((1, 2), (3, 4)) becomes an OR of row equalities. *)
and desugar_row_cmp st op rows_l rows_r =
  if List.length rows_l <> List.length rows_r then
    error st "row value constructors have different degrees";
  let conj l =
    match l with
    | [] -> error st "empty row value constructor"
    | first :: rest -> List.fold_left (fun acc e -> And (acc, e)) first rest
  in
  let pairwise f = List.map2 f rows_l rows_r in
  match op with
  | Eq -> conj (pairwise (fun a b -> Cmp (Eq, a, b)))
  | Neq -> Not (conj (pairwise (fun a b -> Cmp (Eq, a, b))))
  | (Lt | Le | Gt | Ge) as ord ->
    (* lexicographic: strict comparison on the first differing column *)
    let strict = match ord with Lt | Le -> Lt | Gt | Ge | Eq | Neq -> Gt in
    let rec build ls rs =
      match (ls, rs) with
      | [ a ], [ b ] -> Cmp (ord, a, b)
      | a :: ls, b :: rs ->
        Or (Cmp (strict, a, b), And (Cmp (Eq, a, b), build ls rs))
      | _ -> assert false
    in
    build rows_l rows_r

and parse_row_or_expr st =
  (* after '(' when a row value constructor is possible: returns either
     a single expression or a row (2+ members) *)
  let first = parse_or st in
  if eat_punct st "," then begin
    let rec go acc =
      if eat_punct st "," then go (parse_or st :: acc) else List.rev acc
    in
    let items = go [ parse_or st; first ] in
    expect_punct st ")";
    `Row items
  end
  else begin
    expect_punct st ")";
    `Single first
  end

and parse_predicate st =
  (* a parenthesized comma list opens a row-value-constructor
     comparison; look ahead to distinguish from a grouped expression *)
  if at_punct st "(" && not (is_kw (peek_ahead st 1) "SELECT") then begin
    let save = st.idx and save_param = st.next_param in
    let restore () =
      st.idx <- save;
      st.next_param <- save_param
    in
    advance st;
    match parse_row_or_expr st with
    | exception Parse_error _ ->
      restore ();
      parse_predicate_simple st
    | `Single _ ->
      restore ();
      parse_predicate_simple st
    | `Row rows_l -> (
      let negated = eat_kw st "NOT" in
      if negated && not (at_kw st "IN") then
        error st "expected IN after NOT in a row predicate";
      if at_kw st "IN" then begin
        advance st;
        expect_punct st "(";
        let read_row () =
          expect_punct st "(";
          match parse_row_or_expr st with
          | `Row r -> r
          | `Single e -> [ e ]
        in
        let first = read_row () in
        let rec go acc =
          if eat_punct st "," then go (read_row () :: acc) else List.rev acc
        in
        let rows = go [ first ] in
        expect_punct st ")";
        let disjunction =
          List.map (fun r -> desugar_row_cmp st Eq rows_l r) rows
          |> function
          | [] -> error st "empty IN list"
          | first :: rest -> List.fold_left (fun acc e -> Or (acc, e)) first rest
        in
        if negated then Not disjunction else disjunction
      end
      else
        match peek_token st with
        | Lexer.Punct p when cmp_of_punct p <> None ->
          let op = Option.get (cmp_of_punct p) in
          advance st;
          expect_punct st "(";
          (match parse_row_or_expr st with
          | `Row rows_r -> desugar_row_cmp st op rows_l rows_r
          | `Single e -> desugar_row_cmp st op rows_l [ e ])
        | t ->
          error st "expected a comparison after a row value constructor, found %s"
            (Lexer.token_to_string t))
  end
  else parse_predicate_simple st

and parse_predicate_simple st =
  let arg = parse_additive st in
  let negated = eat_kw st "NOT" in
  if at_kw st "BETWEEN" then begin
    advance st;
    let low = parse_additive st in
    expect_kw st "AND";
    let high = parse_additive st in
    Between { arg; low; high; negated }
  end
  else if at_kw st "LIKE" then begin
    advance st;
    let pattern = parse_additive st in
    let escape = if eat_kw st "ESCAPE" then Some (parse_additive st) else None in
    Like { arg; pattern; escape; negated }
  end
  else if at_kw st "IN" then begin
    advance st;
    expect_punct st "(";
    if at_kw st "SELECT" then begin
      let query = parse_query st in
      expect_punct st ")";
      In_query { arg; query; negated }
    end
    else begin
      let items = parse_expr_list st in
      expect_punct st ")";
      In_list { arg; items; negated }
    end
  end
  else if negated then
    error st "expected BETWEEN, LIKE or IN after NOT"
  else if at_kw st "IS" then begin
    advance st;
    let negated = eat_kw st "NOT" in
    expect_kw st "NULL";
    Is_null { arg; negated }
  end
  else
    match peek_token st with
    | Lexer.Punct p when cmp_of_punct p <> None -> (
      let op = Option.get (cmp_of_punct p) in
      advance st;
      let quantifier =
        if at_kw st "ANY" || at_kw st "SOME" then begin
          advance st;
          Some Q_any
        end
        else if at_kw st "ALL" then begin
          advance st;
          Some Q_all
        end
        else None
      in
      match quantifier with
      | Some quantifier ->
        expect_punct st "(";
        let query = parse_query st in
        expect_punct st ")";
        Quantified { op; quantifier; arg; query }
      | None ->
        let right = parse_additive st in
        Cmp (op, arg, right))
    | _ -> arg

and parse_additive st =
  let rec go left =
    if at_punct st "+" then begin
      advance st;
      go (Arith (Add, left, parse_multiplicative st))
    end
    else if at_punct st "-" then begin
      advance st;
      go (Arith (Sub, left, parse_multiplicative st))
    end
    else if at_punct st "||" then begin
      advance st;
      go (Concat (left, parse_multiplicative st))
    end
    else left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    if at_punct st "*" then begin
      advance st;
      go (Arith (Mul, left, parse_unary st))
    end
    else if at_punct st "/" then begin
      advance st;
      go (Arith (Div, left, parse_unary st))
    end
    else left
  in
  go (parse_unary st)

and parse_unary st =
  if eat_punct st "-" then Neg (parse_unary st)
  else if eat_punct st "+" then parse_unary st
  else parse_primary st

and parse_expr_list st =
  let first = parse_or st in
  let rec go acc =
    if eat_punct st "," then go (parse_or st :: acc) else List.rev acc
  in
  go [ first ]

and parse_case st =
  (* CASE already consumed *)
  let operand = if at_kw st "WHEN" then None else Some (parse_or st) in
  let rec branches acc =
    if eat_kw st "WHEN" then begin
      let w = parse_or st in
      expect_kw st "THEN";
      let t = parse_or st in
      branches ((w, t) :: acc)
    end
    else List.rev acc
  in
  let branches = branches [] in
  if branches = [] then error st "CASE requires at least one WHEN branch";
  let else_ = if eat_kw st "ELSE" then Some (parse_or st) else None in
  expect_kw st "END";
  Case { operand; branches; else_ }

and parse_special_function st upper =
  (* Called with the name consumed and "(" consumed.  Handles the
     SQL-92 keyword-argument forms; returns None if [upper] is not a
     special form (caller then parses a plain argument list). *)
  match upper with
  | "POSITION" ->
    let needle = parse_additive st in
    expect_kw st "IN";
    let hay = parse_additive st in
    expect_punct st ")";
    Some (Func { name = "POSITION"; args = [ needle; hay ] })
  | "EXTRACT" ->
    let field = String.uppercase_ascii (identifier st) in
    if not (List.mem field [ "YEAR"; "MONTH"; "DAY"; "HOUR"; "MINUTE"; "SECOND" ])
    then error st "unknown EXTRACT field %s" field;
    expect_kw st "FROM";
    let arg = parse_or st in
    expect_punct st ")";
    Some (Func { name = "EXTRACT_" ^ field; args = [ arg ] })
  | "TRIM" ->
    let mode =
      if at_kw st "LEADING" then (advance st; "LTRIM")
      else if at_kw st "TRAILING" then (advance st; "RTRIM")
      else if at_kw st "BOTH" then (advance st; "TRIM")
      else "TRIM"
    in
    (* optional trim character then FROM, or a bare expression *)
    if eat_kw st "FROM" then begin
      let arg = parse_or st in
      expect_punct st ")";
      Some (Func { name = mode; args = [ arg ] })
    end
    else begin
      let first = parse_or st in
      if eat_kw st "FROM" then begin
        let arg = parse_or st in
        expect_punct st ")";
        Some (Func { name = mode; args = [ arg; first ] })
      end
      else begin
        expect_punct st ")";
        Some (Func { name = mode; args = [ first ] })
      end
    end
  | "SUBSTRING" ->
    let arg = parse_or st in
    if eat_kw st "FROM" then begin
      let start = parse_or st in
      let len = if eat_kw st "FOR" then Some (parse_or st) else None in
      expect_punct st ")";
      let args = arg :: start :: Option.to_list len in
      Some (Func { name = "SUBSTRING"; args })
    end
    else begin
      let args =
        if eat_punct st "," then begin
          let start = parse_or st in
          let len = if eat_punct st "," then Some (parse_or st) else None in
          arg :: start :: Option.to_list len
        end
        else [ arg ]
      in
      expect_punct st ")";
      Some (Func { name = "SUBSTRING"; args })
    end
  | _ -> None

and parse_function_call st name =
  (* "(" consumed *)
  let upper = String.uppercase_ascii name in
  match agg_of_name upper with
  | Some agg ->
    if eat_punct st "*" then begin
      if agg <> A_count then error st "only COUNT accepts *";
      expect_punct st ")";
      Agg { func = A_count_star; distinct = false; arg = None }
    end
    else begin
      let distinct =
        if at_kw st "DISTINCT" then (advance st; true)
        else begin
          ignore (eat_kw st "ALL");
          false
        end
      in
      let arg = parse_or st in
      expect_punct st ")";
      Agg { func = agg; distinct; arg = Some arg }
    end
  | None -> (
    match parse_special_function st upper with
    | Some e -> e
    | None ->
      let args =
        if at_punct st ")" then []
        else parse_expr_list st
      in
      expect_punct st ")";
      Func { name = upper; args })

and parse_primary st =
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.Int_lit i ->
    advance st;
    Lit (L_int i)
  | Lexer.Num_lit (f, s) ->
    advance st;
    Lit (L_num (f, s))
  | Lexer.String_lit s ->
    advance st;
    Lit (L_string s)
  | Lexer.Punct "?" ->
    advance st;
    let n = st.next_param in
    st.next_param <- n + 1;
    Param n
  | Lexer.Punct "(" -> (
    advance st;
    if at_kw st "SELECT" then begin
      let query = parse_query st in
      expect_punct st ")";
      Scalar_subquery query
    end
    else begin
      let e = parse_or st in
      expect_punct st ")";
      e
    end)
  | Lexer.Ident _ | Lexer.Quoted_ident _ -> (
    let token = peek_token st in
    let upper =
      match token with
      | Lexer.Ident s -> String.uppercase_ascii s
      | _ -> ""
    in
    match upper with
    | "NULL" ->
      advance st;
      Lit L_null
    | "TRUE" ->
      advance st;
      Lit (L_bool true)
    | "FALSE" ->
      advance st;
      Lit (L_bool false)
    | "DATE" when (match peek_ahead st 1 with Lexer.String_lit _ -> true | _ -> false) -> (
      advance st;
      match peek_token st with
      | Lexer.String_lit s ->
        advance st;
        Lit (L_date s)
      | _ -> assert false)
    | "TIME" when (match peek_ahead st 1 with Lexer.String_lit _ -> true | _ -> false) -> (
      advance st;
      match peek_token st with
      | Lexer.String_lit s ->
        advance st;
        Lit (L_time s)
      | _ -> assert false)
    | "TIMESTAMP" when (match peek_ahead st 1 with Lexer.String_lit _ -> true | _ -> false) -> (
      advance st;
      match peek_token st with
      | Lexer.String_lit s ->
        advance st;
        Lit (L_timestamp s)
      | _ -> assert false)
    | "CASE" ->
      advance st;
      parse_case st
    | "CAST" ->
      advance st;
      expect_punct st "(";
      let e = parse_or st in
      expect_kw st "AS";
      let ty = parse_type st in
      expect_punct st ")";
      Cast (e, ty)
    | "EXISTS" ->
      advance st;
      expect_punct st "(";
      let q = parse_query st in
      expect_punct st ")";
      Exists q
    | _ ->
      let name = identifier st in
      if at_punct st "(" then begin
        advance st;
        parse_function_call st name
      end
      else if at_punct st "." && is_identifier_token (peek_ahead st 1) then begin
        advance st;
        let col = identifier st in
        Column { qualifier = Some name; name = col; pos }
      end
      else Column { qualifier = None; name; pos })
  | t -> error st "unexpected %s in expression" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)

and parse_select_item st =
  if at_punct st "*" then begin
    advance st;
    Star
  end
  else if
    is_identifier_token (peek_token st)
    && (match peek_ahead st 1 with Lexer.Punct "." -> true | _ -> false)
    && (match peek_ahead st 2 with Lexer.Punct "*" -> true | _ -> false)
  then begin
    let t = identifier st in
    advance st;
    (* . *)
    advance st;
    (* * *)
    Table_star t
  end
  else begin
    let e = parse_or st in
    let alias =
      if eat_kw st "AS" then Some (identifier st)
      else if implicit_alias_allowed (peek_token st) then Some (identifier st)
      else None
    in
    Expr_item (e, alias)
  end

and parse_table_name st pos =
  let first = identifier st in
  (* Up to three dot-separated parts: catalog.schema.table *)
  if eat_punct st "." then begin
    let second = identifier st in
    if eat_punct st "." then begin
      let third = identifier st in
      { catalog = Some first; schema = Some second; table = third }
    end
    else { catalog = None; schema = Some first; table = second }
  end
  else begin
    ignore pos;
    { catalog = None; schema = None; table = first }
  end

and parse_table_primary st =
  let pos = peek_pos st in
  if at_punct st "(" then begin
    advance st;
    if at_kw st "SELECT" then begin
      let query = parse_query st in
      expect_punct st ")";
      ignore (eat_kw st "AS");
      if not (is_identifier_token (peek_token st)) then
        error st "a derived table requires an alias";
      let alias = identifier st in
      Primary (Derived { query; alias })
    end
    else begin
      (* parenthesized join *)
      let tr = parse_table_ref st in
      expect_punct st ")";
      tr
    end
  end
  else begin
    let name = parse_table_name st pos in
    let alias =
      if eat_kw st "AS" then Some (identifier st)
      else if implicit_alias_allowed (peek_token st) then Some (identifier st)
      else None
    in
    Primary (Table_ref_name { name; alias; pos })
  end

and parse_table_ref st =
  let rec go left =
    let kind =
      if at_kw st "INNER" then begin
        advance st;
        expect_kw st "JOIN";
        Some J_inner
      end
      else if at_kw st "JOIN" then begin
        advance st;
        Some J_inner
      end
      else if at_kw st "LEFT" then begin
        advance st;
        ignore (eat_kw st "OUTER");
        expect_kw st "JOIN";
        Some J_left
      end
      else if at_kw st "RIGHT" then begin
        advance st;
        ignore (eat_kw st "OUTER");
        expect_kw st "JOIN";
        Some J_right
      end
      else if at_kw st "FULL" then begin
        advance st;
        ignore (eat_kw st "OUTER");
        expect_kw st "JOIN";
        Some J_full
      end
      else if at_kw st "CROSS" then begin
        advance st;
        expect_kw st "JOIN";
        Some J_cross
      end
      else None
    in
    match kind with
    | None -> left
    | Some J_cross ->
      let right = parse_table_primary st in
      go (Join { kind = J_cross; left; right; cond = None })
    | Some kind ->
      let right = parse_table_primary st in
      expect_kw st "ON";
      let cond = parse_or st in
      go (Join { kind; left; right; cond = Some cond })
  in
  go (parse_table_primary st)

and parse_query_spec st =
  expect_kw st "SELECT";
  let distinct =
    if at_kw st "DISTINCT" then (advance st; true)
    else begin
      ignore (eat_kw st "ALL");
      false
    end
  in
  let select =
    let first = parse_select_item st in
    let rec go acc =
      if eat_punct st "," then go (parse_select_item st :: acc)
      else List.rev acc
    in
    go [ first ]
  in
  expect_kw st "FROM";
  let from =
    let first = parse_table_ref st in
    let rec go acc =
      if eat_punct st "," then go (parse_table_ref st :: acc) else List.rev acc
    in
    go [ first ]
  in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if at_kw st "GROUP" then begin
      advance st;
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if eat_kw st "HAVING" then Some (parse_or st) else None in
  { distinct; select; from; where; group_by; having }

and parse_query_primary st =
  if at_punct st "(" then begin
    advance st;
    let q = parse_query st in
    expect_punct st ")";
    q
  end
  else Spec (parse_query_spec st)

and parse_query_term st =
  let rec go left =
    if at_kw st "INTERSECT" then begin
      advance st;
      let all = eat_kw st "ALL" in
      let right = parse_query_primary st in
      go (Set { op = S_intersect; all; left; right })
    end
    else left
  in
  go (parse_query_primary st)

and parse_query st =
  let rec go left =
    if at_kw st "UNION" then begin
      advance st;
      let all = eat_kw st "ALL" in
      let right = parse_query_term st in
      go (Set { op = S_union; all; left; right })
    end
    else if at_kw st "EXCEPT" then begin
      advance st;
      let all = eat_kw st "ALL" in
      let right = parse_query_term st in
      go (Set { op = S_except; all; left; right })
    end
    else left
  in
  go (parse_query_term st)

let parse_order_by st =
  if not (at_kw st "ORDER") then []
  else begin
    advance st;
    expect_kw st "BY";
    let item () =
      let key =
        match peek_token st with
        | Lexer.Int_lit i ->
          advance st;
          Ord_position i
        | _ -> Ord_expr (parse_or st)
      in
      let descending =
        if eat_kw st "DESC" then true
        else begin
          ignore (eat_kw st "ASC");
          false
        end
      in
      { key; descending }
    in
    let first = item () in
    let rec go acc =
      if eat_punct st "," then go (item () :: acc) else List.rev acc
    in
    go [ first ]
  end

let run_parser src f =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error { pos; message } -> raise (Parse_error { pos; message })
  in
  let st = { toks; idx = 0; next_param = 1 } in
  let result = f st in
  ignore (eat_punct st ";");
  (match peek_token st with
  | Lexer.Eof -> ()
  | t -> error st "unexpected %s after end of statement" (Lexer.token_to_string t));
  result

let parse src =
  run_parser src (fun st ->
      let body = parse_query st in
      let order_by = parse_order_by st in
      { body; order_by })

let parse_expression src = run_parser src parse_or
