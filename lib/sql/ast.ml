(* Abstract syntax of the SQL-92 SELECT dialect handled by the driver
   (paper section 2.2 "Problem Scope": read-only SQL-92).  The same AST
   feeds the translator (stage one output) and the baseline SQL
   engine. *)

module Sql_type = Aqua_relational.Sql_type

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

(* Up to catalog.schema.table; schema names may contain slashes when
   quoted (paper Figure 2 maps ".ds file paths" to SQL schemas). *)
type table_name = {
  catalog : string option;
  schema : string option;
  table : string;
}

type literal =
  | L_int of int
  | L_num of float * string  (* value and original spelling *)
  | L_string of string
  | L_date of string
  | L_time of string
  | L_timestamp of string
  | L_bool of bool
  | L_null

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge
type arith_op = Add | Sub | Mul | Div
type quantifier = Q_any | Q_all
type agg_func = A_count_star | A_count | A_sum | A_avg | A_min | A_max

type join_kind = J_inner | J_left | J_right | J_full | J_cross
type set_op = S_union | S_intersect | S_except

type expr =
  | Lit of literal
  | Column of { qualifier : string option; name : string; pos : pos }
  | Param of int  (* 1-based JDBC '?' parameter *)
  | Arith of arith_op * expr * expr
  | Neg of expr
  | Concat of expr * expr
  | Cmp of cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of { arg : expr; negated : bool }
  | Between of { arg : expr; low : expr; high : expr; negated : bool }
  | Like of { arg : expr; pattern : expr; escape : expr option; negated : bool }
  | In_list of { arg : expr; items : expr list; negated : bool }
  | In_query of { arg : expr; query : query; negated : bool }
  | Exists of query
  | Scalar_subquery of query
  | Quantified of {
      op : cmp_op;
      quantifier : quantifier;
      arg : expr;
      query : query;
    }
  | Func of { name : string; args : expr list }
  | Agg of { func : agg_func; distinct : bool; arg : expr option }
  | Cast of expr * Sql_type.t
  | Case of {
      operand : expr option;
      branches : (expr * expr) list;
      else_ : expr option;
    }

and select_item =
  | Star
  | Table_star of string
  | Expr_item of expr * string option  (* expression, AS alias *)

and table_primary =
  | Table_ref_name of { name : table_name; alias : string option; pos : pos }
  | Derived of { query : query; alias : string }

and table_ref =
  | Primary of table_primary
  | Join of {
      kind : join_kind;
      left : table_ref;
      right : table_ref;
      cond : expr option;  (* None only for CROSS JOIN *)
    }

and query_spec = {
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and query =
  | Spec of query_spec
  | Set of { op : set_op; all : bool; left : query; right : query }

type order_key = Ord_position of int | Ord_expr of expr
type order_item = { key : order_key; descending : bool }

type statement = {
  body : query;
  order_by : order_item list;
}

(* ------------------------------------------------------------------ *)
(* Small structural helpers shared by the semantic phases.            *)

let table_name_to_string (n : table_name) =
  String.concat "."
    (List.filter_map Fun.id [ n.catalog; n.schema; Some n.table ])

let rec fold_expr : 'a. ('a -> expr -> 'a) -> 'a -> expr -> 'a =
  fun f acc e ->
  let acc = f acc e in
  let fold_q acc _q = acc in
  (* subqueries are scope boundaries; callers recurse explicitly *)
  match e with
  | Lit _ | Column _ | Param _ -> acc
  | Neg a | Not a | Cast (a, _) -> fold_expr f acc a
  | Arith (_, a, b) | Concat (a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    fold_expr f (fold_expr f acc a) b
  | Is_null { arg; _ } -> fold_expr f acc arg
  | Between { arg; low; high; _ } ->
    fold_expr f (fold_expr f (fold_expr f acc arg) low) high
  | Like { arg; pattern; escape; _ } ->
    let acc = fold_expr f (fold_expr f acc arg) pattern in
    (match escape with None -> acc | Some e -> fold_expr f acc e)
  | In_list { arg; items; _ } ->
    List.fold_left (fold_expr f) (fold_expr f acc arg) items
  | In_query { arg; query; _ } -> fold_q (fold_expr f acc arg) query
  | Exists q -> fold_q acc q
  | Scalar_subquery q -> fold_q acc q
  | Quantified { arg; query; _ } -> fold_q (fold_expr f acc arg) query
  | Func { args; _ } -> List.fold_left (fold_expr f) acc args
  | Agg { arg; _ } -> (
    match arg with None -> acc | Some a -> fold_expr f acc a)
  | Case { operand; branches; else_ } ->
    let acc = match operand with None -> acc | Some o -> fold_expr f acc o in
    let acc =
      List.fold_left
        (fun acc (w, t) -> fold_expr f (fold_expr f acc w) t)
        acc branches
    in
    (match else_ with None -> acc | Some e -> fold_expr f acc e)

let contains_aggregate expr =
  fold_expr (fun acc e -> acc || match e with Agg _ -> true | _ -> false)
    false expr

let subqueries_of_expr expr =
  fold_expr
    (fun acc e ->
      match e with
      | In_query { query; _ }
      | Exists query
      | Scalar_subquery query
      | Quantified { query; _ } ->
        query :: acc
      | _ -> acc)
    [] expr

let rec table_refs_of_query = function
  | Spec spec -> spec.from
  | Set { left; right; _ } ->
    table_refs_of_query left @ table_refs_of_query right

let agg_func_name = function
  | A_count_star | A_count -> "COUNT"
  | A_sum -> "SUM"
  | A_avg -> "AVG"
  | A_min -> "MIN"
  | A_max -> "MAX"
