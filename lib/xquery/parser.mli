(** A parser for the XQuery fragment this library prints.

    Covers everything {!Pretty} emits — prologs with schema imports,
    FLWOR expressions (including the BEA [group … by] extension),
    path expressions with predicates, direct element constructors with
    enclosed expressions, quantifiers, conditionals, and the operator
    grammar — plus [(: comments :)]. This is the entry point for
    logical data services authored as query text, and for executing
    raw XQuery against a server.

    [Pretty.query_to_string] followed by [parse_query] is the identity
    up to formatting (a property exercised by the test suite). *)

exception Parse_error of { offset : int; message : string }

val parse_query : string -> Ast.query
(** Parses a prolog followed by a body expression.
    @raise Parse_error on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parses a standalone expression (no prolog).
    @raise Parse_error on malformed input. *)

(** A [declare function] in a library module (.ds file). Types are
    kept as raw text — the platform layer interprets them. *)
type function_decl = {
  fd_name : string;       (** possibly prefixed, e.g. "f1:CUSTOMERS" *)
  fd_params : (string * string) list;  (** variable name, type text *)
  fd_return : string;     (** e.g. "schema-element(t1:CUSTOMERS)*" *)
  fd_body : Ast.expr option;  (** [None] = external *)
}

val parse_library : string -> Ast.prolog * function_decl list
(** Parses a library module: a prolog of schema imports followed by
    [declare function] declarations (external or with bodies) — the
    shape of a data-service [.ds] file (paper Example 2).
    @raise Parse_error on malformed input. *)
