(* Abstract syntax of the XQuery fragment the translator emits and the
   interpreter executes: FLWOR expressions (with BEA's group-by
   extension), path expressions over flat element trees, node
   constructors, conditionals, quantifiers and function calls.

   Variable names are stored without the leading '$'. *)

module Atomic = Aqua_xml.Atomic

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Idiv | Mod

type binop =
  | B_and
  | B_or
  | B_general of cmp  (* existential comparison: =, !=, <, ... *)
  | B_value of cmp    (* value comparison: eq, ne, lt, ... *)
  | B_arith of arith

type empty_order = Empty_least | Empty_greatest

type order_spec = {
  key : expr;
  descending : bool;
  empty : empty_order;
}

and clause =
  | For of { var : string; source : expr }
  | Let of { var : string; value : expr }
  | Where of expr
  (* BEA XQuery group-by extension (paper section 3.5):
     [group $grouped as $partition by K1 as $k1, K2 as $k2].
     After grouping only the key variables and the partition variable
     remain bound; the partition holds the grouped variable's items. *)
  | Group of {
      grouped : string;
      partition : string;
      keys : (expr * string) list;
    }
  | Order_by of order_spec list
  (* Physical operator introduced by the optimizer (never produced by
     the translator or parser): a hash equi-join.  Logically equivalent
     to [For {var; source}] followed by [Where (Binop (cmp, probe_key,
     build_key))] where [cmp] is [B_value Eq] when [value_cmp] and
     [B_general Eq] otherwise.  [source] and [probe_key] are evaluated
     in the incoming environment; [build_key] additionally sees [var].
     The build side hashes [source]'s items by [build_key]; each
     incoming tuple probes with [probe_key].  Matches are emitted in
     [source] order, preserving nested-loop tuple order. *)
  | Hash_join of {
      var : string;
      source : expr;
      build_key : expr;
      probe_key : expr;
      value_cmp : bool;
    }

and flwor = {
  clauses : clause list;
  return : expr;
}

and step = {
  name : string;  (** child element name; ["*"] matches any element *)
  predicates : expr list;
}

and expr =
  | Literal of Atomic.t
  | Var of string
  | Context_item
    (** "." — the item a predicate is being evaluated against; a path
        rooted at [Context_item] prints as a relative path *)
  | Seq of expr list  (** [Seq []] is the empty sequence [()] *)
  | Flwor of flwor
  | Path of expr * step list
  | Call of string * expr list  (** e.g. [Call ("fn:data", [...])] *)
  | Elem of { name : string; content : expr list }
  | Text of string  (** literal text inside a constructor *)
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Neg of expr
  | Quantified of {
      every : bool;  (** [false] = some, [true] = every *)
      bindings : (string * expr) list;
      satisfies : expr;
    }
  | Filter of expr * expr  (** predicate application [e1\[e2\]] *)

type schema_import = {
  prefix : string;
  namespace : string;
  location : string;
}

type prolog = { imports : schema_import list }

type query = {
  prolog : prolog;
  body : expr;
}

(* Convenience constructors used heavily by the generator. *)
let call name args = Call (name, args)
let var v = Var v
let str s = Literal (Atomic.String s)
let int i = Literal (Atomic.Integer i)
let path1 e name = Path (e, [ { name; predicates = [] } ])
let elem name content = Elem { name; content }
let empty_seq = Seq []

let rec free_vars acc = function
  | Literal _ | Text _ | Context_item -> acc
  | Var v -> v :: acc
  | Seq es -> List.fold_left free_vars acc es
  | Flwor { clauses; return } ->
    (* conservative: includes bound vars; used only for diagnostics *)
    let acc =
      List.fold_left
        (fun acc c ->
          match c with
          | For { source; _ } -> free_vars acc source
          | Let { value; _ } -> free_vars acc value
          | Where e -> free_vars acc e
          | Group { keys; _ } ->
            List.fold_left (fun acc (k, _) -> free_vars acc k) acc keys
          | Order_by specs ->
            List.fold_left (fun acc s -> free_vars acc s.key) acc specs
          | Hash_join { source; build_key; probe_key; _ } ->
            free_vars (free_vars (free_vars acc source) build_key) probe_key)
        acc clauses
    in
    free_vars acc return
  | Path (e, steps) ->
    List.fold_left
      (fun acc s -> List.fold_left free_vars acc s.predicates)
      (free_vars acc e) steps
  | Call (_, args) -> List.fold_left free_vars acc args
  | Elem { content; _ } -> List.fold_left free_vars acc content
  | If (c, t, e) -> free_vars (free_vars (free_vars acc c) t) e
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Neg e -> free_vars acc e
  | Quantified { bindings; satisfies; _ } ->
    free_vars
      (List.fold_left (fun acc (_, e) -> free_vars acc e) acc bindings)
      satisfies
  | Filter (e, p) -> free_vars (free_vars acc e) p
