(* Scannerless recursive-descent parser for the printed XQuery
   fragment.  Character-level parsing keeps direct element
   constructors (which switch between XML content and enclosed
   expressions) simple. *)

module Atomic = Aqua_xml.Atomic
open Ast

exception Parse_error of { offset : int; message : string }

type state = { src : string; mutable pos : int }

let error st fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { offset = st.pos; message }))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st off =
  if st.pos + off < String.length st.src then Some st.src.[st.pos + off]
  else None

let advance st n = st.pos <- st.pos + n

let rec skip_ws st =
  (match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st 1;
    skip_ws st
  | Some '(' when peek_at st 1 = Some ':' ->
    (* (: comment :) — no nesting needed for our output, but support it *)
    advance st 2;
    let depth = ref 1 in
    while !depth > 0 do
      match (peek st, peek_at st 1) with
      | Some '(', Some ':' ->
        advance st 2;
        incr depth
      | Some ':', Some ')' ->
        advance st 2;
        decr depth
      | Some _, _ -> advance st 1
      | None, _ -> error st "unterminated comment"
    done;
    skip_ws st
  | _ -> ())

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let is_name_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

(* a keyword must not be followed by a name character *)
let at_keyword st kw =
  looking_at st kw
  &&
  match peek_at st (String.length kw) with
  | Some c -> not (is_name_char c)
  | None -> true

let eat_keyword st kw =
  skip_ws st;
  if at_keyword st kw then begin
    advance st (String.length kw);
    true
  end
  else false

let expect_keyword st kw =
  if not (eat_keyword st kw) then error st "expected '%s'" kw

let eat_punct st s =
  skip_ws st;
  if looking_at st s then begin
    advance st (String.length s);
    true
  end
  else false

let expect_punct st s =
  if not (eat_punct st s) then error st "expected '%s'" s

let read_ncname st =
  skip_ws st;
  match peek st with
  | Some c when is_name_start c ->
    let start = st.pos in
    while (match peek st with Some c -> is_name_char c | None -> false) do
      advance st 1
    done;
    String.sub st.src start (st.pos - start)
  | _ -> error st "expected a name"

(* NCName(:NCName)? — used for function names and element names *)
let read_qname st =
  let first = read_ncname st in
  if peek st = Some ':' && (match peek_at st 1 with Some c -> is_name_start c | None -> false)
  then begin
    advance st 1;
    first ^ ":" ^ read_ncname st
  end
  else first

let read_variable st =
  skip_ws st;
  expect_punct st "$";
  read_ncname st

let read_string_literal st =
  skip_ws st;
  expect_punct st "\"";
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' when peek_at st 1 = Some '"' ->
      Buffer.add_char buf '"';
      advance st 2;
      go ()
    | Some '"' -> advance st 1
    | Some c ->
      Buffer.add_char buf c;
      advance st 1;
      go ()
  in
  go ();
  Buffer.contents buf

let read_number st =
  skip_ws st;
  let start = st.pos in
  if peek st = Some '-' then advance st 1;
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st 1
  done;
  let is_decimal =
    peek st = Some '.'
    && (match peek_at st 1 with Some c -> is_digit c | None -> false)
  in
  if is_decimal then begin
    advance st 1;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st 1
    done
  end;
  (* exponent part for doubles *)
  let has_exp =
    match (peek st, peek_at st 1) with
    | Some ('e' | 'E'), Some c when is_digit c || c = '+' || c = '-' -> true
    | _ -> false
  in
  if has_exp then begin
    advance st 2;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st 1
    done
  end;
  let text = String.sub st.src start (st.pos - start) in
  if text = "" || text = "-" then error st "expected a number";
  if is_decimal || has_exp then
    if has_exp then Literal (Atomic.Double (float_of_string text))
    else Literal (Atomic.Decimal (float_of_string text))
  else Literal (Atomic.Integer (int_of_string text))

(* ------------------------------------------------------------------ *)

let rec parse_expr_single st : expr =
  skip_ws st;
  if at_keyword st "for" || at_keyword st "let" then parse_flwor st
  else if at_keyword st "if" then parse_if st
  else if at_keyword st "some" then parse_quantified st false
  else if at_keyword st "every" then parse_quantified st true
  else parse_or st

and parse_flwor st : expr =
  let clauses = ref [] in
  let rec loop () =
    skip_ws st;
    if eat_keyword st "for" then begin
      let rec bindings () =
        let var = read_variable st in
        expect_keyword st "in";
        let source = parse_expr_single st in
        clauses := For { var; source } :: !clauses;
        if eat_punct st "," then bindings ()
      in
      bindings ();
      loop ()
    end
    else if eat_keyword st "let" then begin
      let rec bindings () =
        let var = read_variable st in
        expect_punct st ":=";
        let value = parse_expr_single st in
        clauses := Let { var; value } :: !clauses;
        if eat_punct st "," then bindings ()
      in
      bindings ();
      loop ()
    end
    else if eat_keyword st "where" then begin
      clauses := Where (parse_expr_single st) :: !clauses;
      loop ()
    end
    else if eat_keyword st "group" then begin
      let grouped = read_variable st in
      expect_keyword st "as";
      let partition = read_variable st in
      expect_keyword st "by";
      let rec keys acc =
        let k = parse_expr_single st in
        expect_keyword st "as";
        let v = read_variable st in
        if eat_punct st "," then keys ((k, v) :: acc)
        else List.rev ((k, v) :: acc)
      in
      clauses := Group { grouped; partition; keys = keys [] } :: !clauses;
      loop ()
    end
    else if eat_keyword st "order" then begin
      expect_keyword st "by";
      let rec specs acc =
        let key = parse_expr_single st in
        let descending =
          if eat_keyword st "descending" then true
          else begin
            ignore (eat_keyword st "ascending");
            false
          end
        in
        let empty =
          if eat_keyword st "empty" then
            if eat_keyword st "greatest" then Empty_greatest
            else begin
              expect_keyword st "least";
              Empty_least
            end
          else Empty_least
        in
        let spec = { key; descending; empty } in
        if eat_punct st "," then specs (spec :: acc)
        else List.rev (spec :: acc)
      in
      clauses := Order_by (specs []) :: !clauses;
      loop ()
    end
  in
  loop ();
  expect_keyword st "return";
  let return = parse_expr_single st in
  Flwor { clauses = List.rev !clauses; return }

and parse_if st : expr =
  expect_keyword st "if";
  expect_punct st "(";
  let cond = parse_sequence st in
  expect_punct st ")";
  expect_keyword st "then";
  let then_ = parse_expr_single st in
  expect_keyword st "else";
  let else_ = parse_expr_single st in
  If (cond, then_, else_)

and parse_quantified st every : expr =
  if every then expect_keyword st "every" else expect_keyword st "some";
  let rec bindings acc =
    let v = read_variable st in
    expect_keyword st "in";
    let src = parse_expr_single st in
    if eat_punct st "," then bindings ((v, src) :: acc)
    else List.rev ((v, src) :: acc)
  in
  let bindings = bindings [] in
  expect_keyword st "satisfies";
  let satisfies = parse_expr_single st in
  Quantified { every; bindings; satisfies }

and parse_or st : expr =
  let rec go left =
    if eat_keyword st "or" then go (Binop (B_or, left, parse_and st))
    else left
  in
  go (parse_and st)

and parse_and st : expr =
  let rec go left =
    if eat_keyword st "and" then go (Binop (B_and, left, parse_comparison st))
    else left
  in
  go (parse_comparison st)

and parse_comparison st : expr =
  let left = parse_additive st in
  skip_ws st;
  let value_ops =
    [ ("eq", Eq); ("ne", Ne); ("lt", Lt); ("le", Le); ("gt", Gt); ("ge", Ge) ]
  in
  let rec try_value = function
    | [] -> None
    | (kw, op) :: rest ->
      if at_keyword st kw then begin
        advance st (String.length kw);
        Some (B_value op)
      end
      else try_value rest
  in
  match try_value value_ops with
  | Some op -> Binop (op, left, parse_additive st)
  | None ->
    (* longest-match general comparison operators *)
    if eat_punct st "!=" then Binop (B_general Ne, left, parse_additive st)
    else if eat_punct st "<=" then Binop (B_general Le, left, parse_additive st)
    else if eat_punct st ">=" then Binop (B_general Ge, left, parse_additive st)
    else if eat_punct st "=" then Binop (B_general Eq, left, parse_additive st)
    else begin
      skip_ws st;
      (* '<' followed by a name is an element constructor, not less-than *)
      let lt_here =
        looking_at st "<"
        && (match peek_at st 1 with
           | Some c -> not (is_name_start c) && c <> '/'
           | None -> false)
      in
      if lt_here then begin
        advance st 1;
        Binop (B_general Lt, left, parse_additive st)
      end
      else if eat_punct st ">" then
        Binop (B_general Gt, left, parse_additive st)
      else left
    end

and parse_additive st : expr =
  let rec go left =
    skip_ws st;
    if eat_punct st "+" then go (Binop (B_arith Add, left, parse_multiplicative st))
    else if
      (* '-' must be an operator, not part of a name; our printer always
         spaces binary operators *)
      looking_at st "-" && peek_at st 1 <> Some '-'
    then begin
      advance st 1;
      go (Binop (B_arith Sub, left, parse_multiplicative st))
    end
    else left
  in
  go (parse_multiplicative st)

and parse_multiplicative st : expr =
  let rec go left =
    skip_ws st;
    if eat_punct st "*" then go (Binop (B_arith Mul, left, parse_unary st))
    else if at_keyword st "idiv" then begin
      advance st 4;
      go (Binop (B_arith Idiv, left, parse_unary st))
    end
    else if at_keyword st "div" then begin
      advance st 3;
      go (Binop (B_arith Div, left, parse_unary st))
    end
    else if at_keyword st "mod" then begin
      advance st 3;
      go (Binop (B_arith Mod, left, parse_unary st))
    end
    else left
  in
  go (parse_unary st)

and parse_unary st : expr =
  skip_ws st;
  if looking_at st "-" then begin
    advance st 1;
    Neg (parse_unary st)
  end
  else parse_path st

and parse_path st : expr =
  skip_ws st;
  (* relative path: a bare name followed by path continuation or used
     as a step from the context item *)
  let base =
    if looking_at st "." && not (match peek_at st 1 with Some c -> is_digit c | None -> false)
    then begin
      advance st 1;
      Context_item
    end
    else if
      (match peek st with Some c -> is_name_start c | None -> false)
      && not (at_reserved_head st)
    then begin
      (* could be a function call or a relative path step *)
      let save = st.pos in
      let name = read_qname st in
      skip_ws st;
      if looking_at st "(" && not (looking_at st "(:") then begin
        advance st 1;
        parse_call st name
      end
      else begin
        (* relative path step from the context item *)
        st.pos <- save;
        let step = parse_step st in
        Path (Context_item, [ step ])
      end
    end
    else parse_primary st
  in
  parse_path_continuation st base

and at_reserved_head st =
  List.exists (at_keyword st)
    [ "return"; "for"; "let"; "where"; "group"; "order"; "if"; "then";
      "else"; "some"; "every"; "satisfies"; "and"; "or"; "div"; "idiv";
      "mod"; "in"; "as"; "by"; "ascending"; "descending"; "empty" ]

and parse_step st : step =
  skip_ws st;
  let name =
    if looking_at st "*" then begin
      advance st 1;
      "*"
    end
    else read_qname st
  in
  let rec predicates acc =
    skip_ws st;
    if looking_at st "[" then begin
      advance st 1;
      let p = parse_sequence st in
      expect_punct st "]";
      predicates (p :: acc)
    end
    else List.rev acc
  in
  { name; predicates = predicates [] }

and parse_path_continuation st base : expr =
  (* collect /step and [predicate] postfixes *)
  let rec go acc_expr =
    skip_ws st;
    if looking_at st "/" then begin
      advance st 1;
      let step = parse_step st in
      match acc_expr with
      | Path (b, steps) -> go (Path (b, steps @ [ step ]))
      | e -> go (Path (e, [ step ]))
    end
    else if looking_at st "[" then begin
      advance st 1;
      let p = parse_sequence st in
      expect_punct st "]";
      go (Filter (acc_expr, p))
    end
    else acc_expr
  in
  go base

and parse_call st name : expr =
  (* '(' consumed *)
  skip_ws st;
  if eat_punct st ")" then Call (name, [])
  else begin
    let rec args acc =
      let a = parse_expr_single st in
      if eat_punct st "," then args (a :: acc)
      else begin
        expect_punct st ")";
        List.rev (a :: acc)
      end
    in
    Call (name, args [])
  end

and parse_primary st : expr =
  skip_ws st;
  match peek st with
  | Some '$' ->
    advance st 1;
    Var (read_ncname st)
  | Some '"' -> Literal (Atomic.String (read_string_literal st))
  | Some c when is_digit c -> read_number st
  | Some '(' ->
    advance st 1;
    skip_ws st;
    if eat_punct st ")" then Seq []
    else begin
      let e = parse_sequence st in
      expect_punct st ")";
      e
    end
  | Some '<' -> parse_constructor st
  | _ -> error st "unexpected character in expression"

and parse_sequence st : expr =
  let first = parse_expr_single st in
  if eat_punct st "," then begin
    let rec go acc =
      let e = parse_expr_single st in
      if eat_punct st "," then go (e :: acc) else List.rev (e :: acc)
    in
    Seq (first :: go [])
  end
  else first

and parse_constructor st : expr =
  expect_punct st "<";
  let name = read_qname st in
  skip_ws st;
  if eat_punct st "/>" then Elem { name; content = [] }
  else parse_constructor_content st name

and parse_constructor_content st name : expr =
  expect_punct st ">";
  (* content: raw text, enclosed expressions, child constructors *)
  let content = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      content := Text (Buffer.contents buf) :: !content;
      Buffer.clear buf
    end
  in
  let rec go () =
    match peek st with
    | None -> error st "unterminated element constructor <%s>" name
    | Some '<' when peek_at st 1 = Some '/' ->
      flush_text ();
      advance st 2;
      let close = read_qname st in
      if close <> name then
        error st "mismatched constructor tags <%s> ... </%s>" name close;
      skip_ws st;
      expect_punct st ">"
    | Some '<' ->
      flush_text ();
      content := parse_constructor st :: !content;
      go ()
    | Some '{' ->
      flush_text ();
      advance st 1;
      let e = parse_sequence st in
      expect_punct st "}";
      content := e :: !content;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st 1;
      go ()
  in
  go ();
  (* whitespace-only text between child parts is formatting, drop it *)
  let cleaned =
    List.filter
      (function Text s -> String.trim s <> "" | _ -> true)
      (List.rev !content)
  in
  Elem { name; content = cleaned }

(* ------------------------------------------------------------------ *)

let parse_prolog st : prolog =
  let imports = ref [] in
  let rec go () =
    skip_ws st;
    if at_keyword st "import" then begin
      advance st 6;
      expect_keyword st "schema";
      expect_keyword st "namespace";
      let prefix = read_ncname st in
      expect_punct st "=";
      let namespace = read_string_literal st in
      expect_keyword st "at";
      let location = read_string_literal st in
      expect_punct st ";";
      imports := { prefix; namespace; location } :: !imports;
      go ()
    end
  in
  go ();
  { imports = List.rev !imports }

let finish st =
  skip_ws st;
  if st.pos < String.length st.src then
    error st "unexpected trailing input"

let parse_query src =
  let st = { src; pos = 0 } in
  let prolog = parse_prolog st in
  let body = parse_sequence st in
  finish st;
  { prolog; body }

let parse_expr src =
  let st = { src; pos = 0 } in
  let e = parse_sequence st in
  finish st;
  e

(* ------------------------------------------------------------------ *)
(* Library modules (.ds files)                                        *)

type function_decl = {
  fd_name : string;
  fd_params : (string * string) list;
  fd_return : string;
  fd_body : expr option;
}

(* Sequence types are kept as raw text: read balanced up to a stopper
   character at depth 0. *)
let read_type_text st ~stop_at =
  skip_ws st;
  let start = st.pos in
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> continue := false
    | Some '(' ->
      incr depth;
      advance st 1
    | Some ')' when !depth > 0 ->
      decr depth;
      advance st 1
    | Some c when !depth = 0 && List.mem c stop_at -> continue := false
    | Some _ ->
      (* stop before "external" or '{' at depth 0 *)
      if !depth = 0 && (at_keyword st "external" || looking_at st "{") then
        continue := false
      else advance st 1
  done;
  let text = String.trim (String.sub st.src start (st.pos - start)) in
  if text = "" then error st "expected a sequence type";
  text

let parse_function_decl st : function_decl =
  expect_keyword st "declare";
  expect_keyword st "function";
  let fd_name = read_qname st in
  expect_punct st "(";
  skip_ws st;
  let fd_params =
    if eat_punct st ")" then []
    else begin
      let rec go acc =
        let v = read_variable st in
        expect_keyword st "as";
        let ty = read_type_text st ~stop_at:[ ','; ')' ] in
        if eat_punct st "," then go ((v, ty) :: acc)
        else begin
          expect_punct st ")";
          List.rev ((v, ty) :: acc)
        end
      in
      go []
    end
  in
  expect_keyword st "as";
  let fd_return = read_type_text st ~stop_at:[ ';' ] in
  let fd_body =
    if eat_keyword st "external" then None
    else begin
      expect_punct st "{";
      let body = parse_sequence st in
      expect_punct st "}";
      Some body
    end
  in
  expect_punct st ";";
  { fd_name; fd_params; fd_return; fd_body }

let parse_library src =
  let st = { src; pos = 0 } in
  let prolog = parse_prolog st in
  let decls = ref [] in
  let rec go () =
    skip_ws st;
    if at_keyword st "declare" then begin
      decls := parse_function_decl st :: !decls;
      go ()
    end
  in
  go ();
  finish st;
  (prolog, List.rev !decls)
