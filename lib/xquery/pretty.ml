module Atomic = Aqua_xml.Atomic
open Ast

let cmp_general = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_value = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Idiv -> "idiv"
  | Mod -> "mod"

let atomic_literal a =
  match a with
  | Atomic.String s | Atomic.Untyped s ->
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  | Atomic.Integer i -> string_of_int i
  | Atomic.Decimal _ | Atomic.Double _ -> Atomic.to_lexical a
  | Atomic.Boolean b -> if b then "fn:true()" else "fn:false()"
  | Atomic.Date d -> Printf.sprintf "xs:date(\"%s\")" (Atomic.date_to_string d)
  | Atomic.Time t -> Printf.sprintf "xs:time(\"%s\")" (Atomic.time_to_string t)
  | Atomic.Timestamp ts ->
    Printf.sprintf "xs:dateTime(\"%s\")" (Atomic.timestamp_to_string ts)

type ctx = { buf : Buffer.t; mutable indent : int; pretty : bool }

let nl ctx =
  if ctx.pretty then begin
    Buffer.add_char ctx.buf '\n';
    Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ')
  end
  else Buffer.add_char ctx.buf ' '

let add ctx s = Buffer.add_string ctx.buf s

(* Precedence: or=1, and=2, comparison=3, additive=4, multiplicative=5,
   unary=6, postfix(path/filter)=7, primary=8. *)
let prec = function
  | Binop (B_or, _, _) -> 1
  | Binop (B_and, _, _) -> 2
  | Binop ((B_general _ | B_value _), _, _) -> 3
  | Binop (B_arith ((Add | Sub)), _, _) -> 4
  | Binop (B_arith _, _, _) -> 5
  | Neg _ -> 6
  | Path _ | Filter _ -> 7
  | Literal _ | Var _ | Context_item | Seq _ | Call _ | Elem _ | Text _ -> 8
  | Flwor _ | If _ | Quantified _ -> 0

let rec emit ctx outer e =
  let parenthesize = prec e < outer && prec e > 0 in
  let parenthesize =
    parenthesize || match e with Flwor _ | If _ | Quantified _ -> outer > 0 | _ -> false
  in
  if parenthesize then add ctx "(";
  (match e with
  | Literal a -> add ctx (atomic_literal a)
  | Var v -> add ctx ("$" ^ v)
  | Context_item -> add ctx "."
  | Seq [] -> add ctx "()"
  | Seq [ single ] ->
    (* a singleton sequence is the item itself; print canonically *)
    emit ctx outer single
  | Seq es ->
    add ctx "(";
    List.iteri
      (fun i x ->
        if i > 0 then add ctx ", ";
        emit ctx 1 x)
      es;
    add ctx ")"
  | Flwor f -> emit_flwor ctx f
  | Path (base, steps) ->
    (* a path rooted at the context item prints as a relative path *)
    let relative = base = Context_item in
    if not relative then emit ctx 7 base;
    List.iteri
      (fun i s ->
        if i > 0 || not relative then add ctx "/";
        add ctx s.name;
        List.iter
          (fun p ->
            add ctx "[";
            emit ctx 0 p;
            add ctx "]")
          s.predicates)
      steps
  | Call (name, args) ->
    add ctx (name ^ "(");
    List.iteri
      (fun i a ->
        if i > 0 then add ctx ", ";
        emit ctx 1 a)
      args;
    add ctx ")"
  | Elem { name; content } -> emit_element ctx name content
  | Text s -> add ctx s
  | If (c, t, e) ->
    add ctx "if (";
    emit ctx 0 c;
    add ctx ") then";
    ctx.indent <- ctx.indent + 1;
    nl ctx;
    emit ctx 1 t;
    ctx.indent <- ctx.indent - 1;
    nl ctx;
    add ctx "else";
    ctx.indent <- ctx.indent + 1;
    nl ctx;
    emit ctx 1 e;
    ctx.indent <- ctx.indent - 1
  | Binop (op, a, b) ->
    let p = prec e in
    let op_str =
      match op with
      | B_and -> "and"
      | B_or -> "or"
      | B_general c -> cmp_general c
      | B_value c -> cmp_value c
      | B_arith a -> arith_to_string a
    in
    emit ctx p a;
    add ctx (" " ^ op_str ^ " ");
    emit ctx (p + 1) b
  | Neg a ->
    add ctx "-";
    emit ctx 6 a
  | Quantified { every; bindings; satisfies } ->
    add ctx (if every then "every" else "some");
    List.iteri
      (fun i (v, src) ->
        if i > 0 then add ctx ",";
        add ctx (" $" ^ v ^ " in ");
        emit ctx 3 src)
      bindings;
    add ctx " satisfies ";
    emit ctx 1 satisfies
  | Filter (base, pred) ->
    emit ctx 7 base;
    add ctx "[";
    emit ctx 0 pred;
    add ctx "]");
  if parenthesize then add ctx ")"

and emit_element ctx name content =
  (* Text parts are emitted literally; expression parts inside curly
     braces — the JSP-like constructor style of the paper. *)
  add ctx ("<" ^ name ^ ">");
  let multiline =
    ctx.pretty
    && List.exists
         (function Text _ | Literal _ -> false | _ -> true)
         content
  in
  if multiline then ctx.indent <- ctx.indent + 1;
  List.iter
    (fun part ->
      match part with
      | Text s -> add ctx s
      | Elem _ as e ->
        (* a literal child element needs no enclosing braces *)
        if multiline then nl ctx;
        emit ctx 1 e
      | e ->
        if multiline then nl ctx;
        add ctx "{";
        emit ctx 1 e;
        add ctx "}")
    content;
  if multiline then begin
    ctx.indent <- ctx.indent - 1;
    nl ctx
  end;
  add ctx ("</" ^ name ^ ">")

and emit_flwor ctx f =
  List.iteri
    (fun i clause ->
      if i > 0 then nl ctx;
      match clause with
      | For { var; source } ->
        add ctx ("for $" ^ var ^ " in ");
        emit ctx 3 source
      | Let { var; value } ->
        add ctx ("let $" ^ var ^ " := ");
        emit ctx 1 value
      | Where e ->
        add ctx "where ";
        emit ctx 1 e
      | Group { grouped; partition; keys } ->
        add ctx ("group $" ^ grouped ^ " as $" ^ partition ^ " by ");
        List.iteri
          (fun i (k, v) ->
            if i > 0 then add ctx ", ";
            emit ctx 3 k;
            add ctx (" as $" ^ v))
          keys
      | Order_by specs ->
        add ctx "order by ";
        List.iteri
          (fun i s ->
            if i > 0 then add ctx ", ";
            emit ctx 3 s.key;
            if s.descending then add ctx " descending";
            match s.empty with
            | Empty_least -> ()
            | Empty_greatest -> add ctx " empty greatest")
          specs
      | Hash_join { var; source; build_key; probe_key; value_cmp } ->
        (* printed in its logical (de-sugared) form so the output stays
           legal, parseable XQuery; the comment marks the physical op *)
        add ctx ("for $" ^ var ^ " in ");
        emit ctx 3 source;
        nl ctx;
        add ctx "where ";
        emit ctx 3 probe_key;
        add ctx (if value_cmp then " eq " else " = ");
        emit ctx 4 build_key;
        add ctx " (: hash equi-join :)")
    f.clauses;
  nl ctx;
  add ctx "return";
  ctx.indent <- ctx.indent + 1;
  nl ctx;
  emit ctx 1 f.return;
  ctx.indent <- ctx.indent - 1

let render pretty (q : query) =
  let ctx = { buf = Buffer.create 1024; indent = 0; pretty } in
  List.iter
    (fun imp ->
      add ctx
        (Printf.sprintf "import schema namespace %s = \"%s\" at \"%s\";"
           imp.prefix imp.namespace imp.location);
      nl ctx)
    q.prolog.imports;
  emit ctx 0 q.body;
  Buffer.contents ctx.buf

let expr_to_string e =
  let ctx = { buf = Buffer.create 256; indent = 0; pretty = true } in
  emit ctx 0 e;
  Buffer.contents ctx.buf

let query_to_string q = render true q
let query_to_compact_string q = render false q
