(** Serialization of XQuery ASTs to query text in the style of the
    paper's examples: FLWORs with one clause per line, constructor
    content in curly braces, comparisons parenthesized. *)

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string

val query_to_compact_string : Ast.query -> string
(** Single-line form (whitespace-minimal), used by benchmarks to
    measure emission cost without formatting overhead. *)
