(* sql2xq: command-line front end to the translator.

     sql2xq translate "SELECT * FROM CUSTOMERS"   print the XQuery
     sql2xq run       "SELECT ..."                execute via DSP, print rows
     sql2xq text      "SELECT ..."                print the section-4 wrapper
     sql2xq tables                                list demo catalog tables

   Queries run against the built-in demo catalog (see demo_catalog.ml). *)

open Cmdliner

module Translator = Aqua_translator.Translator
module Semantic = Aqua_translator.Semantic
module Errors = Aqua_translator.Errors
module Server = Aqua_dsp.Server
module Metadata = Aqua_dsp.Metadata
module Telemetry = Aqua_core.Telemetry
module Budget = Aqua_resilience.Budget
module Failpoint = Aqua_resilience.Failpoint
module Sqlstate = Aqua_resilience.Sqlstate
module Obs_stats = Aqua_obs.Stats
module Histogram = Aqua_obs.Histogram
module Fingerprint = Aqua_obs.Fingerprint
module Recorder = Aqua_obs.Recorder
module Expose = Aqua_obs.Expose

let with_env f =
  let app = Aqua_workload.Demo.build () in
  let env = Semantic.env_of_application app in
  (* every failure mode funnels through the driver taxonomy, so the
     CLI prints one "[SQLSTATE] condition: message" line and exits 1 *)
  try Aqua_driver.Sql_error.wrap (fun () -> f app env) with
  | Sqlstate.Error e ->
    prerr_endline (Sqlstate.to_string e);
    exit 1
  | Errors.Error e ->
    prerr_endline (Errors.to_string e);
    exit 1
  | Aqua_xqeval.Error.Dynamic_error m ->
    prerr_endline ("dynamic error: " ^ m);
    exit 1

let style_of_naive naive =
  if naive then Aqua_translator.Generate.Naive
  else Aqua_translator.Generate.Patterned

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let naive_flag =
  Arg.(value & flag & info [ "naive" ] ~doc:"Use the naive emission style.")

let no_optimize_flag =
  Arg.(
    value & flag
    & info [ "no-optimize" ]
        ~doc:
          "Disable the XQuery optimizer (predicate pushdown, hash \
           equi-joins); evaluate with the naive nested-loop pipeline.")

let no_scan_cache_flag =
  Arg.(
    value & flag
    & info [ "no-scan-cache" ]
        ~doc:
          "Disable scan materialization: the per-plan shared-scan hoist \
           and the cross-query materialized scan cache for parameterless \
           data-service calls.")

let no_vectorize_flag =
  Arg.(
    value & flag
    & info [ "no-vectorize" ]
        ~doc:
          "Disable the batched FLWOR engine; execute optimized plans \
           with the row-at-a-time pipeline (the differential oracle).")

let no_columnar_flag =
  Arg.(
    value & flag
    & info [ "no-columnar" ]
        ~doc:
          "Disable the columnar (struct-of-arrays) batch layout; execute \
           batched plans over row-snapshot batches (the columnar engine's \
           differential oracle).")

let batch_size_opt =
  Arg.(
    value & opt (some int) None
    & info [ "batch-size" ] ~docv:"N"
        ~doc:
          "Rows per batch for the vectorized engine (default 1024; also \
           settable via \\$(b,AQUA_BATCH_SIZE)).")

let apply_batch_size batch_size =
  Option.iter Aqua_xqeval.Batch.set_size batch_size

let translate_cmd =
  let run sql naive =
    with_env (fun _app env ->
        let t = Translator.translate ~style:(style_of_naive naive) env sql in
        print_endline (Translator.to_string t);
        prerr_endline
          ("-- result columns: "
          ^ String.concat ", "
              (List.map
                 (fun (c : Aqua_translator.Outcol.t) ->
                   Printf.sprintf "%s %s" c.label
                     (Aqua_relational.Sql_type.to_string c.ty))
                 t.Translator.columns)))
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Translate SQL to XQuery and print it")
    Term.(const run $ sql_arg $ naive_flag)

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Emit NDJSON telemetry trace events to stderr (one span per \
           line, plus a final snapshot of all counters).")

let timeout_opt =
  Arg.(
    value & opt (some int) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:
          "Per-query deadline in milliseconds; exceeding it cancels the \
           query with SQLSTATE 57014.")

let max_rows_opt =
  Arg.(
    value & opt (some int) None
    & info [ "max-rows" ] ~docv:"N"
        ~doc:
          "Per-query output-row governor; exceeding it fails the query \
           with SQLSTATE 53400.")

let failpoints_opt =
  Arg.(
    value & opt (some string) None
    & info [ "failpoints" ] ~docv:"SPEC"
        ~doc:
          "Arm fault-injection sites, e.g. \
           'dsp.invoke=fail(1);engine.scan=delay(5ms)'.  Also read from \
           \\$(b,AQUA_FAILPOINTS).")

(* Arm --failpoints (the flag wins over the environment) and build the
   query budget from the governor flags. *)
let governors ?timeout ?max_rows failpoints =
  (match failpoints with
   | Some spec -> Failpoint.arm spec
   | None -> ignore (Failpoint.arm_from_env ()));
  Budget.limits ?timeout_ms:timeout ?max_rows ()

(* Server.execute returns XML items, not decoded rows: count the
   RECORD children of a RECORDSET (one per row), and any other item as
   itself, against the row governor. *)
let tick_items_as_rows items =
  List.iter
    (fun item ->
      match item with
      | Aqua_xml.Item.Node (Aqua_xml.Node.Element e)
        when Aqua_xml.Node.local_name e.Aqua_xml.Node.name = "RECORDSET" ->
        Budget.tick_rows
          (List.length
             (Aqua_xml.Node.children_elements (Aqua_xml.Node.Element e)))
      | _ -> Budget.tick_rows 1)
    items

(* Execute with graceful degradation, mirroring the driver: a crash
   inside the optimized evaluator gets one more attempt with both
   suspects off — optimizer and batch engine — counted as a
   fallback. *)
let execute_degrading ~no_optimize app server xquery ~span =
  let execute srv =
    Telemetry.with_span span (fun () ->
        let items = Server.execute srv xquery in
        tick_items_as_rows items;
        items)
  in
  try execute server
  with e when (not no_optimize) && Aqua_driver.Sql_error.degradable e ->
    Telemetry.incr Telemetry.c_fallbacks_unoptimized;
    (* the fallback server shares the crashed server's scan cache, so
       scans the optimized run already materialized are not re-fetched *)
    execute
      (Server.create ~optimize:false ~vectorize:false ~columnar:false
         ~cache:(Server.scan_cache server) app)

let start_trace () =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Telemetry.set_trace_sink (Some prerr_endline)

let finish_trace () =
  prerr_endline
    ("{\"ev\":\"snapshot\",\"metrics\":"
    ^ Telemetry.metrics_to_json (Telemetry.snapshot ())
    ^ "}")

let run_cmd =
  let run sql naive no_optimize no_scan_cache no_vectorize no_columnar
      batch_size trace timeout max_rows failpoints =
    with_env (fun app env ->
        apply_batch_size batch_size;
        if trace then start_trace ();
        (* the final counter snapshot must reach the sink even when
           translation or execution raises — that failing trace is the
           one worth reading *)
        Fun.protect
          ~finally:(fun () -> if trace then finish_trace ())
          (fun () ->
            let limits = governors ?timeout ?max_rows failpoints in
            Failpoint.hit "driver.translate";
            let t =
              Translator.translate ~style:(style_of_naive naive) env sql
            in
            let server =
              Server.create ~optimize:(not no_optimize)
                ~vectorize:(not no_vectorize) ~columnar:(not no_columnar)
                ~scan_cache:(not no_scan_cache) app
            in
            let items =
              Budget.with_budget limits @@ fun () ->
              execute_degrading ~no_optimize app server t.Translator.xquery
                ~span:"execute"
            in
            print_endline
              (Aqua_xml.Serialize.sequence_to_string ~indent:true items)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Translate and execute; print the XML result")
    Term.(
      const run $ sql_arg $ naive_flag $ no_optimize_flag $ no_scan_cache_flag
      $ no_vectorize_flag $ no_columnar_flag $ batch_size_opt $ trace_flag
      $ timeout_opt $ max_rows_opt $ failpoints_opt)

let analyze_cmd =
  let ms ns = Int64.to_float ns /. 1e6 in
  let run sql naive no_optimize no_scan_cache no_vectorize no_columnar
      batch_size trace timeout max_rows failpoints =
    with_env (fun app env ->
        apply_batch_size batch_size;
        Telemetry.set_enabled true;
        Telemetry.reset ();
        Obs_stats.reset ();
        Obs_stats.set_enabled true;
        Obs_stats.install_span_histograms ();
        if trace then Telemetry.set_trace_sink (Some prerr_endline);
        Fun.protect
          ~finally:(fun () ->
            Obs_stats.uninstall_span_histograms ();
            (* flush the snapshot even when translation or execution
               raises mid-report *)
            if trace then finish_trace ())
        @@ fun () ->
        let limits = governors ?timeout ?max_rows failpoints in
        Failpoint.hit "driver.translate";
        let t = Translator.translate ~style:(style_of_naive naive) env sql in
        let server =
          Server.create ~optimize:(not no_optimize)
            ~vectorize:(not no_vectorize) ~columnar:(not no_columnar)
            ~scan_cache:(not no_scan_cache) app
        in
        let items =
          Budget.with_budget limits @@ fun () ->
          execute_degrading ~no_optimize app server t.Translator.xquery
            ~span:"execute"
        in
        let serialized =
          Telemetry.with_span "serialize" (fun () ->
              Aqua_xml.Serialize.sequence_to_string items)
        in
        let snap = Telemetry.snapshot () in
        let clause_rows = Telemetry.clause_rows () in
        let span_stats = Telemetry.span_stats () in
        let execute_ns = Telemetry.span_total_ns "execute" in
        let serialize_ns = Telemetry.span_total_ns "serialize" in
        Telemetry.set_enabled false;
        Obs_stats.set_enabled false;
        (* the counters are frozen now, so re-running the optimizer for
           its notes does not skew the snapshot *)
        let _, report =
          Aqua_xqeval.Optimize.query ~share_scans:(not no_scan_cache)
            ~vectorize:(not no_vectorize) ~columnar:(not no_columnar)
            t.Translator.xquery
        in
        Printf.printf "EXPLAIN ANALYZE  %s\n" sql;
        Printf.printf "translation (three stages):\n";
        Printf.printf "  stage 1 parse      %8.3f ms\n" (ms snap.Telemetry.parse_ns);
        Printf.printf "  stage 2 semantic   %8.3f ms\n" (ms snap.Telemetry.semantic_ns);
        Printf.printf "  stage 3 generate   %8.3f ms\n" (ms snap.Telemetry.generate_ns);
        if no_optimize then Printf.printf "optimizer: disabled (--no-optimize)\n"
        else begin
          Printf.printf
            "optimizer: %d predicate(s) pushed down, %d hash equi-join(s), \
             %d shared scan(s)\n"
            report.Aqua_xqeval.Optimize.pushed_predicates
            report.Aqua_xqeval.Optimize.hash_joins
            report.Aqua_xqeval.Optimize.shared_scans;
          List.iter
            (fun note -> Printf.printf "  note: %s\n" note)
            report.Aqua_xqeval.Optimize.notes
        end;
        if no_scan_cache then
          Printf.printf "scan cache: disabled (--no-scan-cache)\n"
        else begin
          let sc = Aqua_dsp.Scan_cache.stats (Server.scan_cache server) in
          Printf.printf
            "scan cache: hits=%d misses=%d evictions=%d entries=%d bytes=%d\n"
            sc.Aqua_dsp.Scan_cache.hits sc.Aqua_dsp.Scan_cache.misses
            sc.Aqua_dsp.Scan_cache.evictions sc.Aqua_dsp.Scan_cache.entries
            sc.Aqua_dsp.Scan_cache.bytes
        end;
        Printf.printf "execution: %.3f ms, %d item(s) returned\n" (ms execute_ns)
          (List.length items);
        if clause_rows <> [] then begin
          Printf.printf "plan (clause -> actual rows):\n";
          List.iter
            (fun (label, rows) -> Printf.printf "  %-28s %8d\n" label rows)
            clause_rows
        end;
        if no_optimize || no_vectorize then
          Printf.printf "batch pipeline: disabled (%s)\n"
            (if no_optimize then "--no-optimize" else "--no-vectorize")
        else begin
          let batches = snap.Telemetry.batch_batches in
          let brows = snap.Telemetry.batch_rows in
          let bfilt = snap.Telemetry.batch_filtered in
          Printf.printf
            "batch pipeline: %d-row batches; %d batch(es) pushed, %.1f \
             rows/batch avg, %d row(s) where-filtered\n"
            (Aqua_xqeval.Batch.size ()) batches
            (if batches = 0 then 0.0 else float_of_int brows /. float_of_int batches)
            bfilt;
          (* per-clause selectivity: each vectorized clause's output
             rows against its input (the previous clause's output) *)
          if clause_rows <> [] then begin
            Printf.printf "  clause (vectorized)          rows out  selectivity\n";
            ignore
              (List.fold_left
                 (fun prev (label, rows) ->
                   (match prev with
                   | Some p when p > 0 ->
                     Printf.printf "  %-28s %8d  %9.1f%%\n" label rows
                       (100.0 *. float_of_int rows /. float_of_int p)
                   | _ -> Printf.printf "  %-28s %8d          -\n" label rows);
                   Some rows)
                 None clause_rows)
          end
        end;
        if not (no_optimize || no_vectorize) then begin
          if no_columnar then
            Printf.printf "columnar layout: disabled (--no-columnar)\n"
          else begin
            let cb = snap.Telemetry.columnar_batches in
            let cr = snap.Telemetry.columnar_rows in
            Printf.printf
              "columnar layout: %d batch(es), %d row(s); %d column \
               copies pruned, %d kernel update(s)\n"
              cb cr snap.Telemetry.columnar_pruned_columns
              snap.Telemetry.columnar_kernel_updates
          end
        end;
        Printf.printf "engine counters:\n";
        Printf.printf "  rows emitted (all clauses)   %8d\n" snap.Telemetry.rows_emitted;
        Printf.printf
          "  hash join: builds=%d build_rows=%d probes=%d collisions=%d\n"
          snap.Telemetry.hash_join_builds snap.Telemetry.hash_join_build_rows
          snap.Telemetry.hash_join_probes snap.Telemetry.hash_join_collisions;
        let ds_spans =
          List.filter
            (fun (name, _, _) ->
              String.length name > 9 && String.sub name 0 9 = "dsp.call.")
            span_stats
        in
        if ds_spans <> [] then begin
          Printf.printf "data-service calls:\n";
          List.iter
            (fun (name, n, total) ->
              Printf.printf "  %-28s n=%-4d %8.3f ms\n"
                (String.sub name 9 (String.length name - 9))
                n (ms total))
            ds_spans
        end;
        let v = Telemetry.value in
        let resilience_active =
          v Telemetry.c_retry_attempts + v Telemetry.c_retry_giveups
          + v Telemetry.c_breaker_trips + v Telemetry.c_breaker_recoveries
          + v Telemetry.c_breaker_rejections + v Telemetry.c_deadline_exceeded
          + v Telemetry.c_resource_exhausted + v Telemetry.c_faults_injected
          + v Telemetry.c_fallbacks_unoptimized
          > 0
        in
        if resilience_active then begin
          Printf.printf "resilience:\n";
          Printf.printf "  faults injected=%d retries=%d giveups=%d\n"
            (v Telemetry.c_faults_injected)
            (v Telemetry.c_retry_attempts)
            (v Telemetry.c_retry_giveups);
          Printf.printf "  breaker trips=%d recoveries=%d rejections=%d\n"
            (v Telemetry.c_breaker_trips)
            (v Telemetry.c_breaker_recoveries)
            (v Telemetry.c_breaker_rejections);
          Printf.printf
            "  deadline exceeded=%d resources exhausted=%d \
             unoptimized fallbacks=%d\n"
            (v Telemetry.c_deadline_exceeded)
            (v Telemetry.c_resource_exhausted)
            (v Telemetry.c_fallbacks_unoptimized)
        end;
        let hists =
          List.filter
            (fun (_, h) -> not (Histogram.is_empty h))
            (Obs_stats.histograms ())
        in
        if hists <> [] then begin
          Printf.printf "latency distributions (per span, ms):\n";
          List.iter
            (fun (name, h) ->
              Printf.printf
                "  %-28s n=%-4d p50=%8.3f p90=%8.3f p99=%8.3f max=%8.3f\n"
                name (Histogram.count h)
                (ms (Histogram.p50 h))
                (ms (Histogram.p90 h))
                (ms (Histogram.p99 h))
                (ms (Histogram.max_value h)))
            hists
        end;
        let digest, shape = Fingerprint.fingerprint sql in
        Printf.printf "fingerprint: %s  %s\n" digest shape;
        Printf.printf "serialize: %.3f ms (%d bytes)\n" (ms serialize_ns)
          (String.length serialized))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Translate, execute and print an EXPLAIN ANALYZE-style report: \
          per-stage timings, optimizer decisions, per-clause row counts, \
          batch-pipeline shape, engine counters and resilience counters \
          (retries, breaker state changes, governor trips).")
    Term.(
      const run $ sql_arg $ naive_flag $ no_optimize_flag $ no_scan_cache_flag
      $ no_vectorize_flag $ no_columnar_flag $ batch_size_opt $ trace_flag
      $ timeout_opt $ max_rows_opt $ failpoints_opt)

(* sql2xq stats: replay a workload through the driver (the real
   Connection path: translation cache, budgets, fallback, transports)
   with the per-fingerprint stats registry and the flight recorder on,
   then render the registry — the pg_stat_statements view of the
   workload. *)
let stats_cmd =
  let ms ns = Int64.to_float ns /. 1e6 in
  let queries_opt =
    Arg.(
      value & opt (some string) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Replay the SQL statements in $(docv), one per line (blank \
             lines and lines starting with '#' are skipped).  Without \
             this flag a reproducible random reporting workload is \
             generated.")
  in
  let count_opt =
    Arg.(
      value & opt int 12
      & info [ "count" ] ~docv:"N"
          ~doc:"Distinct generated statements (ignored with --queries).")
  in
  let repeat_opt =
    Arg.(
      value & opt int 5
      & info [ "repeat" ] ~docv:"R"
          ~doc:"Times the statement list is replayed.")
  in
  let seed_opt =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload-generator seed.")
  in
  let top_opt =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Fingerprints shown (table format).")
  in
  let by_opt =
    Arg.(
      value
      & opt
          (enum
             [
               ("time", Obs_stats.By_total_time);
               ("p99", Obs_stats.By_p99);
               ("calls", Obs_stats.By_calls);
             ])
          Obs_stats.By_total_time
      & info [ "by" ] ~docv:"ORDER"
          ~doc:"Ranking for --top: $(b,time), $(b,p99) or $(b,calls).")
  in
  let format_opt =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("prom", `Prom); ("json", `Json) ])
          `Table
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: human $(b,table), Prometheus text exposition \
             ($(b,prom)) or $(b,json).")
  in
  let read_queries file =
    In_channel.with_open_text file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None else Some line)
  in
  let print_table ~executed ~failures top by =
    let entries = Obs_stats.top ~by top in
    Printf.printf "%d statement(s) executed, %d failed, %d fingerprint(s)\n"
      executed failures
      (List.length (Obs_stats.entries ()));
    List.iter
      (fun (e : Obs_stats.entry) ->
        let errors =
          if e.Obs_stats.errors = 0 then ""
          else
            Printf.sprintf " errors=%d (%s)" e.Obs_stats.errors
              (String.concat ", "
                 (List.map
                    (fun (cls, n) -> Printf.sprintf "class %s: %d" cls n)
                    (Obs_stats.error_classes e)))
        in
        Printf.printf "\nfingerprint %s  calls=%d rows=%d cache-hits=%d%s\n"
          e.Obs_stats.fingerprint e.Obs_stats.calls e.Obs_stats.rows
          e.Obs_stats.cache_hits errors;
        Printf.printf "  shape: %s\n" e.Obs_stats.shape;
        Printf.printf "  %-10s %10s %10s %10s %10s  (ms)\n" "stage" "p50"
          "p90" "p99" "max";
        List.iter
          (fun (stage, h) ->
            if not (Histogram.is_empty h) then
              Printf.printf "  %-10s %10.3f %10.3f %10.3f %10.3f\n" stage
                (ms (Histogram.p50 h))
                (ms (Histogram.p90 h))
                (ms (Histogram.p99 h))
                (ms (Histogram.max_value h)))
          [
            ("translate", e.Obs_stats.translate);
            ("execute", e.Obs_stats.execute);
            ("decode", e.Obs_stats.decode);
            ("total", e.Obs_stats.total);
          ])
      entries;
    match Recorder.last_error () with
    | Some ev ->
      Printf.printf "\nlast failure (flight recorder):\n%s\n"
        (Recorder.event_to_ndjson ev)
    | None -> ()
  in
  let run queries count repeat seed top by format no_scan_cache no_vectorize
      no_columnar batch_size trace timeout max_rows failpoints =
    with_env (fun app _env ->
        apply_batch_size batch_size;
        Telemetry.set_enabled true;
        Telemetry.reset ();
        Obs_stats.reset ();
        Obs_stats.set_enabled true;
        Obs_stats.install_span_histograms ();
        Recorder.clear ();
        if trace then begin
          Telemetry.set_trace_sink (Some prerr_endline);
          (* failing statements dump the flight-recorder ring into the
             same NDJSON stream *)
          Recorder.set_dump_sink (Some prerr_endline)
        end;
        let limits = governors ?timeout ?max_rows failpoints in
        let sqls =
          match queries with
          | Some file -> read_queries file
          | None ->
            let tables = Metadata.list_tables app in
            let st = Random.State.make [| seed |] in
            List.init count (fun _ ->
                Aqua_workload.Querygen.generate_sql
                  ~profile:Aqua_workload.Querygen.reporting_profile st tables)
        in
        if sqls = [] then begin
          prerr_endline "stats: no statements to replay";
          exit 1
        end;
        let conn =
          Aqua_driver.Connection.connect ~limits
            ~vectorize:(not no_vectorize) ~columnar:(not no_columnar)
            ~scan_cache:(not no_scan_cache) app
        in
        let executed = ref 0 and failures = ref 0 in
        for _ = 1 to max 1 repeat do
          List.iter
            (fun sql ->
              incr executed;
              match Aqua_driver.Connection.execute_query conn sql with
              | _rs -> ()
              | exception Sqlstate.Error _ -> incr failures)
            sqls
        done;
        Obs_stats.uninstall_span_histograms ();
        if trace then finish_trace ();
        match format with
        | `Prom -> print_string (Expose.prometheus ())
        | `Json -> print_endline (Expose.json ())
        | `Table -> print_table ~executed:!executed ~failures:!failures top by)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Replay a workload through the driver and report per-fingerprint \
          statistics: calls, rows, translation-cache hits, errors by \
          SQLSTATE class, and p50/p90/p99 latency per stage.  \
          $(b,--format prom) emits the Prometheus text exposition.")
    Term.(
      const run $ queries_opt $ count_opt $ repeat_opt $ seed_opt $ top_opt
      $ by_opt $ format_opt $ no_scan_cache_flag $ no_vectorize_flag
      $ no_columnar_flag $ batch_size_opt $ trace_flag $ timeout_opt
      $ max_rows_opt $ failpoints_opt)

let text_cmd =
  let run sql naive no_optimize =
    with_env (fun app env ->
        let t = Translator.translate ~style:(style_of_naive naive) env sql in
        let wrapped = Translator.for_text_transport t in
        print_endline (Aqua_xquery.Pretty.query_to_string wrapped);
        let server = Server.create ~optimize:(not no_optimize) app in
        let text = Server.execute_to_text server wrapped in
        Printf.printf "-- wire text (%d bytes): %s\n" (String.length text)
          (String.escaped text))
  in
  Cmd.v
    (Cmd.info "text"
       ~doc:"Print the text-transport wrapper query and its wire output")
    Term.(const run $ sql_arg $ naive_flag $ no_optimize_flag)

let diff_cmd =
  let run sql naive =
    with_env (fun app env ->
        ignore env;
        let conn =
          Aqua_driver.Connection.connect ~transport:Aqua_driver.Connection.Text
            app
        in
        ignore naive;
        let rs = Aqua_driver.Connection.execute_query conn sql in
        let via_driver = Aqua_driver.Result_set.to_rowset rs in
        let engine_env = Aqua_sqlengine.Engine.env_of_application app in
        let direct = Aqua_sqlengine.Engine.execute_sql engine_env sql in
        match Aqua_relational.Rowset.diff_summary direct via_driver with
        | None ->
          Printf.printf "MATCH (%d rows)\n%s\n"
            (List.length direct.Aqua_relational.Rowset.rows)
            (Aqua_relational.Rowset.to_string direct)
        | Some msg ->
          Printf.printf "MISMATCH: %s\n-- direct engine:\n%s\n-- via driver:\n%s\n"
            msg
            (Aqua_relational.Rowset.to_string direct)
            (Aqua_relational.Rowset.to_string via_driver);
          exit 1)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Run via the driver AND the baseline SQL engine; compare rows")
    Term.(const run $ sql_arg $ naive_flag)

let wdiff_cmd =
  (* like diff, but against the synthetic workload catalog used by the
     randomized test suite — for reproducing generator findings *)
  let run sql naive =
    ignore naive;
    let app =
      Aqua_workload.Datagen.application
        { Aqua_workload.Datagen.customers = 12; orders = 25;
          lines_per_order = 2; payments = 18 }
    in
    try
      let conn = Aqua_driver.Connection.connect app in
      let rs = Aqua_driver.Connection.execute_query conn sql in
      let via_driver = Aqua_driver.Result_set.to_rowset rs in
      let engine_env = Aqua_sqlengine.Engine.env_of_application app in
      let direct = Aqua_sqlengine.Engine.execute_sql engine_env sql in
      match Aqua_relational.Rowset.diff_summary direct via_driver with
      | None ->
        Printf.printf "MATCH (%d rows)\n"
          (List.length direct.Aqua_relational.Rowset.rows)
      | Some msg ->
        Printf.printf
          "MISMATCH: %s\n-- direct engine:\n%s\n-- via driver:\n%s\n" msg
          (Aqua_relational.Rowset.to_string direct)
          (Aqua_relational.Rowset.to_string via_driver);
        exit 1
    with
    | Errors.Error e ->
      prerr_endline (Errors.to_string e);
      exit 1
    | Aqua_xqeval.Error.Dynamic_error m ->
      prerr_endline ("dynamic error: " ^ m);
      exit 1
  in
  Cmd.v
    (Cmd.info "wdiff" ~doc:"diff against the synthetic workload catalog")
    Term.(const run $ sql_arg $ naive_flag)

let explain_cmd =
  let show_xquery =
    Arg.(
      value & flag
      & info [ "xquery" ]
          ~doc:
            "Also print the optimized XQuery (hash equi-joins appear as \
             annotated for/where pairs).")
  in
  let run sql show_xquery =
    with_env (fun _app env ->
        print_string (Aqua_translator.Explain.statement env
                        (Aqua_sql.Parser.parse sql));
        if show_xquery then begin
          let t = Translator.translate env sql in
          let optimized, _report =
            Aqua_xqeval.Optimize.query t.Translator.xquery
          in
          print_endline "-- optimized xquery --";
          print_endline (Aqua_xquery.Pretty.query_to_string optimized)
        end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the query-context / resultset-node tree (paper Figs 3-4)")
    Term.(const run $ sql_arg $ show_xquery)

let xq_cmd =
  (* parse raw XQuery text (from a file, or stdin with "-"), print the
     reparsed form, and execute it against the demo catalog *)
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let parse_only =
    Arg.(value & flag & info [ "parse-only" ] ~doc:"Do not execute.")
  in
  let run file parse_only =
    let src =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    with_env (fun app _env ->
        match Aqua_xquery.Parser.parse_query src with
        | exception Aqua_xquery.Parser.Parse_error { offset; message } ->
          Printf.eprintf "parse error at offset %d: %s\n" offset message;
          exit 1
        | q ->
          print_endline (Aqua_xquery.Pretty.query_to_string q);
          if not parse_only then begin
            let srv = Server.create app in
            print_endline "-- result --";
            print_endline
              (Aqua_xml.Serialize.sequence_to_string ~indent:true
                 (Server.execute srv q))
          end)
  in
  Cmd.v
    (Cmd.info "xq" ~doc:"Parse (and run) raw XQuery against the demo catalog")
    Term.(const run $ file_arg $ parse_only)

let tables_cmd =
  let run () =
    with_env (fun app _env ->
        List.iter
          (fun (m : Metadata.table) ->
            Printf.printf "%s.%s.%s (%s)\n" m.Metadata.catalog m.Metadata.schema
              m.Metadata.table
              (String.concat ", "
                 (List.map
                    (fun (c : Aqua_relational.Schema.column) -> c.name)
                    m.Metadata.columns)))
          (Metadata.list_tables app))
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"List the demo catalog's tables")
    Term.(const run $ const ())

let serve_cmd =
  let module Netserver = Aqua_net.Netserver in
  let port_opt =
    Arg.(
      value & opt int 5433
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; 0 picks an ephemeral port.")
  in
  let host_opt =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let pool_size_opt =
    Arg.(
      value & opt int 8
      & info [ "pool-size" ] ~docv:"N"
          ~doc:"Sessions in the shared session pool.")
  in
  let workers_opt =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains serving connections; 0 means pool-size.")
  in
  let queue_depth_opt =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Accepted-but-unserved connection bound; beyond it new \
             connections are refused with SQLSTATE 53300.")
  in
  let borrow_wait_opt =
    Arg.(
      value & opt int 1_000
      & info [ "borrow-wait" ] ~docv:"MS"
          ~doc:
            "Per-query wait for a pool session before shedding with \
             SQLSTATE 53300.")
  in
  let io_timeout_opt =
    Arg.(
      value & opt int 5_000
      & info [ "io-timeout" ] ~docv:"MS"
          ~doc:"Socket read/write deadline per session.")
  in
  let drain_timeout_opt =
    Arg.(
      value & opt int 2_000
      & info [ "drain-timeout" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT, bound on waiting for in-flight queries \
             before sessions are cut.")
  in
  let trace_sample_opt =
    Arg.(
      value & opt float 0.0
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:
            "Head-based trace-sampling probability in [0,1].  Every wire \
             query gets a trace id (accepted from a leading \
             /*traceparent:ID*/ comment or minted); sampled queries emit \
             their span tree as NDJSON on stderr tagged with that id.  \
             Aggregates and the flight recorder always see every query.")
  in
  let admin_port_opt =
    Arg.(
      value & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Serve the HTTP admin plane (/metrics, /healthz, /statusz) on \
             this side port; 0 picks an ephemeral port.")
  in
  let run host port pool_size workers queue_depth borrow_wait io_timeout
      drain_timeout trace_sample admin_port no_scan_cache timeout max_rows
      failpoints =
    with_env (fun app _env ->
        let limits = governors ?timeout ?max_rows failpoints in
        Telemetry.set_enabled true;
        (* per-fingerprint stats feed aqua_stat_statements and the
           per-span histograms behind /metrics *)
        Obs_stats.set_enabled true;
        Obs_stats.install_span_histograms ();
        (* sampled span trees become NDJSON on stderr; the drain dump
           and the final exposition go there too: the CI smoke job
           asserts both the trace line and the recorder fired *)
        Telemetry.set_trace_sink (Some prerr_endline);
        Recorder.set_dump_sink (Some prerr_endline);
        let conn =
          Aqua_driver.Connection.connect ~scan_cache:(not no_scan_cache) app
        in
        let config =
          { Netserver.default_config with
            host;
            port;
            pool_size;
            workers;
            queue_depth;
            borrow_wait_ms = borrow_wait;
            io_timeout_ms = io_timeout;
            drain_timeout_ms = drain_timeout;
            trace_sample;
            admin_port;
            limits;
          }
        in
        let s =
          Netserver.run ~config ~snapshot_sink:prerr_string
            ~on_listening:(fun p ->
              Printf.eprintf "listening on %s:%d\n%!" host p)
            ~on_admin_listening:(fun p ->
              Printf.eprintf "admin listening on %s:%d\n%!" host p)
            conn
        in
        Printf.eprintf
          "{\"ev\":\"serve_summary\",\"connections\":%d,\"queries\":%d,\
           \"shed_queue\":%d,\"shed_drain\":%d,\"shed_breaker\":%d,\
           \"protocol_errors\":%d,\"io_timeouts\":%d}\n%!"
          s.Netserver.connections s.queries s.shed_queue s.shed_drain
          s.shed_breaker s.protocol_errors s.io_timeouts)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the translator over the PostgreSQL wire protocol \
          (simple-query subset) until SIGTERM, then drain gracefully")
    Term.(
      const run $ host_opt $ port_opt $ pool_size_opt $ workers_opt
      $ queue_depth_opt $ borrow_wait_opt $ io_timeout_opt
      $ drain_timeout_opt $ trace_sample_opt $ admin_port_opt
      $ no_scan_cache_flag $ timeout_opt $ max_rows_opt $ failpoints_opt)

let client_cmd =
  let module Client = Aqua_net.Client in
  let host_opt =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_opt =
    Arg.(
      value & opt int 5433
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let timeout_opt =
    Arg.(
      value & opt int 5_000
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Connect and per-read/write deadline.")
  in
  let fail (code, msg) =
    Printf.eprintf "[%s] %s\n" code msg;
    exit 1
  in
  let run host port timeout_ms sql =
    match Client.connect ~timeout_ms ~host ~port () with
    | Error e -> fail e
    | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match Client.query c sql with
      | Error e -> fail e
      | Ok r ->
        print_endline (String.concat "\t" r.Client.columns);
        List.iter
          (fun row ->
            print_endline
              (String.concat "\t"
                 (List.map (Option.value ~default:"NULL") row)))
          r.Client.rows;
        Printf.eprintf "%s\n" r.Client.tag)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "One-shot wire client: connect to a running $(b,sql2xq serve), \
          send one query, print columns then tab-separated rows (NULL \
          for SQL NULL).  Also answers the aqua_stat_* virtual tables, \
          making it the in-repo way to inspect a live server.")
    Term.(const run $ host_opt $ port_opt $ timeout_opt $ sql_arg)

let () =
  let doc = "SQL-92 to XQuery translation against a demo data-services catalog" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sql2xq" ~doc)
          [ translate_cmd; run_cmd; analyze_cmd; stats_cmd; text_cmd;
            diff_cmd; wdiff_cmd; explain_cmd; xq_cmd; tables_cmd;
            serve_cmd; client_cmd ]))
