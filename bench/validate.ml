(* Schema check for the BENCH_*.json files the harness emits — used by
   the CI bench-smoke job, runnable locally:

     dune exec bench/validate.exe BENCH_P6.json

   Exit 0 when the file parses and carries every required field with
   the right type; exit 1 with a list of problems otherwise. *)

module Json = Aqua_core.Json

let problems : string list ref = ref []
let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt

let check_field path obj name pred ty =
  match Json.member name obj with
  | None -> problem "%s: missing field %S" path name
  | Some v -> if not (pred v) then problem "%s: field %S is not %s" path name ty

let is_string = function Json.Str _ -> true | _ -> false
let is_bool = function Json.Bool _ -> true | _ -> false
let is_number_or_null = function Json.Num _ | Json.Null -> true | _ -> false

let is_int = function
  | Json.Num f -> Float.is_integer f
  | _ -> false

let telemetry_int_fields =
  [ "translations"; "parse_ns"; "semantic_ns"; "generate_ns"; "rows_emitted";
    "hash_join_builds"; "hash_join_build_rows"; "hash_join_probes";
    "hash_join_collisions"; "pushdown_rewrites"; "hash_join_rewrites";
    "engine_rows_scanned"; "engine_rows_joined"; "cache_hits"; "cache_misses";
    "resultset_rows"; "ds_calls"; "ds_call_ns" ]

let scale_fields =
  [ ("label", is_string, "a string");
    ("customers", is_int, "an integer");
    ("orders", is_int, "an integer");
    ("nested_loop_ns", is_number_or_null, "a number or null");
    ("hash_join_ns", is_number_or_null, "a number or null");
    ("hash_join_telemetry_ns", is_number_or_null, "a number or null");
    ("hash_join_compiled_ns", is_number_or_null, "a number or null");
    ("speedup_hash", is_number_or_null, "a number or null");
    ("speedup_hash_compiled", is_number_or_null, "a number or null");
    ("telemetry_overhead", is_number_or_null, "a number or null") ]

let validate path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  (match Json.member "scales" json with
  | Some (Json.Arr scales) ->
    if scales = [] then problem "%s: \"scales\" is empty" path;
    List.iteri
      (fun i scale ->
        let spath = Printf.sprintf "%s: scales[%d]" path i in
        match scale with
        | Json.Obj _ ->
          List.iter
            (fun (name, pred, ty) -> check_field spath scale name pred ty)
            scale_fields
        | _ -> problem "%s is not an object" spath)
      scales
  | Some _ -> problem "%s: \"scales\" is not an array" path
  | None -> problem "%s: missing field \"scales\"" path);
  (match Json.member "telemetry" json with
  | Some (Json.Obj _ as telemetry) ->
    List.iter
      (fun name ->
        check_field (path ^ ": telemetry") telemetry name is_int "an integer")
      telemetry_int_fields
  | Some _ -> problem "%s: \"telemetry\" is not an object" path
  | None -> problem "%s: missing field \"telemetry\"" path)

let () =
  let paths =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
      prerr_endline "usage: validate BENCH_XX.json ...";
      exit 2
    | paths -> paths
  in
  List.iter
    (fun path ->
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error m -> problem "%s: %s" path m
      | contents -> (
        match Json.parse contents with
        | exception Json.Parse_error m -> problem "%s: %s" path m
        | json -> validate path json))
    paths;
  match List.rev !problems with
  | [] ->
    Printf.printf "validate: %s ok\n" (String.concat ", " paths)
  | ps ->
    List.iter prerr_endline ps;
    exit 1
