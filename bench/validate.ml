(* Schema check for the BENCH_*.json files the harness emits — used by
   the CI bench-smoke and obs-smoke jobs, runnable locally:

     dune exec bench/validate.exe BENCH_P6.json BENCH_P9.json
     dune exec bench/validate.exe -- --max-overhead 1.5 BENCH_P9.json
     dune exec bench/validate.exe -- --prom metrics.prom

   JSON files are dispatched on their "experiment" field (P6 join
   strategy vs P9 observability overhead).  --prom switches to linting
   Prometheus text expositions ({!Aqua_obs.Expose.lint}); \
   --max-overhead R additionally fails a P9 file whose measured probe
   overhead ratio exceeds R.  Exit 0 when everything checks out;
   exit 1 with a list of problems otherwise. *)

module Json = Aqua_core.Json

let problems : string list ref = ref []
let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt

let check_field path obj name pred ty =
  match Json.member name obj with
  | None -> problem "%s: missing field %S" path name
  | Some v -> if not (pred v) then problem "%s: field %S is not %s" path name ty

let is_string = function Json.Str _ -> true | _ -> false
let is_bool = function Json.Bool _ -> true | _ -> false
let is_number_or_null = function Json.Num _ | Json.Null -> true | _ -> false

let is_int = function
  | Json.Num f -> Float.is_integer f
  | _ -> false

let telemetry_int_fields =
  [ "translations"; "parse_ns"; "semantic_ns"; "generate_ns"; "rows_emitted";
    "hash_join_builds"; "hash_join_build_rows"; "hash_join_probes";
    "hash_join_collisions"; "pushdown_rewrites"; "hash_join_rewrites";
    "engine_rows_scanned"; "engine_rows_joined"; "cache_hits"; "cache_misses";
    "resultset_rows"; "ds_calls"; "ds_call_ns" ]

let scale_fields =
  [ ("label", is_string, "a string");
    ("customers", is_int, "an integer");
    ("orders", is_int, "an integer");
    ("nested_loop_ns", is_number_or_null, "a number or null");
    ("hash_join_ns", is_number_or_null, "a number or null");
    ("hash_join_telemetry_ns", is_number_or_null, "a number or null");
    ("hash_join_compiled_ns", is_number_or_null, "a number or null");
    ("speedup_hash", is_number_or_null, "a number or null");
    ("speedup_hash_compiled", is_number_or_null, "a number or null");
    ("telemetry_overhead", is_number_or_null, "a number or null") ]

let histogram_int_fields =
  [ "count"; "total_ns"; "min_ns"; "p50_ns"; "p90_ns"; "p99_ns"; "max_ns" ]

(* P9: observability probe overhead — each ratio is on/off of the same
   driver path, so values far from 1 mean a broken measurement (or an
   expensive probe, which is exactly what --max-overhead guards). *)
let validate_p9 ?max_overhead path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "iters" is_int "an integer";
  match Json.member "overheads" json with
  | Some (Json.Arr overheads) ->
    if overheads = [] then problem "%s: \"overheads\" is empty" path;
    List.iteri
      (fun i entry ->
        let epath = Printf.sprintf "%s: overheads[%d]" path i in
        match entry with
        | Json.Obj _ -> (
          check_field epath entry "label" is_string "a string";
          check_field epath entry "ratio" is_number_or_null "a number or null";
          match (Json.member "ratio" entry, max_overhead) with
          | Some (Json.Num r), Some cap when r > cap ->
            problem "%s: ratio %.3f exceeds --max-overhead %.3f" epath r cap
          | _ -> ())
        | _ -> problem "%s is not an object" epath)
      overheads
  | Some _ -> problem "%s: \"overheads\" is not an array" path
  | None -> problem "%s: missing field \"overheads\"" path

let validate_p6 path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  (match Json.member "scales" json with
  | Some (Json.Arr scales) ->
    if scales = [] then problem "%s: \"scales\" is empty" path;
    List.iteri
      (fun i scale ->
        let spath = Printf.sprintf "%s: scales[%d]" path i in
        match scale with
        | Json.Obj _ ->
          List.iter
            (fun (name, pred, ty) -> check_field spath scale name pred ty)
            scale_fields
        | _ -> problem "%s is not an object" spath)
      scales
  | Some _ -> problem "%s: \"scales\" is not an array" path
  | None -> problem "%s: missing field \"scales\"" path);
  (match Json.member "telemetry" json with
  | Some (Json.Obj _ as telemetry) ->
    List.iter
      (fun name ->
        check_field (path ^ ": telemetry") telemetry name is_int "an integer")
      telemetry_int_fields
  | Some _ -> problem "%s: \"telemetry\" is not an object" path
  | None -> problem "%s: missing field \"telemetry\"" path);
  match Json.member "obs_histograms" json with
  | Some (Json.Obj members) ->
    List.iter
      (fun (span, h) ->
        let hpath = Printf.sprintf "%s: obs_histograms[%S]" path span in
        match h with
        | Json.Obj _ ->
          List.iter
            (fun name -> check_field hpath h name is_int "an integer")
            histogram_int_fields
        | _ -> problem "%s is not an object" hpath)
      members
  | Some _ -> problem "%s: \"obs_histograms\" is not an object" path
  | None -> problem "%s: missing field \"obs_histograms\"" path

let validate ?max_overhead path json =
  match Json.member "experiment" json with
  | Some (Json.Str e)
    when String.length e >= 2 && String.sub e 0 2 = "P9" ->
    validate_p9 ?max_overhead path json
  | _ -> validate_p6 path json

let validate_prom path contents =
  List.iter
    (fun msg -> problem "%s: %s" path msg)
    (Aqua_obs.Expose.lint contents)

let usage () =
  prerr_endline
    "usage: validate [--prom] [--max-overhead R] BENCH_XX.json|FILE.prom ...";
  exit 2

let () =
  let prom = ref false and max_overhead = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--prom" :: rest ->
      prom := true;
      parse_args acc rest
    | "--max-overhead" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r ->
        max_overhead := Some r;
        parse_args acc rest
      | None -> usage ())
    | "--max-overhead" :: [] -> usage ()
    | path :: rest -> parse_args (path :: acc) rest
  in
  let paths = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  if paths = [] then usage ();
  List.iter
    (fun path ->
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error m -> problem "%s: %s" path m
      | contents ->
        if !prom then validate_prom path contents
        else (
          match Json.parse contents with
          | exception Json.Parse_error m -> problem "%s: %s" path m
          | json -> validate ?max_overhead:!max_overhead path json))
    paths;
  match List.rev !problems with
  | [] ->
    Printf.printf "validate: %s ok\n" (String.concat ", " paths)
  | ps ->
    List.iter prerr_endline ps;
    exit 1
