(* Schema check for the BENCH_*.json files the harness emits — used by
   the CI bench-smoke and obs-smoke jobs, runnable locally:

     dune exec bench/validate.exe BENCH_P6.json BENCH_P9.json
     dune exec bench/validate.exe -- --max-overhead 1.5 BENCH_P9.json
     dune exec bench/validate.exe -- --prom metrics.prom

   JSON files are dispatched on their "experiment" field (P6 join
   strategy, P9 observability overhead, P10 scan materialization, P11
   concurrent serving throughput, P12 batched execution, P13
   wire-protocol serving).  --prom switches to linting Prometheus text
   expositions ({!Aqua_obs.Expose.lint}); --max-overhead R additionally
   fails a P9 file whose measured probe overhead ratio exceeds R;
   --min-speedup S fails a P10 file whose warm-phase speedup is below S
   and a P12 file where any scale's speedup_at_1024 is below S.  A P12
   file always fails if some scale's batched@1024 median is slower than
   its row-at-a-time median.  Exit 0 when everything checks out; exit 1
   with a list of problems otherwise. *)

module Json = Aqua_core.Json

let problems : string list ref = ref []
let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt

let check_field path obj name pred ty =
  match Json.member name obj with
  | None -> problem "%s: missing field %S" path name
  | Some v -> if not (pred v) then problem "%s: field %S is not %s" path name ty

let is_string = function Json.Str _ -> true | _ -> false
let is_bool = function Json.Bool _ -> true | _ -> false
let is_number_or_null = function Json.Num _ | Json.Null -> true | _ -> false

let is_int = function
  | Json.Num f -> Float.is_integer f
  | _ -> false

let telemetry_int_fields =
  [ "translations"; "parse_ns"; "semantic_ns"; "generate_ns"; "rows_emitted";
    "hash_join_builds"; "hash_join_build_rows"; "hash_join_probes";
    "hash_join_collisions"; "hash_join_reused"; "pushdown_rewrites";
    "hash_join_rewrites";
    "engine_rows_scanned"; "engine_rows_joined"; "cache_hits"; "cache_misses";
    "resultset_rows"; "ds_calls"; "ds_call_ns"; "scan_cache_hits";
    "scan_cache_misses"; "scan_cache_evictions"; "scan_cache_bytes";
    "shared_scan_rewrites"; "batch_batches"; "batch_rows"; "batch_filtered";
    "columnar_batches"; "columnar_rows"; "columnar_pruned_columns";
    "columnar_kernel_updates" ]

let scale_fields =
  [ ("label", is_string, "a string");
    ("customers", is_int, "an integer");
    ("orders", is_int, "an integer");
    ("nested_loop_ns", is_number_or_null, "a number or null");
    ("hash_join_ns", is_number_or_null, "a number or null");
    ("hash_join_telemetry_ns", is_number_or_null, "a number or null");
    ("hash_join_compiled_ns", is_number_or_null, "a number or null");
    ("speedup_hash", is_number_or_null, "a number or null");
    ("speedup_hash_compiled", is_number_or_null, "a number or null");
    ("telemetry_overhead", is_number_or_null, "a number or null") ]

let histogram_int_fields =
  [ "count"; "total_ns"; "min_ns"; "p50_ns"; "p90_ns"; "p99_ns"; "max_ns" ]

(* P9: observability probe overhead — each ratio is on/off of the same
   driver path, so values far from 1 mean a broken measurement (or an
   expensive probe, which is exactly what --max-overhead guards). *)
let validate_p9 ?max_overhead path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "iters" is_int "an integer";
  match Json.member "overheads" json with
  | Some (Json.Arr overheads) ->
    if overheads = [] then problem "%s: \"overheads\" is empty" path;
    List.iteri
      (fun i entry ->
        let epath = Printf.sprintf "%s: overheads[%d]" path i in
        match entry with
        | Json.Obj _ -> (
          check_field epath entry "label" is_string "a string";
          check_field epath entry "ratio" is_number_or_null "a number or null";
          match (Json.member "ratio" entry, max_overhead) with
          | Some (Json.Num r), Some cap when r > cap ->
            problem "%s: ratio %.3f exceeds --max-overhead %.3f" epath r cap
          | _ -> ())
        | _ -> problem "%s is not an object" epath)
      overheads
  | Some _ -> problem "%s: \"overheads\" is not an array" path
  | None -> problem "%s: missing field \"overheads\"" path

let validate_p6 path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  (match Json.member "scales" json with
  | Some (Json.Arr scales) ->
    if scales = [] then problem "%s: \"scales\" is empty" path;
    List.iteri
      (fun i scale ->
        let spath = Printf.sprintf "%s: scales[%d]" path i in
        match scale with
        | Json.Obj _ ->
          List.iter
            (fun (name, pred, ty) -> check_field spath scale name pred ty)
            scale_fields
        | _ -> problem "%s is not an object" spath)
      scales
  | Some _ -> problem "%s: \"scales\" is not an array" path
  | None -> problem "%s: missing field \"scales\"" path);
  (match Json.member "telemetry" json with
  | Some (Json.Obj _ as telemetry) ->
    List.iter
      (fun name ->
        check_field (path ^ ": telemetry") telemetry name is_int "an integer")
      telemetry_int_fields
  | Some _ -> problem "%s: \"telemetry\" is not an object" path
  | None -> problem "%s: missing field \"telemetry\"" path);
  match Json.member "obs_histograms" json with
  | Some (Json.Obj members) ->
    List.iter
      (fun (span, h) ->
        let hpath = Printf.sprintf "%s: obs_histograms[%S]" path span in
        match h with
        | Json.Obj _ ->
          List.iter
            (fun name -> check_field hpath h name is_int "an integer")
            histogram_int_fields
        | _ -> problem "%s is not an object" hpath)
      members
  | Some _ -> problem "%s: \"obs_histograms\" is not an object" path
  | None -> problem "%s: missing field \"obs_histograms\"" path

(* P10: scan materialization — speedups are off/on of the same driver
   path, so a value below 1 means the cache slowed the query down;
   --min-speedup S additionally requires the warm phase to clear S. *)
let validate_p10 ?min_speedup path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "iters" is_int "an integer";
  (match Json.member "phases" json with
  | Some (Json.Arr phases) ->
    if phases = [] then problem "%s: \"phases\" is empty" path;
    let saw_warm = ref false in
    List.iteri
      (fun i entry ->
        let epath = Printf.sprintf "%s: phases[%d]" path i in
        match entry with
        | Json.Obj _ -> (
          check_field epath entry "label" is_string "a string";
          check_field epath entry "speedup" is_number_or_null
            "a number or null";
          match (Json.member "label" entry, Json.member "speedup" entry) with
          | Some (Json.Str "warm"), Some speedup -> (
            saw_warm := true;
            match (speedup, min_speedup) with
            | Json.Num s, Some floor when s < floor ->
              problem "%s: warm speedup %.3f below --min-speedup %.3f" epath
                s floor
            | Json.Null, Some _ ->
              problem "%s: warm speedup is null but --min-speedup given"
                epath
            | _ -> ())
          | _ -> ())
        | _ -> problem "%s is not an object" epath)
      phases;
    if not !saw_warm then problem "%s: no phase labelled \"warm\"" path
  | Some _ -> problem "%s: \"phases\" is not an array" path
  | None -> problem "%s: missing field \"phases\"" path);
  match Json.member "cache" json with
  | Some (Json.Obj _ as cache) ->
    List.iter
      (fun name ->
        check_field (path ^ ": cache") cache name is_int "an integer")
      [ "hits"; "misses"; "evictions"; "invalidations"; "entries"; "bytes" ]
  | Some _ -> problem "%s: \"cache\" is not an object" path
  | None -> problem "%s: missing field \"cache\"" path

(* P11: concurrent serving throughput — legs of the same closed-loop
   workload at increasing domain counts.  The hard gate: on a machine
   with >= 4 cores and a multicore runtime, 4-domain throughput below
   1-domain throughput means the domain-safe read path serializes (or
   worse, contends) — the whole point of the refactor is gone, so the
   file fails outright.  --min-speedup S additionally requires
   speedup_4v1 >= S under the same conditions.  On fewer cores (or a
   single-domain build) the legs are still schema-checked but the
   speedup gates are vacuous — a 1-core runner cannot show parallel
   speedup and must not fail CI for the laws of physics. *)
let validate_p11 ?min_speedup path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "cores" is_int "an integer";
  check_field path json "multicore" is_bool "a boolean";
  check_field path json "ops_per_domain" is_int "an integer";
  check_field path json "speedup_4v1" is_number_or_null "a number or null";
  let cores =
    match Json.member "cores" json with Some (Json.Num c) -> int_of_float c | _ -> 0
  in
  let multicore =
    match Json.member "multicore" json with Some (Json.Bool b) -> b | _ -> false
  in
  let qps = Hashtbl.create 8 in
  (match Json.member "legs" json with
  | Some (Json.Arr legs) ->
    if legs = [] then problem "%s: \"legs\" is empty" path;
    List.iteri
      (fun i entry ->
        let epath = Printf.sprintf "%s: legs[%d]" path i in
        match entry with
        | Json.Obj _ ->
          List.iter
            (fun name -> check_field epath entry name is_int "an integer")
            [ "domains"; "ops"; "wall_ns"; "p50_ns"; "p90_ns"; "p99_ns" ];
          check_field epath entry "qps" is_number_or_null "a number or null";
          (match (Json.member "domains" entry, Json.member "qps" entry) with
          | Some (Json.Num d), Some (Json.Num q) ->
            Hashtbl.replace qps (int_of_float d) q
          | _ -> ())
        | _ -> problem "%s is not an object" epath)
      legs
  | Some _ -> problem "%s: \"legs\" is not an array" path
  | None -> problem "%s: missing field \"legs\"" path);
  let gated = cores >= 4 && multicore in
  (match (Hashtbl.find_opt qps 1, Hashtbl.find_opt qps 4) with
  | Some q1, Some q4 when gated ->
    if q4 < q1 then
      problem
        "%s: 4-domain throughput (%.0f qps) below 1-domain (%.0f qps) on a \
         %d-core multicore runtime"
        path q4 q1 cores;
    (match min_speedup with
    | Some floor when q1 > 0.0 && q4 /. q1 < floor ->
      problem "%s: speedup_4v1 %.3f below --min-speedup %.3f" path
        (q4 /. q1) floor
    | _ -> ())
  | Some _, Some _ -> ()  (* gates vacuous off a >=4-core multicore box *)
  | _ ->
    if gated then
      problem "%s: missing the 1-domain and/or 4-domain leg" path)

(* P13: wire-protocol serving — an open-loop arrival process against
   the socket front end.  The hard gates are the robustness ledger:
   every leg must account for every offered arrival as completed or
   shed (a mismatch means the server lost admitted work — exactly the
   failure the drain/admission machinery exists to prevent), every leg
   must complete some queries (an all-shed leg means collapse, even
   the faulted one must degrade rather than die), and the shed
   breakdown must sum to the shed total.  On a single-domain build the
   file carries multicore=false and empty legs — schema-checked,
   gates vacuous. *)
let validate_p13 path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "multicore" is_bool "a boolean";
  let multicore =
    match Json.member "multicore" json with Some (Json.Bool b) -> b | _ -> false
  in
  if multicore then begin
    (match Json.member "saturation" json with
    | Some (Json.Obj _ as sat) ->
      let spath = path ^ ": saturation" in
      List.iter
        (fun name -> check_field spath sat name is_int "an integer")
        [ "clients"; "completed"; "p50_ns"; "p99_ns" ];
      check_field spath sat "qps" is_number_or_null "a number or null";
      (match Json.member "qps" sat with
      | Some (Json.Num q) when q <= 0.0 ->
        problem "%s: saturation qps %.3f is not positive" path q
      | _ -> ())
    | Some _ -> problem "%s: \"saturation\" is not an object" path
    | None -> problem "%s: missing field \"saturation\"" path);
    match Json.member "legs" json with
    | Some (Json.Arr legs) ->
      if legs = [] then problem "%s: \"legs\" is empty" path;
      List.iteri
        (fun i entry ->
          let epath = Printf.sprintf "%s: legs[%d]" path i in
          match entry with
          | Json.Obj _ ->
            check_field epath entry "label" is_string "a string";
            check_field epath entry "rate_qps" is_number_or_null
              "a number or null";
            List.iter
              (fun name -> check_field epath entry name is_int "an integer")
              [ "offered"; "completed"; "shed"; "p50_ns"; "p90_ns"; "p99_ns" ];
            let int_of name =
              match Json.member name entry with
              | Some (Json.Num f) when Float.is_integer f ->
                Some (int_of_float f)
              | _ -> None
            in
            (match (int_of "offered", int_of "completed", int_of "shed") with
            | Some o, Some c, Some s ->
              if o <> c + s then
                problem
                  "%s: offered %d <> completed %d + shed %d — the server \
                   lost admitted work"
                  epath o c s;
              if c = 0 then
                problem "%s: no query completed (collapse, not shedding)"
                  epath
            | _ -> ());
            (match Json.member "shed_by_code" entry with
            | Some (Json.Obj fields) ->
              let sum =
                List.fold_left
                  (fun acc (code, v) ->
                    match v with
                    | Json.Num f when Float.is_integer f ->
                      acc + int_of_float f
                    | _ ->
                      problem "%s: shed_by_code[%S] is not an integer" epath
                        code;
                      acc)
                  0 fields
              in
              (match int_of "shed" with
              | Some s when s <> sum ->
                problem "%s: shed_by_code sums to %d but shed is %d" epath
                  sum s
              | _ -> ())
            | Some _ -> problem "%s: \"shed_by_code\" is not an object" epath
            | None -> problem "%s: missing field \"shed_by_code\"" epath);
            (match Json.member "failpoints" entry with
            | Some (Json.Str _ | Json.Null) -> ()
            | Some _ ->
              problem "%s: \"failpoints\" is not a string or null" epath
            | None -> problem "%s: missing field \"failpoints\"" epath)
          | _ -> problem "%s is not an object" epath)
        legs
    | Some _ -> problem "%s: \"legs\" is not an array" path
    | None -> problem "%s: missing field \"legs\"" path
  end

(* P12: batched FLWOR execution — row-at-a-time and batched medians of
   the same query, so at batch size 1024 the batched engine must never
   be slower than the row path (a silent vectorization regression);
   --min-speedup S additionally requires every scale's speedup_at_1024
   to clear S. *)
let validate_p12 ?min_speedup path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "sql" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "default_batch_size" is_int "an integer";
  (match Json.member "batch_sizes" json with
  | Some (Json.Arr sizes) ->
    if sizes = [] then problem "%s: \"batch_sizes\" is empty" path;
    List.iteri
      (fun i v ->
        if not (is_int v) then
          problem "%s: batch_sizes[%d] is not an integer" path i)
      sizes
  | Some _ -> problem "%s: \"batch_sizes\" is not an array" path
  | None -> problem "%s: missing field \"batch_sizes\"" path);
  (match Json.member "scales" json with
  | Some (Json.Arr scales) ->
    if scales = [] then problem "%s: \"scales\" is empty" path;
    List.iteri
      (fun i scale ->
        let spath = Printf.sprintf "%s: scales[%d]" path i in
        match scale with
        | Json.Obj _ ->
          List.iter
            (fun (name, pred, ty) -> check_field spath scale name pred ty)
            [ ("label", is_string, "a string");
              ("customers", is_int, "an integer");
              ("orders", is_int, "an integer");
              ("rows", is_int, "an integer");
              ("row_at_a_time_ns", is_number_or_null, "a number or null");
              ( "row_at_a_time_ns_per_row", is_number_or_null,
                "a number or null" );
              ("speedup_at_1024", is_number_or_null, "a number or null") ];
          (match Json.member "batched" scale with
          | Some (Json.Arr entries) ->
            if entries = [] then problem "%s: \"batched\" is empty" spath;
            let at_1024 = ref None in
            List.iteri
              (fun j entry ->
                let epath = Printf.sprintf "%s: batched[%d]" spath j in
                match entry with
                | Json.Obj _ -> (
                  check_field epath entry "batch_size" is_int "an integer";
                  check_field epath entry "ns" is_number_or_null
                    "a number or null";
                  check_field epath entry "ns_per_row" is_number_or_null
                    "a number or null";
                  match (Json.member "batch_size" entry,
                         Json.member "ns" entry) with
                  | Some (Json.Num bs), Some (Json.Num ns)
                    when Float.to_int bs = 1024 ->
                    at_1024 := Some ns
                  | _ -> ())
                | _ -> problem "%s is not an object" epath)
              entries;
            (match (!at_1024, Json.member "row_at_a_time_ns" scale) with
            | Some vec_ns, Some (Json.Num row_ns) when vec_ns > row_ns ->
              problem
                "%s: batched@1024 median %.0f ns is slower than \
                 row-at-a-time %.0f ns"
                spath vec_ns row_ns
            | None, _ ->
              problem "%s: no batched entry with batch_size 1024" spath
            | _ -> ())
          | Some _ -> problem "%s: \"batched\" is not an array" spath
          | None -> problem "%s: missing field \"batched\"" spath);
          (match (Json.member "speedup_at_1024" scale, min_speedup) with
          | Some (Json.Num s), Some floor when s < floor ->
            problem "%s: speedup_at_1024 %.3f below --min-speedup %.3f" spath
              s floor
          | Some Json.Null, Some _ ->
            problem "%s: speedup_at_1024 is null but --min-speedup given"
              spath
          | _ -> ())
        | _ -> problem "%s is not an object" spath)
      scales
  | Some _ -> problem "%s: \"scales\" is not an array" path
  | None -> problem "%s: missing field \"scales\"" path);
  match Json.member "telemetry" json with
  | Some (Json.Obj _ as telemetry) ->
    List.iter
      (fun name ->
        check_field (path ^ ": telemetry") telemetry name is_int "an integer")
      telemetry_int_fields
  | Some _ -> problem "%s: \"telemetry\" is not an object" path
  | None -> problem "%s: missing field \"telemetry\"" path

(* P15: columnar batch layout vs the row-snapshot batch engine —
   interleaved A/B medians of the same query at batch size 1024.  The
   hard gate: on every aggregation-shaped workload ("aggregation" and
   "join-aggregation" kinds) the columnar engine must never be slower
   than the batched engine — speedup_at_1024 below parity is a silent
   regression of the kernelized GROUP BY path; --min-speedup S
   additionally requires every scale of the pure "aggregation" kind
   (where the kernels, not join probe cost, dominate) to clear S.
   "wide"-kind workloads are informational — pruning is a
   memory-traffic story — and only the structure is checked. *)
let validate_p15 ?min_speedup path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "batch_size" is_int "an integer";
  (match Json.member "workloads" json with
  | Some (Json.Arr workloads) ->
    if workloads = [] then problem "%s: \"workloads\" is empty" path;
    let saw_aggregation = ref false in
    List.iteri
      (fun wi workload ->
        let wpath = Printf.sprintf "%s: workloads[%d]" path wi in
        match workload with
        | Json.Obj _ ->
          check_field wpath workload "name" is_string "a string";
          check_field wpath workload "kind" is_string "a string";
          check_field wpath workload "sql" is_string "a string";
          let kind =
            match Json.member "kind" workload with
            | Some (Json.Str k) -> k
            | _ -> ""
          in
          if kind = "aggregation" then saw_aggregation := true;
          (match Json.member "scales" workload with
          | Some (Json.Arr scales) ->
            if scales = [] then problem "%s: \"scales\" is empty" wpath;
            List.iteri
              (fun i scale ->
                let spath = Printf.sprintf "%s: scales[%d]" wpath i in
                match scale with
                | Json.Obj _ -> (
                  List.iter
                    (fun (name, pred, ty) ->
                      check_field spath scale name pred ty)
                    [ ("label", is_string, "a string");
                      ("customers", is_int, "an integer");
                      ("orders", is_int, "an integer");
                      ("rows", is_int, "an integer");
                      ("batched_ns", is_number_or_null, "a number or null");
                      ( "batched_ns_per_row", is_number_or_null,
                        "a number or null" );
                      ("columnar_ns", is_number_or_null, "a number or null");
                      ( "columnar_ns_per_row", is_number_or_null,
                        "a number or null" );
                      ( "speedup_at_1024", is_number_or_null,
                        "a number or null" ) ];
                  if kind = "aggregation" || kind = "join-aggregation" then
                    match Json.member "speedup_at_1024" scale with
                    | Some (Json.Num s) -> (
                      if s < 1.0 then
                        problem
                          "%s: columnar is slower than batched on an \
                           aggregation shape (speedup_at_1024 %.3f)"
                          spath s;
                      match min_speedup with
                      | Some floor when kind = "aggregation" && s < floor ->
                        problem
                          "%s: speedup_at_1024 %.3f below --min-speedup %.3f"
                          spath s floor
                      | _ -> ())
                    | Some Json.Null ->
                      problem "%s: speedup_at_1024 is null on an \
                               aggregation shape" spath
                    | _ -> ())
                | _ -> problem "%s is not an object" spath)
              scales
          | Some _ -> problem "%s: \"scales\" is not an array" wpath
          | None -> problem "%s: missing field \"scales\"" wpath)
        | _ -> problem "%s is not an object" wpath)
      workloads;
    if not !saw_aggregation then
      problem "%s: no workload of kind \"aggregation\"" path
  | Some _ -> problem "%s: \"workloads\" is not an array" path
  | None -> problem "%s: missing field \"workloads\"" path);
  match Json.member "telemetry" json with
  | Some (Json.Obj _ as telemetry) ->
    List.iter
      (fun name ->
        check_field (path ^ ": telemetry") telemetry name is_int "an integer")
      telemetry_int_fields
  | Some _ -> problem "%s: \"telemetry\" is not an object" path
  | None -> problem "%s: missing field \"telemetry\"" path

(* P14: trace-sampling overhead on the serve path — closed-loop legs
   identical but for trace wiring.  The hard gates: the baseline and
   0%-sampling legs must emit zero trace lines (0% means silent), the
   100% leg must emit some (the plumbing actually works), and the
   0%-sampling throughput loss against baseline must stay within the
   bound — 15% by default (two separately started servers carry that
   much closed-loop noise), or --max-overhead interpreted as the
   fractional bound when given.  A regression here means every served
   query pays for tracing nobody asked for. *)
let validate_p14 ?max_overhead path json =
  check_field path json "experiment" is_string "a string";
  check_field path json "units" is_string "a string";
  check_field path json "seed" is_int "an integer";
  check_field path json "smoke" is_bool "a boolean";
  check_field path json "multicore" is_bool "a boolean";
  check_field path json "baseline_qps" is_number_or_null "a number or null";
  check_field path json "sampled0_qps" is_number_or_null "a number or null";
  check_field path json "overhead" is_number_or_null "a number or null";
  let multicore =
    match Json.member "multicore" json with Some (Json.Bool b) -> b | _ -> false
  in
  if multicore then begin
    (match Json.member "legs" json with
    | Some (Json.Arr legs) ->
      if legs = [] then problem "%s: \"legs\" is empty" path;
      List.iteri
        (fun i entry ->
          let epath = Printf.sprintf "%s: legs[%d]" path i in
          match entry with
          | Json.Obj _ ->
            check_field epath entry "label" is_string "a string";
            check_field epath entry "trace_sample" is_number_or_null
              "a number or null";
            check_field epath entry "sink" is_bool "a boolean";
            check_field epath entry "qps" is_number_or_null
              "a number or null";
            List.iter
              (fun name -> check_field epath entry name is_int "an integer")
              [ "completed"; "p50_ns"; "p90_ns"; "p99_ns"; "trace_lines" ];
            let int_of name =
              match Json.member name entry with
              | Some (Json.Num f) when Float.is_integer f ->
                Some (int_of_float f)
              | _ -> None
            in
            (match int_of "completed" with
            | Some 0 -> problem "%s: leg completed no queries" epath
            | _ -> ());
            (match (Json.member "label" entry, int_of "trace_lines") with
            | Some (Json.Str ("baseline" | "sink-0pct")), Some n when n > 0
              ->
              problem
                "%s: %d trace lines emitted at 0%% sampling — sampling \
                 does not gate emission"
                epath n
            | Some (Json.Str "sink-100pct"), Some 0 ->
              problem
                "%s: no trace lines at 100%% sampling — tracing is dead"
                epath
            | _ -> ())
          | _ -> problem "%s is not an object" epath)
        legs
    | Some _ -> problem "%s: \"legs\" is not an array" path
    | None -> problem "%s: missing field \"legs\"" path);
    let bound = Option.value ~default:0.15 max_overhead in
    match Json.member "overhead" json with
    | Some (Json.Num o) when o > bound ->
      problem
        "%s: 0%%-sampling serve-path overhead %.1f%% exceeds the %.1f%% \
         bound"
        path (100.0 *. o) (100.0 *. bound)
    | Some (Json.Num _) -> ()
    | _ -> problem "%s: \"overhead\" is not a number on a multicore run" path
  end

let validate ?max_overhead ?min_speedup path json =
  match Json.member "experiment" json with
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P15" ->
    validate_p15 ?min_speedup path json
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P14" ->
    validate_p14 ?max_overhead path json
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P13" ->
    validate_p13 path json
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P12" ->
    validate_p12 ?min_speedup path json
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P11" ->
    validate_p11 ?min_speedup path json
  | Some (Json.Str e)
    when String.length e >= 3 && String.sub e 0 3 = "P10" ->
    validate_p10 ?min_speedup path json
  | Some (Json.Str e)
    when String.length e >= 2 && String.sub e 0 2 = "P9" ->
    validate_p9 ?max_overhead path json
  | _ -> validate_p6 path json

let validate_prom path contents =
  List.iter
    (fun msg -> problem "%s: %s" path msg)
    (Aqua_obs.Expose.lint contents)

let usage () =
  prerr_endline
    "usage: validate [--prom] [--max-overhead R] [--min-speedup S] \
     BENCH_XX.json|FILE.prom ...";
  exit 2

let () =
  let prom = ref false and max_overhead = ref None and min_speedup = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--prom" :: rest ->
      prom := true;
      parse_args acc rest
    | "--max-overhead" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r ->
        max_overhead := Some r;
        parse_args acc rest
      | None -> usage ())
    | "--max-overhead" :: [] -> usage ()
    | "--min-speedup" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r ->
        min_speedup := Some r;
        parse_args acc rest
      | None -> usage ())
    | "--min-speedup" :: [] -> usage ()
    | path :: rest -> parse_args (path :: acc) rest
  in
  let paths = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  if paths = [] then usage ();
  List.iter
    (fun path ->
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error m -> problem "%s: %s" path m
      | contents ->
        if !prom then validate_prom path contents
        else (
          match Json.parse contents with
          | exception Json.Parse_error m -> problem "%s: %s" path m
          | json ->
            validate ?max_overhead:!max_overhead ?min_speedup:!min_speedup
              path json))
    paths;
  match List.rev !problems with
  | [] ->
    Printf.printf "validate: %s ok\n" (String.concat ", " paths)
  | ps ->
    List.iter prerr_endline ps;
    exit 1
